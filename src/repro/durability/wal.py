"""The write-ahead log: CRC-framed JSON records, torn-tail tolerant.

Every control-plane mutation (docdb write, durable-topic broker
transition, object-store put/delete, credential issue) is appended here
*after* it is applied in memory, so a restart can replay the suffix of
history that the last snapshot does not cover.  The format is
deliberately boring — one line per record::

    RAIWAL1
    <crc32:08x> <payload-len> <payload-json>
    <crc32:08x> <payload-len> <payload-json>
    ...

A crash can only damage the final line (appends are sequential, and the
file is flushed per record), so replay verifies length and CRC per line
and treats the first damaged record as the torn tail: everything before
it is applied, everything from it on is discarded and counted.  That is
the standard ARIES-lite contract — a record is durable iff it reads back
whole.

``fault_hook`` is the chaos seam: :class:`~repro.faults.CrashPoint`
installs a callable that may replace a record's bytes with a torn prefix
and kill the "process" (a :class:`~repro.errors.SimulatedCrash`), which
is how the tests manufacture mid-write power loss deterministically.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Callable, List, Optional, Tuple

from repro.errors import DurabilityError, SimulatedCrash

HEADER = b"RAIWAL1\n"


def encode_record(record: dict) -> bytes:
    """One record's on-disk framing (CRC, length, compact JSON)."""
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return b"%08x %d " % (zlib.crc32(payload), len(payload)) + payload + b"\n"


def decode_record(line: bytes) -> dict:
    """Parse one framed line; raises :class:`DurabilityError` on damage."""
    try:
        crc_hex, length_text, payload = line.split(b" ", 2)
        expected_crc = int(crc_hex, 16)
        expected_len = int(length_text)
    except ValueError:
        raise DurabilityError("malformed WAL frame") from None
    if payload.endswith(b"\n"):
        payload = payload[:-1]
    if len(payload) != expected_len:
        raise DurabilityError(
            f"short WAL record: {len(payload)} of {expected_len} bytes")
    if zlib.crc32(payload) != expected_crc:
        raise DurabilityError("WAL record CRC mismatch")
    try:
        return json.loads(payload)
    except ValueError as exc:
        raise DurabilityError(f"WAL record is not JSON: {exc}") from None


class WriteAheadLog:
    """Append-only mutation journal for one durability directory."""

    def __init__(self, path: str):
        self.path = str(path)
        #: Records appended through this handle (since open or reset).
        self.records_appended = 0
        #: Chaos seam: ``fault_hook(record_bytes) -> Optional[bytes]``.
        #: Returning bytes means "the process died mid-write": the
        #: returned (torn) bytes hit the disk and SimulatedCrash is
        #: raised.  Returning None lets the append proceed.
        self.fault_hook: Optional[Callable[[bytes], Optional[bytes]]] = None
        self._fh = None
        self._open()

    def _open(self) -> None:
        fresh = not os.path.exists(self.path) \
            or os.path.getsize(self.path) == 0
        self._fh = open(self.path, "ab")
        if fresh:
            self._fh.write(HEADER)
            self._fh.flush()

    @property
    def closed(self) -> bool:
        return self._fh is None

    @property
    def size_bytes(self) -> int:
        if self._fh is not None:
            self._fh.flush()
        return os.path.getsize(self.path) if os.path.exists(self.path) else 0

    # -- writing -------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Frame and append one record; flushed before returning.

        Flush-per-record means a crash loses at most the final record
        (the torn tail replay tolerates); fsync is deferred to
        :meth:`sync` / checkpoints so the steady-state cost stays at one
        buffered write per mutation.
        """
        if self._fh is None:
            raise DurabilityError("write-ahead log is closed")
        line = encode_record(record)
        if self.fault_hook is not None:
            torn = self.fault_hook(line)
            if torn is not None:
                self._fh.write(torn)
                self._fh.flush()
                self.close()
                raise SimulatedCrash(
                    f"crash point fired mid-append ({len(torn)} of "
                    f"{len(line)} bytes reached disk)")
        self._fh.write(line)
        self._fh.flush()
        self.records_appended += 1

    def sync(self) -> None:
        """Flush and fsync — the durability barrier checkpoints use."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def reset(self) -> None:
        """Truncate back to an empty log (after a snapshot subsumed it)."""
        if self._fh is not None:
            self._fh.close()
        with open(self.path, "wb") as fh:
            fh.write(HEADER)
            fh.flush()
            os.fsync(fh.fileno())
        self._fh = open(self.path, "ab")
        self.records_appended = 0

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- reading -------------------------------------------------------------

    def replay(self) -> Tuple[List[dict], dict]:
        """Read every intact record; returns ``(records, stats)``.

        Stops at the first damaged line: in a crash-consistent log only
        the tail can be damaged, so everything after the first bad frame
        is unreachable history and is counted, not applied.
        """
        records: List[dict] = []
        stats = {"records": 0, "torn": 0, "discarded": 0, "bytes": 0}
        if not os.path.exists(self.path):
            return records, stats
        with open(self.path, "rb") as fh:
            lines = fh.read().split(b"\n")
        stats["bytes"] = self.size_bytes
        if not lines or lines[0] + b"\n" != HEADER:
            if lines and lines[0]:
                raise DurabilityError(
                    f"{self.path} is not a RAIWAL1 write-ahead log")
            return records, stats
        body = [line for line in lines[1:] if line]
        for i, line in enumerate(body):
            try:
                records.append(decode_record(line + b"\n"))
            except DurabilityError:
                stats["torn"] = 1
                stats["discarded"] = len(body) - i
                break
        stats["records"] = len(records)
        return records, stats
