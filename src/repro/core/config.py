"""Worker and system configuration.

"These limits can be changed using the RAI worker configuration file"
(§V); "the worker can be configured to have multiple jobs in flight"
(§V, Worker Operations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.container.limits import ResourceLimits


@dataclass
class WorkerConfig:
    """Per-worker knobs."""

    #: Jobs accepted concurrently.  1 near deadlines "makes the performance
    #: timing more accurate and repeatable"; >1 early in the project when
    #: CPU time dominates (§V).
    max_concurrent_jobs: int = 1
    #: Container sandbox limits (8 GB / no net / 1 h by default).
    limits: ResourceLimits = field(default_factory=ResourceLimits)
    #: GPU model mounted via the CUDA volume ("K40" on G2, "K80" on P2).
    gpu_model: str = "K80"
    #: Link speed between worker and file server (archive transfer time).
    storage_bandwidth_bps: float = 200e6
    #: Registry pull bandwidth for image-cache misses.
    pull_bandwidth_bps: float = 100e6
    #: Queue route workers consume from.
    task_route: str = "rai/tasks"
    #: Relative runtime jitter when running alone (measurement noise).
    solo_jitter: float = 0.02
    #: Additional relative jitter per concurrent co-running job
    #: (contention; drives the single-vs-multi timing-accuracy ablation).
    contention_jitter: float = 0.35
    #: Serve interactive sessions (§VIII future work) alongside batch jobs.
    enable_interactive: bool = False

    def __post_init__(self):
        if self.max_concurrent_jobs < 1:
            raise ValueError("max_concurrent_jobs must be >= 1")


@dataclass
class SystemConfig:
    """Deployment-wide knobs."""

    upload_bucket: str = "rai-uploads"
    build_bucket: str = "rai-builds"
    #: Client-side upload bandwidth (student's connection).
    client_bandwidth_bps: float = 20e6
    #: Submission rate-limit window (30 s in the course).
    rate_limit_seconds: float = 30.0
    #: Lifetime of uploaded project archives ("between 1 and 3 months").
    upload_lifetime_seconds: float = 30 * 24 * 3600.0
    #: Lifetime of build outputs.
    build_lifetime_seconds: float = 90 * 24 * 3600.0
    #: Presigned build-URL validity.
    presign_expiry_seconds: float = 7 * 24 * 3600.0
