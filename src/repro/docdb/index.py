"""Secondary and unique indexes.

Indexes map a field's value to the set of document ids holding it, giving
equality lookups an O(1) fast path and letting unique constraints (e.g. one
ranking row per team) be enforced at insert/update time.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from repro.docdb.query import get_path, _MISSING
from repro.errors import DuplicateKeyError


def _index_key(value: Any):
    """A hashable stand-in for arbitrary JSON values."""
    if isinstance(value, list):
        return ("__list__", tuple(_index_key(v) for v in value))
    if isinstance(value, dict):
        return ("__dict__", tuple(sorted(
            (k, _index_key(v)) for k, v in value.items())))
    return value


class Index:
    """An index over one dotted field path."""

    def __init__(self, field: str, unique: bool = False):
        self.field = field
        self.unique = unique
        self._entries: Dict[Any, Set[Any]] = {}

    def add(self, doc_id: Any, doc: dict) -> None:
        value = get_path(doc, self.field)
        if value is _MISSING:
            return
        key = _index_key(value)
        holders = self._entries.setdefault(key, set())
        if self.unique and holders and doc_id not in holders:
            raise DuplicateKeyError(
                f"duplicate value {value!r} for unique index on "
                f"{self.field!r}")
        holders.add(doc_id)

    def remove(self, doc_id: Any, doc: dict) -> None:
        value = get_path(doc, self.field)
        if value is _MISSING:
            return
        key = _index_key(value)
        holders = self._entries.get(key)
        if holders is not None:
            holders.discard(doc_id)
            if not holders:
                del self._entries[key]

    def lookup(self, value: Any) -> Optional[Set[Any]]:
        """Document ids with exactly this value, or None if unindexed."""
        return self._entries.get(_index_key(value), set())

    def check_would_conflict(self, doc_id: Any, doc: dict) -> None:
        """Raise if adding ``doc`` would break uniqueness (pre-flight)."""
        if not self.unique:
            return
        value = get_path(doc, self.field)
        if value is _MISSING:
            return
        holders = self._entries.get(_index_key(value), set())
        if holders - {doc_id}:
            raise DuplicateKeyError(
                f"duplicate value {value!r} for unique index on "
                f"{self.field!r}")

    def __len__(self) -> int:
        return len(self._entries)
