"""Stored objects and content hashing."""

from __future__ import annotations

import hashlib
from typing import Dict, Optional


def compute_etag(data: bytes) -> str:
    """MD5 hex digest, matching S3's simple-upload ETag convention."""
    return hashlib.md5(data).hexdigest()


class StoredObject:
    """An immutable object version inside a bucket."""

    __slots__ = ("key", "data", "etag", "metadata", "created_at",
                 "last_used_at", "padding_bytes")

    def __init__(self, key: str, data: bytes, created_at: float,
                 metadata: Optional[Dict[str, str]] = None,
                 etag: Optional[str] = None, padding_bytes: int = 0):
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError("object data must be bytes")
        if padding_bytes < 0:
            raise ValueError("padding_bytes must be >= 0")
        self.key = key
        self.data = bytes(data)
        self.etag = etag or compute_etag(self.data)
        self.metadata: Dict[str, str] = dict(metadata or {})
        self.created_at = float(created_at)
        #: Updated on every GET; lifecycle rules may expire on this clock
        #: (the course deleted uploads "one month after the last use", §V).
        self.last_used_at = float(created_at)
        #: Declared sparse size: synthetic projects are tiny compared to
        #: real student uploads (datasets, checkpoints), so workloads may
        #: declare the bytes a real project would have carried.  Padding
        #: counts toward sizes/transfer accounting but holds no content.
        #: (DESIGN.md substitution for the paper's 100 GB file server.)
        self.padding_bytes = int(padding_bytes)

    @property
    def size(self) -> int:
        return len(self.data) + self.padding_bytes

    def head(self) -> dict:
        """Metadata-only view (no body), like an S3 HEAD response."""
        return {
            "key": self.key,
            "size": self.size,
            "etag": self.etag,
            "metadata": dict(self.metadata),
            "created_at": self.created_at,
            "last_used_at": self.last_used_at,
        }

    def __repr__(self):
        return f"<StoredObject {self.key!r} {self.size}B etag={self.etag[:8]}>"
