"""The acceptance chaos test: full-process crash mid-storm, cold restore.

The scenario the tentpole exists for: a semester's deployment is
checkpointing periodically, a submission storm is in flight, and the
whole process dies — queues, in-flight deliveries, half the results
recorded.  A fresh :class:`RaiSystem` restored from the durability
directory must finish every queued job exactly once: no job lost (the
WAL has it), none run twice (terminal-record fencing skips jobs whose
results survived).
"""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import RaiSystem

pytestmark = [pytest.mark.durability, pytest.mark.chaos]

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}

N_CLIENTS = 6


def _worker_final_events(system):
    """(job_id, finished_at) pairs of results recorded by workers."""
    return [(d["job_id"], d["finished_at"])
            for d in system.db.collection("submissions").find({})]


class TestCrashRecoveryChaos:
    def test_storm_survives_full_restart_exactly_once(self, tmp_path):
        # -- epoch 1: one slow worker, six clients, checkpoint mid-storm --
        cfg = SystemConfig(client_wait_timeout_seconds=4 * 3600.0)
        system = RaiSystem.standard(num_workers=1, seed=11, config=cfg)
        system.attach_durability(str(tmp_path / "dur"))
        clients = []
        for i in range(N_CLIENTS):
            c = system.new_client(team=f"team{i}")
            # Distinct sources per team: every build truly executes (a
            # shared source tree would let the build cache collapse the
            # storm before the crash window opens).
            c.stage_project(dict(FILES, **{
                "main.cu": FILES["main.cu"] + f"// team {i}\n"}))
            clients.append(c)
        for c in clients:
            system.sim.process(c.submit())

        submissions = system.db.collection("submissions")
        t = 0.0
        checkpointed = False
        checkpoint_done = 0
        # Fine-grained polls: once the first builds are cached, the tail
        # of the storm replays fast, and a coarse window would watch it
        # finish wholesale without ever exposing a mid-storm crash point.
        while True:
            t += 2.0
            system.run(until=t)
            done = len(submissions)
            if done >= 1 and not checkpointed:
                system.checkpoint()  # snapshot while the storm rages
                checkpointed = True
                checkpoint_done = done
            # Crash only after the WAL has grown past the checkpoint (at
            # least one more completion journaled) with work still queued.
            elif checkpointed and checkpoint_done < done < N_CLIENTS:
                break
            assert t < 1e6, "storm never reached the crash window"

        finished_before = _worker_final_events(system)
        channel = system.broker.channel("rai/tasks")
        pending_before = channel.depth + len(channel.in_flight)
        assert pending_before >= 1, "nothing pending at crash time"
        assert checkpointed
        system.crash_stop()  # the process dies; no farewell snapshot

        # -- epoch 2: cold start from disk, more capacity, drain --------
        restored = RaiSystem.restore(str(tmp_path / "dur"), num_workers=2)
        # The clock resumes at the last journaled instant — at or before
        # the old horizon (idle time past the final mutation is not
        # observable from the log), and never before a recorded result.
        assert restored.sim.now <= system.sim.now
        assert restored.sim.now >= max(
            (at for _, at in finished_before), default=0.0)
        rsub = restored.db.collection("submissions")
        assert len(rsub) == len(finished_before)

        resume_at = restored.sim.now
        t2 = restored.sim.now
        while len(rsub) < N_CLIENTS:
            t2 += 50.0
            restored.run(until=t2)
            assert t2 < 1e7, "restored deployment never drained the storm"

        # -- exactly once: one terminal record per job, ever ------------
        per_job = {}
        for doc in rsub.find({}):
            per_job.setdefault(doc["job_id"], []).append(doc)
        assert len(per_job) == N_CLIENTS
        for job_id, docs in per_job.items():
            assert len(docs) == 1, f"{job_id} recorded {len(docs)} times"
        # Results finished before the crash were not re-executed: same
        # (job_id, finished_at) pairs reappear verbatim after restore.
        finished_after = _worker_final_events(restored)
        assert set(finished_before) <= set(finished_after)
        # And the balance of the storm really ran post-restore.
        new = [f for f in finished_after if f not in set(finished_before)]
        assert len(new) == N_CLIENTS - len(finished_before)
        assert all(at >= resume_at for _, at in new)

        # The event log tells the recovery story.
        replay = restored.events.query(type="durability.replay")[-1]
        assert replay.fields["replayed"] > 0
        assert replay.fields["anomalies"] == 0
        assert replay.fields["requeued"] + replay.fields["fenced"] >= 1
        # recovery.time histogram observed exactly one restore.
        hist = restored.metrics.histogram("recovery.time")
        assert hist.count == 1

    def test_double_crash_double_restore(self, tmp_path):
        """Recovery is re-enterable: crash the restored deployment too."""
        cfg = SystemConfig(client_wait_timeout_seconds=4 * 3600.0)
        system = RaiSystem.standard(num_workers=1, seed=21, config=cfg)
        system.attach_durability(str(tmp_path / "dur"))
        clients = []
        for i in range(4):
            c = system.new_client(team=f"t{i}")
            c.stage_project(FILES)
            clients.append(c)
        for c in clients:
            system.sim.process(c.submit())
        submissions = system.db.collection("submissions")
        t = 0.0
        while len(submissions) < 1:
            t += 10.0
            system.run(until=t)
        system.crash_stop()

        middle = RaiSystem.restore(str(tmp_path / "dur"), num_workers=1)
        msub = middle.db.collection("submissions")
        t = middle.sim.now
        while len(msub) < 2:
            t += 25.0
            middle.run(until=t)
            assert t < 1e7
        middle.crash_stop()  # die again, mid-drain

        final = RaiSystem.restore(str(tmp_path / "dur"), num_workers=2)
        fsub = final.db.collection("submissions")
        t = final.sim.now
        while len(fsub) < 4:
            t += 50.0
            final.run(until=t)
            assert t < 1e7
        per_job = {}
        for doc in fsub.find({}):
            per_job[doc["job_id"]] = per_job.get(doc["job_id"], 0) + 1
        assert len(per_job) == 4
        assert all(n == 1 for n in per_job.values())
