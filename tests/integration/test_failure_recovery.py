"""Failure injection: worker crashes and at-least-once job delivery.

§V: "Since RAI is a distributed architecture, these operations need to
happen in order and be robust to failures."  A worker that dies mid-job
never acks its message; the broker caretaker requeues it and another
worker finishes the job — the client, still subscribed to the log topic,
gets its End.
"""

import pytest

from repro.core.config import WorkerConfig
from repro.core.job import JobStatus
from repro.core.system import RaiSystem

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


class TestBrokerRedelivery:
    def test_stale_in_flight_requeued(self, sim):
        from repro.broker import Consumer, MessageBroker

        broker = MessageBroker(sim)
        consumer = Consumer(broker, "rai/tasks")
        broker.publish("rai", {"n": 1})

        def dead_consumer(sim):
            msg = yield consumer.get()
            # ...and never acks (crash).
            return msg.id

        proc = sim.process(dead_consumer(sim))
        sim.run(until=proc)
        assert len(consumer.channel.in_flight) == 1

        def advance(sim):
            yield sim.timeout(100.0)

        sim.process(advance(sim))
        sim.run()
        assert broker.requeue_stale(in_flight_timeout=50.0) == 1
        assert consumer.channel.depth == 1
        assert not consumer.channel.in_flight

    def test_fresh_in_flight_untouched(self, sim):
        from repro.broker import Consumer, MessageBroker

        broker = MessageBroker(sim)
        consumer = Consumer(broker, "rai/tasks")
        broker.publish("rai", {"n": 1})

        def holder(sim):
            msg = yield consumer.get()
            assert broker.requeue_stale(in_flight_timeout=1000.0) == 0
            consumer.ack(msg)

        sim.run(until=sim.process(holder(sim)))

    def test_caretaker_process_sweeps(self, sim):
        from repro.broker import Consumer, MessageBroker

        broker = MessageBroker(sim)
        consumer = Consumer(broker, "rai/tasks")
        broker.publish("rai", {"n": 1})

        def dead(sim):
            yield consumer.get()

        sim.run(until=sim.process(dead(sim)))
        sim.process(broker.caretaker(interval=10.0,
                                     in_flight_timeout=30.0))
        sim.run(until=100.0)
        assert consumer.channel.depth == 1
        assert broker.counters.get("stale_requeued") == 1


class TestWorkerCrashRecovery:
    def test_job_survives_worker_crash(self):
        """The headline at-least-once path, end to end."""
        system = RaiSystem.standard(num_workers=1, seed=66)
        system.start_caretaker(interval=30.0, in_flight_timeout=600.0)
        victim = system.workers[0]

        client = system.new_client(team="resilient-team")
        client.stage_project(FILES)
        job_proc = system.sim.process(client.submit())

        def chaos(sim):
            # Let the worker take the job, then kill it mid-flight.
            yield sim.timeout(5.0)
            assert victim.active_jobs == 1
            victim.crash()
            # Replacement capacity arrives a minute later.
            yield sim.timeout(60.0)
            system.add_worker()

        system.sim.process(chaos(system.sim))
        result = system.run(job_proc)
        assert result.status is JobStatus.SUCCEEDED
        # The job ran on the replacement worker.
        assert result.worker_id != victim.id
        # The message went around twice.
        submissions = system.db.collection("submissions")
        assert submissions.count_documents(
            {"job_id": result.job_id, "status": "succeeded"}) == 1

    def test_crash_without_caretaker_leaves_job_stuck(self):
        """Negative control: no caretaker → the client waits forever."""
        system = RaiSystem.standard(num_workers=1, seed=66)
        victim = system.workers[0]
        client = system.new_client(team="t")
        client.stage_project(FILES)
        job_proc = system.sim.process(client.submit())

        def chaos(sim):
            yield sim.timeout(5.0)
            victim.crash()
            yield sim.timeout(60.0)
            system.add_worker()

        system.sim.process(chaos(system.sim))
        system.run(until=system.sim.now + 7200.0)
        assert job_proc.is_alive   # still waiting: message never requeued

    def test_graceful_stop_still_acks(self):
        """stop() (scale-in) does NOT cause redelivery."""
        system = RaiSystem.standard(num_workers=1, seed=66)
        system.start_caretaker(interval=30.0, in_flight_timeout=600.0)
        victim = system.workers[0]
        client = system.new_client(team="t")
        client.stage_project(FILES)
        job_proc = system.sim.process(client.submit())

        def scale_in(sim):
            yield sim.timeout(5.0)
            victim.stop()
            yield sim.timeout(60.0)
            system.add_worker()

        system.sim.process(scale_in(system.sim))
        result = system.run(job_proc)
        # Gracefully stopped worker reported failure itself; no retry.
        assert result.status is JobStatus.FAILED
        assert "shutting down" in result.stderr_text()

    def test_crash_during_interactive_session_ends_it(self):
        from repro.core.interactive import InteractiveSession

        system = RaiSystem(seed=66)
        worker = system.add_worker(WorkerConfig(enable_interactive=True))
        client = system.new_client(team="t")
        client.stage_project(FILES)
        session = InteractiveSession(client)

        def student(sim):
            yield from session.start()
            out = yield from session.run("pwd")
            return out

        proc = system.sim.process(student(system.sim))
        result = system.run(proc)
        assert result.exit_code == 0
        worker.crash()
        assert not worker.is_running


TERMINAL = {JobStatus.SUCCEEDED, JobStatus.FAILED, JobStatus.REJECTED,
            JobStatus.TIMEOUT, JobStatus.DEAD_LETTERED}


def _fresh_ids():
    """Chaos runs compare job ids across runs; reset the global counters."""
    from repro.broker.message import reset_message_ids
    from repro.core.job import reset_job_ids

    reset_job_ids()
    reset_message_ids()


@pytest.mark.chaos
class TestChaosRecovery:
    """The acceptance scenario: a seeded fault plan over a full deployment.

    Every job must reach a terminal state, every job must have exactly one
    ``submissions`` record, and two runs with the same seed must produce
    identical timelines.
    """

    def _run_once(self, seed: int):
        from repro.core.config import SystemConfig
        from repro.faults import FaultPlan, StorageFault, WorkerCrashFault

        _fresh_ids()
        system = RaiSystem.standard(
            num_workers=2, seed=seed,
            config=SystemConfig(client_wait_timeout_seconds=4 * 3600.0))
        system.start_caretaker(interval=30.0, in_flight_timeout=600.0)
        system.start_dead_letter_consumer(interval=300.0)
        system.start_fault_plan(FaultPlan(
            worker_crashes=(
                WorkerCrashFault(window=(5.0, 40.0), restart_after=45.0),),
            storage_faults=(
                StorageFault(op="get", failures_per_key=2,
                             bucket="rai-uploads"),),
        ))
        clients = []
        for i in range(6):
            client = system.new_client(team=f"team-{i:02d}")
            client.stage_project(FILES)
            clients.append(client)
        results = system.run_all(c.submit() for c in clients)
        return system, results

    def _timeline(self, results):
        return [(r.job_id, r.status.value, round(r.finished_at, 6))
                for r in results]

    def test_every_job_terminal_with_exactly_one_record(self):
        system, results = self._run_once(seed=1234)
        submissions = system.db.collection("submissions")
        assert len(results) == 6
        for result in results:
            assert result.status in TERMINAL
            assert result.finished_at is not None
            assert submissions.count_documents(
                {"job_id": result.job_id}) == 1
        # The plan actually fired: one crash, and two injected fetch
        # failures per job (each retried with backoff).
        counters = system.monitor.counters
        assert counters.get("faults_worker_crash") == 1
        assert counters.get("faults_storage_get") == 2 * 6
        assert counters.get("storage_retries") >= 2 * 6
        # The crash was recovered from (redelivery), not double-recorded.
        assert counters.get("duplicate_records_suppressed") == 0
        assert len(system.workers) == 3   # 2 original + 1 replacement

    def test_same_seed_same_timeline(self):
        _, first = self._run_once(seed=777)
        _, second = self._run_once(seed=777)
        assert self._timeline(first) == self._timeline(second)

    def test_different_seed_different_timeline(self):
        _, first = self._run_once(seed=777)
        _, second = self._run_once(seed=778)
        assert self._timeline(first) != self._timeline(second)


@pytest.mark.chaos
class TestStorageRetryRecovery:
    def test_transient_fetch_errors_retried_to_success(self):
        from repro.faults import FaultPlan, StorageFault

        system = RaiSystem.standard(num_workers=1, seed=9)
        system.start_fault_plan(FaultPlan(storage_faults=(
            StorageFault(op="get", failures_per_key=2,
                         bucket="rai-uploads"),)))
        client = system.new_client(team="t")
        client.stage_project(FILES)
        result = system.run(client.submit())
        assert result.status is JobStatus.SUCCEEDED
        assert system.monitor.counters.get("storage_retries") == 2
        assert "retry 1/3" in result.stderr_text()
        # Backoff slept in simulated time before the job proceeded.
        assert result.finished_at > result.queued_at

    def test_transient_upload_errors_degrade_not_fail(self):
        from repro.faults import FaultPlan, StorageFault

        system = RaiSystem.standard(num_workers=1, seed=9)
        system.start_fault_plan(FaultPlan(storage_faults=(
            StorageFault(op="put", failures_per_key=2,
                         bucket="rai-builds"),)))
        client = system.new_client(team="t")
        client.stage_project(FILES)
        result = system.run(client.submit())
        # The build ran and the artifact upload eventually succeeded.
        assert result.status is JobStatus.SUCCEEDED
        assert result.build_url is not None
        assert system.monitor.counters.get("storage_retries") == 2

    def test_retry_budget_exhaustion_fails_terminally(self):
        from repro.faults import FaultPlan, StorageFault

        system = RaiSystem.standard(num_workers=1, seed=9)
        system.start_fault_plan(FaultPlan(storage_faults=(
            StorageFault(op="get", failures_per_key=99,
                         bucket="rai-uploads"),)))
        client = system.new_client(team="t")
        client.stage_project(FILES)
        result = system.run(client.submit())
        assert result.status is JobStatus.FAILED
        assert "cannot fetch project after retries" in result.stderr_text()
        submissions = system.db.collection("submissions")
        assert submissions.count_documents(
            {"job_id": result.job_id, "status": "failed"}) == 1


@pytest.mark.chaos
class TestDeadLetterPath:
    def test_poison_message_drained_into_docdb(self):
        system = RaiSystem.standard(num_workers=1, seed=3)
        system.broker.publish("rai", {"not": "a job"})
        system.run(until=1.0)
        # 5 zero-time redeliveries exhausted the attempt budget.
        assert system.broker.dead_letter_count() == 1
        assert system.queue_depth() == 0
        counters = system.monitor.counters
        assert counters.get("malformed_job_messages") == 1
        assert counters.get("task_messages_dead_lettered") == 1

        assert system.drain_dead_letters() == 1
        assert system.broker.dead_letter_count() == 0
        doc = system.db.collection("submissions").find_one(
            {"status": "dead_lettered"})
        assert doc is not None
        assert doc["job_id"] is None
        assert doc["attempts"] == 5
        # The sweep is idempotent.
        assert system.drain_dead_letters() == 0

    def test_dead_letter_consumer_unblocks_waiting_client(self):
        from repro.broker.client import Consumer

        system = RaiSystem.standard(num_workers=1, seed=3)
        system.start_dead_letter_consumer(interval=60.0)
        job_id = "job-ghost"
        # Subscribe first, like the real client (step 5), then publish a
        # task message that carries a job_id but is otherwise unparseable.
        watcher = Consumer(system.broker, f"log_{job_id}/#watch")
        system.broker.publish("rai", {"job_id": job_id})

        def waiting_client(sim):
            message = yield watcher.get()
            watcher.ack(message)
            return message.body

        proc = system.sim.process(waiting_client(system.sim))
        end = system.run(proc)
        assert end["type"] == "end"
        assert end["status"] == "dead_lettered"
        assert "dead-lettered after 5" in end["reason"]
        doc = system.db.collection("submissions").find_one(
            {"job_id": job_id})
        assert doc["status"] == "dead_lettered"

    def test_health_report_shows_recovery_counters(self):
        from repro.core.telemetry import health_report

        system = RaiSystem.standard(num_workers=1, seed=3)
        system.broker.publish("rai", {"not": "a job"})
        system.run(until=1.0)
        system.drain_dead_letters()
        report = health_report(system)
        assert "dead letters (drained)" in report


@pytest.mark.chaos
class TestClientWaitTimeout:
    def test_silent_worker_crash_times_out_client(self):
        """No caretaker, no redelivery: the bounded wait ends the submit."""
        system = RaiSystem.standard(num_workers=1, seed=66)
        victim = system.workers[0]
        client = system.new_client(team="t")
        client.stage_project(FILES)
        job_proc = system.sim.process(client.submit(wait_timeout=300.0))

        def chaos(sim):
            yield sim.timeout(5.0)
            victim.crash()

        system.sim.process(chaos(system.sim))
        result = system.run(job_proc)
        assert result.status is JobStatus.TIMEOUT
        assert "timed out after 300s" in result.error
        assert result.finished_at == pytest.approx(
            result.queued_at + 300.0)
        assert system.monitor.counters.get("client_wait_timeouts") == 1
        # The log subscription was released: nothing pins the ephemeral
        # topic once the worker-side producer is gone too.
        assert f"log_{result.job_id}" not in system.broker.topics

    def test_system_default_timeout_applies(self):
        from repro.core.config import SystemConfig

        system = RaiSystem.standard(
            num_workers=1, seed=66,
            config=SystemConfig(client_wait_timeout_seconds=120.0))
        system.workers[0].stop()   # nobody will ever serve the job
        client = system.new_client(team="t")
        client.stage_project(FILES)
        result = system.run(client.submit())
        assert result.status is JobStatus.TIMEOUT

    def test_fast_job_unaffected_by_timeout(self):
        system = RaiSystem.standard(num_workers=1, seed=66)
        client = system.new_client(team="t")
        client.stage_project(FILES)
        result = system.run(client.submit(wait_timeout=4 * 3600.0))
        assert result.status is JobStatus.SUCCEEDED
        assert system.monitor.counters.get("client_wait_timeouts") == 0


class TestPublishFailureCleanup:
    def test_rejected_publish_releases_log_subscription(self):
        system = RaiSystem.standard(num_workers=1, seed=5)
        system.broker.max_message_bytes = 64   # any job request is too big
        client = system.new_client(team="t")
        client.stage_project(FILES)
        result = system.run(client.submit())
        assert result.status is JobStatus.REJECTED
        assert "rejected by the broker" in result.error
        assert system.monitor.counters.get("client_publish_rejected") == 1
        # Regression: the pre-subscribed log consumer must not pin the
        # ephemeral log topic forever.
        leaked = [name for name in system.broker.topics
                  if name.startswith("log_")]
        assert leaked == []


class TestJobDeadline:
    def test_slow_transfer_exceeds_wall_clock_deadline(self):
        system = RaiSystem.standard(
            num_workers=1, seed=7,
            worker_config=WorkerConfig(job_deadline_seconds=10.0,
                                       storage_bandwidth_bps=1e6))
        client = system.new_client(team="t")
        client.stage_project(FILES)
        client.project_padding_bytes = 50_000_000   # 50 s at 1 MB/s
        result = system.run(client.submit())
        assert result.status is JobStatus.FAILED
        assert result.exit_code == 124
        assert "deadline" in result.stderr_text()
        assert system.monitor.counters.get("jobs_deadline_exceeded") == 1
        submissions = system.db.collection("submissions")
        assert submissions.count_documents(
            {"job_id": result.job_id, "status": "failed"}) == 1

    def test_deadline_disabled_allows_slow_jobs(self):
        system = RaiSystem.standard(
            num_workers=1, seed=7,
            worker_config=WorkerConfig(job_deadline_seconds=None,
                                       storage_bandwidth_bps=1e6))
        client = system.new_client(team="t")
        client.stage_project(FILES)
        client.project_padding_bytes = 50_000_000
        result = system.run(client.submit())
        assert result.status is JobStatus.SUCCEEDED
