"""The RAI worker: §V "Worker Operations", implemented step by step.

1. subscribe to the ``rai`` topic's task channel;
2. on a message: parse, check credentials, extract the build spec;
3. start a Docker container from the job's base image (pulling on a cache
   miss), with limited RAM, no network, the CUDA volume mounted, and all
   stdout/stderr piped to the ``log_${job_id}`` topic;
4. download the client's project archive and mount it at ``/src``
   (read-only), with a writable ``/build`` working directory;
5. execute the build-file commands in the container;
6. archive ``/build``, upload it to the file server, send its URL and the
   ``End`` message, and destroy the container.

A worker runs ``max_concurrent_jobs`` executor loops.  Near deadlines the
course set this to 1 because exclusive use "makes the performance timing
more accurate and repeatable" — reproduced here as contention jitter that
scales with the number of co-running jobs.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import List, Optional

from repro.broker.client import Consumer, Producer
from repro.buildspec.parser import parse_build_spec
from repro.buildspec.spec import command_cacheable
from repro.container.pool import WarmContainerPool
from repro.container.runtime import ContainerRuntime
from repro.container.volumes import VolumeMount, cuda_volume
from repro.core.config import WorkerConfig
from repro.core.job import Job, JobKind, JobStatus, _CORRECTNESS_RE, _ELAPSED_RE, _TIME_RE
from repro.errors import (
    BuildSpecError,
    ContainerError,
    InvalidCredentials,
    Interrupt,
    JobDeadlineExceeded,
    SignatureMismatch,
    StorageError,
    TransientStorageError,
)
from repro.gpu.device import get_device
from repro.storage.buildcache import image_cache_key
from repro.storage.chunkstore import digest_file_map
from repro.vfs import VirtualFileSystem, file_digest, pack_tree, unpack_tree

_worker_counter = itertools.count(1)


def _defuse_interrupt_failure(process_event) -> None:
    if not process_event._ok and isinstance(process_event._value, Interrupt):
        process_event._defused = True


class RaiWorker:
    """One worker node (an "agent that starts a sandboxed environment to
    execute students' code", §IV)."""

    def __init__(self, system, config: Optional[WorkerConfig] = None,
                 worker_id: Optional[str] = None):
        self.system = system
        self.sim = system.sim
        self.config = config or WorkerConfig()
        self.id = worker_id or f"worker-{next(_worker_counter):04d}"
        self.gpu = get_device(self.config.gpu_model)
        self.runtime = ContainerRuntime(
            registry=system.registry,
            pull_bandwidth_bps=self.config.pull_bandwidth_bps,
            clock=lambda: self.sim.now,
        )
        self.pool = WarmContainerPool(
            self.runtime,
            clock=lambda: self.sim.now,
            max_per_image=self.config.warm_pool_size,
            ttl_seconds=self.config.warm_pool_ttl_seconds,
            create_seconds=self.config.container_create_seconds,
            reset_seconds=self.config.container_reset_seconds,
            events=getattr(system, "events", None),
            owner=self.id,
            usage=getattr(system, "usage", None),
        )
        #: The deployment event log (None for bare test harnesses).
        self.events = getattr(system, "events", None)
        self._rng = system.rng.stream(f"worker:{self.id}")
        # Backoff jitter draws from its own stream so retries never perturb
        # the timing-noise sequence of a fault-free run with the same seed.
        self._retry_rng = system.rng.stream(f"worker:{self.id}:retry")
        self._stopped = False
        self._crashed = False
        #: Home partition index on a sharded deployment (set by
        #: ``RaiSystem.add_worker``); None = consume ``task_route`` as-is.
        self.partition: Optional[int] = None
        # Manifest-aware fetch cache: content digests (chunk hashes, or
        # whole-object etags for non-chunked objects) this worker already
        # transferred, LRU-bounded by fetch_cache_bytes.  A repeat fetch
        # of identical content is near-free; a resubmission with small
        # edits transfers only its changed chunks.
        self._fetch_cache: "OrderedDict[str, int]" = OrderedDict()
        self._fetch_cache_bytes = 0
        self.fetch_cache_hit_bytes = 0
        self.fetch_cache_miss_bytes = 0
        self.fetch_cache_evictions = 0
        #: Open worker.job spans (one per in-flight job) so a crash can
        #: annotate and close them — the interrupted generators never
        #: reach their own finally blocks' span bookkeeping in time.
        self._active_spans: List = []
        self.active_jobs = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.busy_seconds = 0.0
        self.started_at = self.sim.now
        self.stopped_at: Optional[float] = None
        # Per-slot live-time accounting: utilization's denominator counts
        # only seconds each concurrency slot actually existed, so slots
        # added or removed mid-run do not skew the busy fraction the
        # autoscaler reads.
        self._slot_counter = itertools.count()
        self._slot_open: dict = {}
        self._slot_seconds_closed = 0.0
        self._executors: List = []
        for _ in range(self.config.max_concurrent_jobs):
            self._spawn_slot()
        if self.config.enable_interactive:
            from repro.core.interactive import serve_sessions

            proc = self.sim.process(serve_sessions(self))
            proc.callbacks.append(_defuse_interrupt_failure)
            self._executors.append(proc)

    def _emit(self, type: str, span=None, **fields) -> None:
        if self.events is not None:
            self.events.emit(type, span=span, worker=self.id, **fields)

    def _spawn_slot(self) -> int:
        slot = next(self._slot_counter)
        self._slot_open[slot] = self.sim.now
        self._emit("worker.slot", action="open", slot=slot)
        proc = self.sim.process(self._executor_loop(slot))
        # A stop() interrupt can land before an executor's generator has
        # even started, in which case the Interrupt escapes the loop's try
        # blocks; mark it handled so it cannot crash the simulation.
        proc.callbacks.append(_defuse_interrupt_failure)
        self._executors.append(proc)
        return slot

    def add_slots(self, count: int = 1) -> None:
        """Grow concurrency mid-run (each new slot starts an executor)."""
        if self._stopped:
            raise RuntimeError("cannot add slots to a stopped worker")
        if count < 1:
            raise ValueError("count must be >= 1")
        for _ in range(count):
            self._spawn_slot()

    def _close_slot(self, slot: int) -> None:
        opened_at = self._slot_open.pop(slot, None)
        if opened_at is not None:
            self._slot_seconds_closed += self.sim.now - opened_at
            self._emit("worker.slot", action="close", slot=slot)

    @property
    def slot_count(self) -> int:
        """Concurrency slots currently live."""
        return len(self._slot_open)

    def slot_seconds(self) -> float:
        """Total slot-seconds of capacity this worker has offered."""
        now = self.sim.now
        return self._slot_seconds_closed + \
            sum(now - opened for opened in self._slot_open.values())

    # -- lifecycle ----------------------------------------------------------

    @property
    def is_running(self) -> bool:
        return not self._stopped

    def stop(self) -> None:
        """Stop accepting new jobs; in-flight jobs are interrupted."""
        if self._stopped:
            return
        self._stopped = True
        self.stopped_at = self.sim.now
        self.pool.close()
        for slot in list(self._slot_open):
            self._close_slot(slot)
        for proc in self._executors:
            if proc.is_alive:
                proc.interrupt("worker stopped")

    def crash(self) -> None:
        """Abrupt death (spot-instance reclaim, kernel panic).

        Unlike :meth:`stop`, nothing is acked, published, or recorded:
        any in-flight job message stays un-acked on its channel until the
        broker caretaker's stale sweep redelivers it to another worker —
        the failure-robustness path of §V ("these operations need to ...
        be robust to failures").
        """
        self._crashed = True
        self._emit("worker.crash", active_jobs=self.active_jobs)
        tracer = self.system.tracer
        for span in list(self._active_spans):
            span.add_event("fault.worker_crash", worker=self.id)
            tracer.end_subtree(span, status="error",
                               message=f"worker {self.id} crashed mid-job")
        self._active_spans.clear()
        self.stop()

    @property
    def uptime(self) -> float:
        end = self.stopped_at if self.stopped_at is not None else self.sim.now
        return end - self.started_at

    def utilization(self) -> float:
        """Busy fraction of the slot-seconds this worker actually offered.

        The denominator is per-slot live time (not uptime × configured
        concurrency), so slots added via :meth:`add_slots` or retired
        mid-run are weighted by how long they really existed.
        """
        denom = self.slot_seconds()
        return self.busy_seconds / denom if denom > 0 else 0.0

    def pool_hit_rate(self) -> float:
        """Warm-pool hit fraction over this worker's container acquires."""
        return self.pool.hit_rate()

    # -- the executor loop ------------------------------------------------------

    def _make_consumer(self):
        """The task consumer an executor slot opens.

        Partition-homed workers on a sharded deployment get a
        :class:`~repro.shard.steal.StealingConsumer` (home-channel
        claims with pull-steal fallback); everything else — unsharded
        systems, bare test harnesses, custom-pinned routes — gets a
        plain :class:`~repro.broker.client.Consumer`, unchanged.
        """
        shards = getattr(self.system, "shards", None)
        if shards is not None and self.partition is not None:
            return shards.consumer(self.partition)
        return Consumer(self.system.broker, self.config.task_route)

    def _executor_loop(self, slot: int):
        consumer = self._make_consumer()
        try:
            while not self._stopped:
                # Prefetch: claim an already-queued message synchronously
                # (one scheduler round-trip per *batch*, not per message);
                # park on the blocking get only when nothing is ready.
                # try_deliver never steals from another executor's pending
                # blocking get, so idle slots still wake fairly.
                message = consumer.try_get()
                if message is not None:
                    self.system.monitor.incr("worker_prefetch_claims")
                else:
                    get_event = consumer.get()
                    try:
                        message = yield get_event
                    except Interrupt:
                        self._cancel_get(consumer, get_event)
                        break
                if self._stopped:
                    consumer.requeue(message)
                    break
                start = self.sim.now
                try:
                    outcome = yield from self._process_job(message)
                except Interrupt:
                    self.busy_seconds += self.sim.now - start
                    if not self._crashed:
                        # Graceful scale-down: the job was already
                        # consumed and its failure reported; ack it.
                        # A *crash* acks nothing — the caretaker will
                        # redeliver the message to another worker.
                        consumer.ack(message)
                    break
                self.busy_seconds += self.sim.now - start
                if outcome is False:
                    # Unparseable message: requeue it (another worker
                    # generation might understand it) until the attempt
                    # budget routes it to the dead-letter list, where the
                    # system dead-letter consumer picks it up.
                    if not consumer.requeue(message):
                        self.system.monitor.incr(
                            "task_messages_dead_lettered")
                        self.system.monitor.log(
                            "task_message_dead_lettered",
                            message_id=message.id,
                            attempts=message.attempts)
                else:
                    # The job was parsed out of the body long ago and the
                    # envelope is never touched again: recycle it.
                    consumer.ack_release(message)
        finally:
            consumer.close()
            self._close_slot(slot)

    @staticmethod
    def _cancel_get(consumer, get_event) -> None:
        if not get_event.triggered:
            # Withdraw the pending get so no message is delivered into
            # the void after this executor exits.
            get_event.succeed(None)
        else:
            # Raced with a delivery: hand the message back to the channel.
            get_event.callbacks.append(
                lambda evt: evt.value is not None and
                consumer.requeue(evt.value))

    # -- job processing ------------------------------------------------------

    def _process_job(self, message):
        try:
            job = Job.from_message(message.body)
        except (KeyError, TypeError, ValueError) as exc:
            # A malformed task message (version skew, junk injected onto
            # the queue) must not crash the worker.  Returning False makes
            # the executor requeue it toward the dead-letter path; count
            # and log the parse error once, on first sight.
            if message.attempts <= 1:
                self.system.monitor.incr("malformed_job_messages")
                self.jobs_failed += 1
            self.system.monitor.log(
                "malformed_job_message", message_id=message.id,
                attempts=message.attempts,
                error=f"{type(exc).__name__}: {exc}")
            return False
        deadline = (self.sim.now + self.config.job_deadline_seconds
                    if self.config.job_deadline_seconds is not None else None)
        proc_start = self.sim.now
        pool_hit: Optional[bool] = None
        # Per-job usage accounting, folded into ONE meter call in the
        # finally block (metering must stay off the per-command path).
        # Attribution rides the job document, so a redelivered or
        # cross-shard-stolen job still bills its originating team.
        usage = getattr(self.system, "usage", None)
        usage_exec_seconds = 0.0
        usage_saved_seconds = 0.0
        usage_fetch_bytes = 0
        usage_upload_bytes = 0
        self.active_jobs += 1
        tracer = self.system.tracer
        # Parent on the message headers: the broker.deliver span the
        # channel minted on claim (or the client's publish span if this
        # message never carried delivery tracing).
        wspan = tracer.start_span(
            "worker.job", parent=message.headers, kind="worker",
            attributes={"worker": self.id, "attempt": message.attempts},
            job_id=job.id)
        self._active_spans.append(wspan)
        producer = Producer(self.system.broker, f"log_{job.id}")
        outputs: List[tuple] = []

        def publish(kind: str, _headers=None, **payload) -> None:
            producer.publish({"type": kind, "t": self.sim.now,
                              "worker": self.id, **payload},
                             headers=_headers)

        def publish_log(stream: str, text: str) -> None:
            outputs.append((stream, text))
            publish("log", stream=stream, text=text)

        status = JobStatus.FAILED
        exit_code: Optional[int] = None
        build_url = None
        try:
            publish("status", status="accepted")
            self._emit("job.state_change", span=wspan, job_id=job.id,
                       team=job.team, status="accepted",
                       attempt=message.attempts)

            # Step 2 — credentials and spec.
            try:
                with tracer.start_span("buildspec.parse", parent=wspan,
                                       kind="worker"):
                    credential = self._verify(job)
                    spec = parse_build_spec(job.spec_yaml)
                    spec.validate(
                        image_whitelist=self.system.registry.whitelist
                        or None)
            except (InvalidCredentials, SignatureMismatch,
                    BuildSpecError, ContainerError) as exc:
                publish_log("stderr", f"✗ job rejected: {exc}\n")
                status = JobStatus.REJECTED
                return

            # Step 4 — fetch and unpack the project.  Transient storage
            # errors are retried with backoff; permanent ones (NoSuchKey
            # after lifecycle expiry etc.) reject immediately.
            get_span = tracer.start_span(
                "storage.get", parent=wspan, kind="storage",
                attributes={"bucket": job.upload_bucket,
                            "key": job.upload_key})
            try:
                archive = yield from self._storage_call(
                    "project fetch",
                    lambda: self.system.storage.get_object(
                        job.upload_bucket, job.upload_key),
                    deadline, publish_log, span=get_span)
            except TransientStorageError as exc:
                publish_log("stderr",
                            f"✗ cannot fetch project after retries: {exc}\n")
                get_span.end(status="error", message=str(exc))
                status = JobStatus.FAILED
                self._record(job, status, exit_code, outputs, build_url,
                             attempts=message.attempts, span=wspan,
                             service_seconds=self.sim.now - proc_start)
                return
            except StorageError as exc:  # NoSuchKey etc.
                publish_log("stderr", f"✗ cannot fetch project: {exc}\n")
                get_span.end(status="error", message=str(exc))
                status = JobStatus.REJECTED
                return
            transfer_bytes = self._fetch_transfer_bytes(archive)
            usage_fetch_bytes = transfer_bytes
            get_span.set_attribute("transfer_bytes", transfer_bytes)
            get_span.set_attribute("object_bytes", archive.size)
            yield self.sim.timeout(
                transfer_bytes / self.config.storage_bandwidth_bps)
            get_span.end()
            self._check_deadline(deadline)
            project_fs = VirtualFileSystem(clock=lambda: self.sim.now)
            unpack_tree(archive.data, project_fs, "/")
            source_digest = self._source_digest(archive, project_fs)

            # Step 3 — container (pull missing image layers on a cache
            # miss, then acquire warm from the pool or create cold).
            pull_cost = self.runtime.pull_cost_seconds(spec.image)
            if pull_cost > 0:
                publish_log("stdout", f"Pulling image {spec.image} ...\n")
                wspan.add_event("image.pull", image=spec.image,
                                seconds=pull_cost)
                self.system.monitor.incr(
                    "image_bytes_pulled",
                    int(pull_cost * self.config.pull_bandwidth_bps))
                yield self.sim.timeout(pull_cost)
                self._check_deadline(deadline)
            container, pool_hit, acquire_cost = self.pool.acquire(
                spec.image,
                limits=self.config.limits,
                mounts=[
                    VolumeMount("/src", read_only=True,
                                source_fs=project_fs),
                    cuda_volume(),
                ],
                gpu_device=self.gpu,
                on_output=publish_log,
                usage_key=job.team or job.username,
            )
            # Step 5 — run the build commands.
            try:
                if acquire_cost > 0:
                    yield self.sim.timeout(acquire_cost)
                wspan.add_event("container.acquire", pool_hit=pool_hit,
                                seconds=acquire_cost,
                                container=container.id,
                                generation=container.generation)
                self.system.metrics.histogram(
                    "container_acquire_seconds",
                    outcome="warm" if pool_hit else "cold",
                ).observe(acquire_cost)
                self._check_deadline(deadline)
                # Contention noise flows into the container's measured
                # times: alone on a worker it is ~solo_jitter; with
                # co-running jobs it grows — the single-job-mode
                # ablation's mechanism.
                container.time_dilation = self._timing_noise
                container.start()
                publish("status", status="running", container=container.id)
                self._emit("job.state_change", span=wspan, job_id=job.id,
                           team=job.team, status="running",
                           container=container.id)
                run_span = tracer.start_span(
                    "container.run", parent=wspan, kind="container",
                    attributes={"image": spec.image,
                                "container": container.id})
                build_cache = self.system.build_cache
                cache_image_key = None
                if build_cache is not None and spec.cache_enabled:
                    cache_image_key = image_cache_key(
                        self.runtime.registry.get(spec.image))
                exit_code = 0
                for command in spec.build_commands:
                    self._check_deadline(deadline)
                    publish("command", command=command)
                    exec_span = tracer.start_span(
                        "container.exec", parent=run_span, kind="container",
                        attributes={"command": command})
                    cacheable = (cache_image_key is not None
                                 and command_cacheable(command))
                    entry = None
                    if cacheable:
                        entry = build_cache.lookup(
                            cache_image_key, container.workdir, command,
                            container.fs, job_id=job.id)
                    if entry is not None:
                        # Cache hit: replay the recorded artifact tree,
                        # streams, and exit code instead of executing.
                        # Burn the timing-noise draws the real execution
                        # would have taken, so every downstream RNG
                        # consumer sees the exact same sequence and run
                        # output stays byte-identical cache on or off.
                        for _ in range(entry.rng_draws):
                            self._timing_noise()
                        artifact_bytes = build_cache.apply(
                            entry, container.fs)
                        replay_seconds = (
                            self.system.config.buildcache_replay_seconds
                            + artifact_bytes
                            / self.config.storage_bandwidth_bps)
                        exec_span.set_attribute("cache", "hit")
                        exec_span.add_event(
                            "buildcache.replay", key=entry.key[:16],
                            artifact_bytes=artifact_bytes,
                            saved_seconds=round(
                                entry.charged_seconds - replay_seconds, 6))
                        usage_exec_seconds += replay_seconds
                        usage_saved_seconds += max(
                            0.0, entry.charged_seconds - replay_seconds)
                        yield self.sim.timeout(replay_seconds)
                        if entry.stdout:
                            publish_log("stdout", entry.stdout)
                        if entry.stderr:
                            publish_log("stderr", entry.stderr)
                        exec_span.set_attribute("exit_code",
                                                entry.exit_code)
                        if entry.exit_code != 0:
                            publish_log(
                                "stderr",
                                f"✗ command exited with status "
                                f"{entry.exit_code}\n")
                            exec_span.end(
                                status="error",
                                message=f"exit {entry.exit_code}")
                            exit_code = entry.exit_code
                            break
                        exec_span.end()
                        continue
                    if cacheable:
                        # Record what the command observes (reads, stat
                        # probes, tree walks) and writes, plus how many
                        # timing-noise draws it consumes.
                        trace = container.fs.start_tracking()
                        draws = [0]

                        def counted_noise(_draws=draws):
                            _draws[0] += 1
                            return self._timing_noise()

                        container.time_dilation = counted_noise
                    try:
                        result = container.exec_line(command)
                    finally:
                        if cacheable:
                            if container.fs is not None:
                                container.fs.stop_tracking()
                            container.time_dilation = self._timing_noise
                    # sim_duration already includes contention dilation
                    # (applied at charge time inside the container).
                    usage_exec_seconds += result.sim_duration
                    yield self.sim.timeout(result.sim_duration)
                    exec_span.set_attribute("exit_code", result.exit_code)
                    if result.error is not None:
                        publish_log("stderr", f"✗ {result.error}\n")
                        exec_span.add_event("error", error=result.error)
                        exec_span.end(status="error", message=result.error)
                        exit_code = result.exit_code
                        break
                    if cacheable:
                        # Publish only after the execution's sim time has
                        # fully elapsed: an interrupt (crash) inside the
                        # timeout above unwinds this generator before the
                        # entry exists, so no partial artifact can ever
                        # be observed.  Non-zero exits are cached too —
                        # a deterministic compile error replays as
                        # cheaply as a success.
                        build_cache.capture(
                            cache_image_key, container.workdir, command,
                            trace, container.fs,
                            result.stdout, result.stderr,
                            result.exit_code, result.sim_duration,
                            draws[0], source_digest=source_digest,
                            job_id=job.id)
                        exec_span.set_attribute("cache", "miss")
                    if result.exit_code != 0:
                        publish_log(
                            "stderr",
                            f"✗ command exited with status "
                            f"{result.exit_code}\n")
                        exec_span.end(
                            status="error",
                            message=f"exit {result.exit_code}")
                        exit_code = result.exit_code
                        break
                    exec_span.end()
                status = (JobStatus.SUCCEEDED if exit_code == 0
                          else JobStatus.FAILED)
                run_span.set_attribute("exit_code", exit_code)
                run_span.end(status=None if exit_code == 0 else "error")

                # Step 6 — archive /build and upload it.
                if container.fs is not None and container.fs.isdir("/build"):
                    blob = pack_tree(container.fs, "/build")
                    key = f"{job.id}/build.tar.bz2"
                    put_span = tracer.start_span(
                        "storage.put", parent=wspan, kind="storage",
                        attributes={
                            "bucket": self.system.config.build_bucket,
                            "key": key, "bytes": len(blob)})
                    yield self.sim.timeout(
                        len(blob) / self.config.storage_bandwidth_bps)
                    try:
                        yield from self._storage_call(
                            "build upload",
                            lambda: self.system.storage.put_object(
                                self.system.config.build_bucket, key, blob,
                                metadata={
                                    "job_id": job.id,
                                    "username": job.username,
                                    "team": job.team or "",
                                    "kind": job.kind.value,
                                }),
                            deadline, publish_log, span=put_span)
                    except TransientStorageError as exc:
                        # Degrade rather than fail the whole job: the build
                        # ran; only its artifact is lost.
                        publish_log(
                            "stderr",
                            f"⚠ build upload failed after retries: {exc}\n")
                        put_span.end(status="error", message=str(exc))
                        self.system.monitor.incr("build_upload_failures")
                    else:
                        put_span.end()
                        usage_upload_bytes = len(blob)
                        build_url = self.system.storage.presign_get(
                            self.system.config.build_bucket, key,
                            expires_in=self.system.config
                            .presign_expiry_seconds)
                        publish("build", url=build_url, key=key,
                                bucket=self.system.config.build_bucket,
                                size=len(blob))
            finally:
                self.pool.release(container)

            # Record the submission and, for finals, the ranking.
            self._record(job, status, exit_code, outputs, build_url,
                         attempts=message.attempts, span=wspan,
                         service_seconds=self.sim.now - proc_start,
                         pool_hit=pool_hit)
        except JobDeadlineExceeded as exc:
            # The paper's 1-hour cap, applied wall-clock: kill whatever is
            # left (the container was destroyed on the way out) and report
            # a terminal failure so the executor slot frees up.
            publish_log("stderr", f"✗ {exc}\n")
            status = JobStatus.FAILED
            exit_code = 124
            self.system.monitor.incr("jobs_deadline_exceeded")
            self.system.monitor.log("job_deadline_exceeded", job_id=job.id,
                                    worker=self.id)
            wspan.add_event("deadline_exceeded",
                            deadline_s=self.config.job_deadline_seconds)
            self._record(job, status, exit_code, outputs, build_url,
                         attempts=message.attempts, span=wspan,
                         service_seconds=self.sim.now - proc_start,
                         pool_hit=pool_hit)
        except Interrupt:
            if not self._crashed:
                publish_log("stderr", "✗ worker shutting down mid-job\n")
                status = JobStatus.FAILED
                self._record(job, status, exit_code, outputs, build_url,
                             attempts=message.attempts, span=wspan,
                             service_seconds=self.sim.now - proc_start,
                             pool_hit=pool_hit)
            raise
        finally:
            if status is JobStatus.SUCCEEDED:
                self.jobs_completed += 1
            else:
                self.jobs_failed += 1
            if not self._crashed:
                # A crashed worker's job is not *finished* — the broker
                # redelivers it, and that attempt reports the outcome.
                # Only real terminations feed the success-ratio SLO.
                # Same rule for the usage meter: the redelivery attempt
                # (which re-runs the work) is the one that bills.
                if usage is not None:
                    usage.record_job(
                        job.team or job.username, job_id=job.id,
                        trace_id=wspan.trace_id,
                        container_seconds=usage_exec_seconds,
                        gpu_seconds=(usage_exec_seconds
                                     if self.gpu is not None else 0.0),
                        slot_seconds=self.sim.now - proc_start,
                        bytes_downloaded=usage_fetch_bytes,
                        bytes_uploaded=usage_upload_bytes,
                        build_seconds_saved=usage_saved_seconds)
                self.system.metrics.counter(
                    "jobs_finished", status=status.value).inc()
                self._emit("job.state_change", span=wspan, job_id=job.id,
                           team=job.team, status=status.value,
                           exit_code=exit_code, worker_final=True)
                # A crashed worker cannot publish; its client keeps
                # waiting until redelivery produces a real End.  The End
                # message carries the publish span's context so the
                # client-side delivery joins the trace.
                end_span = tracer.start_span(
                    "result.publish", parent=wspan, kind="worker",
                    attributes={"status": status.value})
                publish("end", status=status.value, exit_code=exit_code,
                        _headers=end_span.headers())
                end_span.end()
            wspan.set_attribute("status", status.value)
            # Safety net: ends whatever children an exceptional unwind
            # (deadline, interrupt) left open, then the job span itself.
            # A crash already ended the subtree with an error status.
            tracer.end_subtree(wspan)
            if wspan in self._active_spans:
                self._active_spans.remove(wspan)
            producer.close()
            self.active_jobs -= 1

    # -- helpers ------------------------------------------------------------

    def _fetch_transfer_bytes(self, obj) -> int:
        """Bytes a project fetch moves, given the worker's content cache.

        Chunked objects are accounted per chunk digest (plus a padding
        pseudo-entry keyed on the object's etag); plain objects by their
        whole-object etag.  Every ref touched is promoted/inserted into
        the LRU, then the cache is trimmed to its byte budget.
        """
        manifest = getattr(obj, "manifest", None)
        if manifest is not None:
            refs = [(c.digest, c.size) for c in manifest.chunks]
            if obj.padding_bytes:
                refs.append((f"{obj.etag}:padding", obj.padding_bytes))
        else:
            refs = [(obj.etag, obj.size)]
        budget = self.config.fetch_cache_bytes
        transferred = 0
        saved = 0
        for digest, size in refs:
            if budget and digest in self._fetch_cache:
                self._fetch_cache.move_to_end(digest)
                saved += size
                continue
            transferred += size
            if budget:
                self._fetch_cache[digest] = size
                self._fetch_cache_bytes += size
        while self._fetch_cache_bytes > budget:
            _, evicted = self._fetch_cache.popitem(last=False)
            self._fetch_cache_bytes -= evicted
            self.fetch_cache_evictions += 1
        self.fetch_cache_hit_bytes += saved
        self.fetch_cache_miss_bytes += transferred
        self.system.monitor.incr("worker_fetch_bytes", transferred)
        if saved:
            self.system.monitor.incr("worker_fetch_bytes_saved", saved)
        return transferred

    def fetch_cache_stats(self) -> dict:
        """Occupancy and effectiveness of the chunk fetch cache."""
        total = self.fetch_cache_hit_bytes + self.fetch_cache_miss_bytes
        return {
            "entries": len(self._fetch_cache),
            "bytes": self._fetch_cache_bytes,
            "budget_bytes": self.config.fetch_cache_bytes,
            "hit_bytes": self.fetch_cache_hit_bytes,
            "miss_bytes": self.fetch_cache_miss_bytes,
            "evictions": self.fetch_cache_evictions,
            "hit_rate": (self.fetch_cache_hit_bytes / total) if total
            else 0.0,
        }

    def _source_digest(self, archive, project_fs) -> Optional[str]:
        """Content identity of the fetched source tree.

        Free when the upload's manifest carries per-file digests (the
        delta-ingest path); otherwise derived by hashing the unpacked
        tree once — same canonical form either way.
        """
        manifest = getattr(archive, "manifest", None)
        if manifest is not None and manifest.files:
            return manifest.tree_digest()
        files = {path: file_digest(project_fs.read_file(path))
                 for path in project_fs.iter_files("/")}
        return digest_file_map(files) if files else None

    def _check_deadline(self, deadline) -> None:
        if deadline is not None and self.sim.now >= deadline:
            raise JobDeadlineExceeded(
                f"job exceeded its "
                f"{self.config.job_deadline_seconds:.0f}s deadline")

    def _storage_call(self, label: str, fn, deadline, publish_log,
                      span=None):
        """Run a storage operation under the worker's retry policy.

        Generator (``yield from`` it): backoff sleeps happen in simulated
        time.  Only :class:`TransientStorageError` is retried; permanent
        errors and the final transient failure propagate unaltered.
        ``span`` (if given) gets a ``retry`` event per attempt.
        """
        policy = self.config.storage_retry

        def on_retry(attempt, exc):
            self._check_deadline(deadline)
            self.system.monitor.incr("storage_retries")
            if span is not None:
                span.add_event("retry", attempt=attempt,
                               error=f"{type(exc).__name__}: {exc}")
            publish_log(
                "stderr",
                f"⚠ {label} failed ({exc}); "
                f"retry {attempt}/{policy.max_attempts - 1}\n")

        return (yield from policy.call(
            self.sim, fn, rng=self._retry_rng,
            retry_on=(TransientStorageError,), on_retry=on_retry))

    def _verify(self, job: Job):
        credential = self.system.keystore.lookup(job.access_key)
        from repro.auth.signing import verify_request

        body = job.to_message()
        signature = body.pop("signature")
        verify_request(credential.secret_key, body, job.submitted_at,
                       signature)
        return credential

    def _timing_noise(self) -> float:
        """Runtime multiplier; grows with co-running jobs (contention)."""
        base = 1.0 + self.config.solo_jitter * float(self._rng.random())
        others = max(0, self.active_jobs - 1)
        contention = self.config.contention_jitter * others * \
            float(self._rng.random())
        return base + contention

    def _record(self, job: Job, status: JobStatus, exit_code,
                outputs: List[tuple], build_url, attempts: int = 1,
                span=None, service_seconds: Optional[float] = None,
                pool_hit: Optional[bool] = None) -> bool:
        # At-least-once delivery means a job can be processed twice (e.g.
        # a premature stale-sweep redelivered it while the original worker
        # was still alive).  Recording is made effectively-once: whichever
        # delivery records first wins; later ones are suppressed so the
        # submissions collection and the ranking never double-count.
        # Returns True when this call actually recorded.
        record_span = self.system.tracer.start_span(
            "docdb.record", parent=span, kind="docdb",
            attributes={"collection": "submissions"}) if span is not None \
            else None
        submissions = self.system.db.collection("submissions")
        if submissions.find_one({"job_id": job.id}) is not None:
            self.system.monitor.incr("duplicate_records_suppressed")
            self.system.monitor.log("duplicate_record_suppressed",
                                    job_id=job.id, worker=self.id,
                                    attempts=attempts)
            if record_span is not None:
                record_span.set_attribute("duplicate", True)
                record_span.end()
            return False
        stdout = "".join(t for s, t in outputs if s == "stdout")
        stderr = "".join(t for s, t in outputs if s == "stderr")
        elapsed = _ELAPSED_RE.findall(stdout)
        correctness = _CORRECTNESS_RE.findall(stdout)
        time_match = _TIME_RE.search(stderr)
        internal_time = float(elapsed[-1]) if elapsed else None
        instructor_time = float(time_match.group(1)) if time_match else None

        submissions.insert_one({
            "job_id": job.id,
            "attempts": attempts,
            "kind": job.kind.value,
            "username": job.username,
            "team": job.team,
            "worker": self.id,
            "status": status.value,
            "exit_code": exit_code,
            "submitted_at": job.submitted_at,
            "finished_at": self.sim.now,
            # Worker-side service time (fetch + acquire + build + upload):
            # the scheduler's runtime estimator seeds SJF from this.
            "service_seconds": service_seconds,
            "pool_hit": pool_hit,
            "internal_time": internal_time,
            "instructor_time": instructor_time,
            "correctness": float(correctness[-1]) if correctness else None,
            "build_url": build_url,
            "log_bytes": sum(len(t) for _, t in outputs),
            "stdout_tail": stdout[-2000:],
            "stderr_tail": stderr[-2000:],
        })
        self.system.monitor.incr("jobs_recorded")
        if service_seconds is not None:
            # Feed the fair-share estimator that owns this job's key: the
            # shared scheduler, or its partition's instance when sharded.
            note = getattr(self.system, "note_completion", None)
            if note is not None:
                note(job.team or job.username, service_seconds)
            else:
                scheduler = getattr(self.system, "scheduler", None)
                if scheduler is not None:
                    scheduler.note_completion(job.team or job.username,
                                              service_seconds)

        if job.kind is JobKind.SUBMIT and status is JobStatus.SUCCEEDED \
                and internal_time is not None and job.team:
            self.system.ranking.record_final(
                team=job.team,
                internal_time=internal_time,
                instructor_time=instructor_time or internal_time,
                correctness=float(correctness[-1]) if correctness else 0.0,
                username=job.username,
                job_id=job.id,
                at=self.sim.now,
            )
            if record_span is not None:
                record_span.add_event("ranking.recorded", team=job.team)
        if record_span is not None:
            record_span.set_attribute("duplicate", False)
            record_span.end()
        return True
