"""Chaos: a worker crash mid-build never publishes a partial artifact.

Capture is atomic on the simulation timeline — it runs after the
command's timeout completes, with no yield inside, so an interrupt
(worker crash) can only land *before* capture.  These tests drive a
crash into the middle of the build phase and assert the cache holds
either nothing or only complete, verifiable entries, and that the
redelivered job repopulates it exactly once.
"""

import pytest

from repro.core.config import WorkerConfig
from repro.core.job import JobStatus
from repro.core.system import RaiSystem

pytestmark = [pytest.mark.chaos, pytest.mark.buildcache]

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\nint main(){}\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


class TestCrashMidBuild:
    def _crash_at(self, crash_time, seed):
        system = RaiSystem.standard(
            num_workers=1, seed=seed,
            worker_config=WorkerConfig(max_concurrent_jobs=1))
        system.start_caretaker(interval=30.0, in_flight_timeout=120.0)
        victim = system.workers[0]
        client = system.new_client(team="t")
        client.stage_project(FILES)
        job_proc = system.sim.process(client.submit())

        def chaos(sim):
            yield sim.timeout(crash_time)
            if victim.active_jobs:
                victim.crash()

        system.run(system.sim.process(chaos(system.sim)))
        return system, victim, client, job_proc

    @pytest.mark.parametrize("crash_time", [3.0, 5.0, 7.0, 9.0])
    def test_no_partial_artifact_at_any_crash_point(self, crash_time):
        system, victim, _client, _proc = self._crash_at(
            crash_time, seed=int(crash_time * 10))
        cache = system.build_cache
        # Whatever completed before the crash is whole; nothing torn.
        assert cache.verify() == []
        for entry in cache._entries.values():
            # Every recorded output blob is present and sized.
            for digest in entry.blob_digests():
                assert digest in cache._blobs

    def test_redelivered_job_completes_and_caches_once(self):
        system, victim, client, job_proc = self._crash_at(6.0, seed=61)
        cache = system.build_cache
        system.add_worker()
        result = system.run(job_proc)
        assert result.status is JobStatus.SUCCEEDED
        assert result.worker_id != victim.id
        assert cache.verify() == []
        # The full command list is now cached, one entry per command.
        commands = sorted(e.command for e in cache._entries.values())
        assert commands == ["cmake /src", "make"]
        # And a resubmission replays from it.
        gap = system.config.rate_limit_seconds + 1.0

        def resubmit():
            yield system.sim.timeout(gap)
            result = yield from client.submit()
            return result

        r2 = system.run(resubmit())
        assert r2.status is JobStatus.SUCCEEDED
        hits = {e.fields["command"]
                for e in system.events.query(type="buildcache.hit")
                if e.fields.get("job_id") == r2.job_id}
        assert hits == {"cmake /src", "make"}
