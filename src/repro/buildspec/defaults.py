"""The two canonical build files (paper Listings 1 & 2).

Listing 1 is the course default ``rai-build.yml`` used when a project has
none; Listing 2 is the *enforced* final-submission build file — "the build
file is provided by the teaching staff and cannot be modified" (§V,
Student Final Submission).
"""

from __future__ import annotations

from repro.buildspec.parser import parse_build_spec
from repro.buildspec.spec import RaiBuildSpec

#: Listing 1 — the default development build: configure, build, run the
#: small test10 dataset, and profile it under nvprof.
DEFAULT_BUILD_YAML = """\
rai:
  version: '0.1'
  image: webgpu/rai:root
commands:
  build:
    - echo "Building project"
    - cmake /src
    - make
    - ./ece408 /data/test10.hdf5 /data/model.hdf5 10
    - nvprof --export-profile timeline.nvprof ./ece408 /data/test10.hdf5 /data/model.hdf5 10
"""

#: Listing 2 — the final-submission build: snapshot the sources into the
#: build output, rebuild from scratch, and time the full-dataset run with
#: ``/usr/bin/time`` (the instructor-trusted external timer).
FINAL_SUBMISSION_YAML = """\
rai:
  version: '0.1'
  image: webgpu/rai:root
commands:
  build:
    - echo "Submitting project"
    - cp -r /src /build/submission_code
    - cmake /src
    - make
    - /usr/bin/time ./ece408 /data/testfull.hdf5 /data/model.hdf5
"""


def default_build_spec() -> RaiBuildSpec:
    """Listing 1, parsed."""
    return parse_build_spec(DEFAULT_BUILD_YAML)


def final_submission_spec() -> RaiBuildSpec:
    """Listing 2, parsed."""
    return parse_build_spec(FINAL_SUBMISSION_YAML)
