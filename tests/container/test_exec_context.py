"""ExecContext accounting: charge, dilation, captures."""

import pytest

from repro.container import ContainerRuntime, ResourceLimits


@pytest.fixture
def container():
    rt = ContainerRuntime()
    c = rt.create_container("webgpu/rai:root")
    c.start()
    return c


class TestCharge:
    def test_negative_charge_rejected(self, container):
        with pytest.raises(ValueError):
            container._context.charge(-1.0)

    def test_charge_returns_amount(self, container):
        assert container._context.charge(2.0) == 2.0

    def test_dilation_scales_charge(self, container):
        container.time_dilation = lambda: 1.5
        assert container._context.charge(2.0) == pytest.approx(3.0)
        assert container.lifetime_used == pytest.approx(3.0)

    def test_dilation_affects_reported_elapsed(self):
        """The contention mechanism: the program's internal timer sees
        dilated time."""
        def run_with_dilation(factor):
            rt = ContainerRuntime()
            from repro.container.volumes import VolumeMount, cuda_volume
            from repro.gpu import get_device
            from repro.vfs import VirtualFileSystem

            project = VirtualFileSystem()
            project.import_mapping({
                "main.cu": "// @rai-sim quality=0.5 impl=analytic\n",
                "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
            }, "/")
            c = rt.create_container(
                "webgpu/rai:root",
                mounts=[VolumeMount("/src", read_only=True,
                                    source_fs=project), cuda_volume()],
                gpu_device=get_device("K80"))
            c.time_dilation = lambda: factor
            c.start()
            c.exec_line("cmake /src")
            c.exec_line("make")
            result = c.exec_line(
                "./ece408 /data/test10.hdf5 /data/model.hdf5")
            import re

            return float(re.search(r"Elapsed time: ([\d.]+)",
                                   result.stdout).group(1))

        assert run_with_dilation(2.0) == \
            pytest.approx(2 * run_with_dilation(1.0), rel=0.01)


class TestOutputCapture:
    def test_nested_capture_restores(self, container):
        ctx = container._context
        ctx.write_out("before ")
        ctx.push_stdout_capture()
        ctx.write_out("captured")
        inner = ctx.pop_stdout_capture()
        ctx.write_out("after")
        assert inner == "captured"
        assert ctx.stdout_text() == "before after"

    def test_stderr_not_captured_by_redirect(self, container):
        container.exec_line("cat /ghost > /build/out.txt")
        # stderr went to the stream, stdout (empty) to the file.
        assert container.fs.read_text("/build/out.txt") == ""


class TestMemoryAccounting:
    def test_peak_tracks_maximum(self, container):
        ctx = container._context
        ctx.use_memory(1 * 2**30)
        ctx.use_memory(3 * 2**30)
        ctx.use_memory(2 * 2**30)
        assert container.peak_memory == 3 * 2**30

    def test_limit_strictly_enforced(self):
        rt = ContainerRuntime()
        c = rt.create_container("webgpu/rai:root",
                                limits=ResourceLimits(memory_bytes=2**30))
        c.start()
        from repro.errors import MemoryLimitExceeded

        with pytest.raises(MemoryLimitExceeded):
            c._context.use_memory(2**30 + 1)
