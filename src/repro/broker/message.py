"""Message envelopes."""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.sim.pool import FreeList

#: Freelist for per-delivery message carcasses (fan-out copies).  Filled
#: only by the opt-in release paths (``Message.release`` /
#: ``Channel.ack_release``); when empty, construction is a plain ``new``.
message_pool = FreeList()

_next_message_id = 1


def new_message_id() -> str:
    """Process-unique, deterministic message ids (``msg-000001`` ...)."""
    global _next_message_id
    message_id = f"msg-{_next_message_id:06d}"
    _next_message_id += 1
    return message_id


def reset_message_ids() -> None:
    """Restart the id sequence (test isolation helper)."""
    global _next_message_id
    _next_message_id = 1


def advance_message_ids(next_id: int) -> None:
    """Ensure the next minted id is at least ``next_id`` (monotonic).

    Recovery calls this so a restored deployment never re-mints an id a
    pre-crash epoch already used.
    """
    global _next_message_id
    _next_message_id = max(_next_message_id, int(next_id))


def message_id_watermark() -> int:
    """The next id this process would mint (snapshotted on checkpoint)."""
    return _next_message_id


def encode_body(body: Any) -> bytes:
    """The broker's single wire encoding of a message body.

    Every serialisation of a body funnels through here — the broker
    encodes once at publish time and the resulting bytes are cached on
    the :class:`Message` and shared by its channel fan-out copies, so
    size checks and stats never re-serialise.  (Tests monkeypatch this
    to count encodes.)
    """
    return json.dumps(body).encode("utf-8")


class Message:
    """A broker message.

    ``body`` must be JSON-serialisable — the broker enforces this at publish
    time so that the simulated system cannot accidentally depend on sharing
    live Python objects between "machines", which a real deployment could
    never do.
    """

    __slots__ = ("id", "topic", "body", "timestamp", "attempts",
                 "delivered_at", "headers", "_channel", "_payload")

    def __init__(self, topic: str, body: Any, timestamp: float,
                 message_id: Optional[str] = None,
                 payload: Optional[bytes] = None,
                 headers: Optional[dict] = None):
        self.id = message_id or new_message_id()
        self.topic = topic
        self.body = body
        self.timestamp = float(timestamp)
        self.attempts = 0
        #: Simulated time of the most recent delivery (None before first).
        self.delivered_at: Optional[float] = None
        #: Out-of-band metadata (trace context).  Never part of the wire
        #: payload or the size limit, and invisible to body signatures —
        #: the kiwiPy-style propagation channel for ``repro.obs``.
        self.headers = headers
        self._channel = None  # set on delivery; used by ack/requeue
        #: Cached wire encoding — set once by the broker at publish time
        #: (or lazily on first use) and shared by fan-out copies.
        self._payload = payload

    @classmethod
    def from_pool(cls, topic: str, body: Any, timestamp: float,
                  message_id: Optional[str] = None,
                  payload: Optional[bytes] = None,
                  headers: Optional[dict] = None) -> "Message":
        """Construct a message, reusing a recycled carcass when possible.

        Behaviourally identical to ``Message(...)``; the only difference
        is where the memory comes from.
        """
        msg = message_pool.acquire()
        if msg is None:
            return cls(topic, body, timestamp, message_id,
                       payload=payload, headers=headers)
        msg.id = message_id or new_message_id()
        msg.topic = topic
        msg.body = body
        msg.timestamp = float(timestamp)
        msg.attempts = 0
        msg.delivered_at = None
        msg.headers = headers
        msg._channel = None
        msg._payload = payload
        return msg

    def release(self) -> None:
        """Recycle this message into the pool.

        Only call when no live reference remains (the broker's per-channel
        delivery copies, after an explicit ``ack_release``).  The body and
        payload are dropped immediately so a pooled carcass never pins a
        large encoded blob.
        """
        self.body = None
        self.headers = None
        self._payload = None
        self._channel = None
        message_pool.release(self)

    @property
    def payload(self) -> bytes:
        """The body's wire bytes, encoded at most once per publish."""
        if self._payload is None:
            self._payload = encode_body(self.body)
        return self._payload

    def encoded_size(self) -> int:
        """Size of the JSON encoding in bytes (for size limits and stats)."""
        return len(self.payload)

    def copy_for_channel(self) -> "Message":
        """Per-channel copy (topics fan out; channels own delivery state).

        Copies share the publisher's encoded payload bytes — fan-out to N
        channels costs zero additional serialisations.  Copies come from
        the freelist: they are the highest-churn objects in the broker
        (one per channel per publish, dead one delivery later).
        """
        return Message.from_pool(self.topic, self.body, self.timestamp,
                                 self.id, payload=self._payload,
                                 headers=self.headers)

    def __repr__(self):
        return f"<Message {self.id} topic={self.topic!r} attempts={self.attempts}>"
