"""Unit tests for presigned URLs."""

import pytest

from repro.errors import ExpiredToken, NoSuchKey, SignatureMismatch
from repro.storage import ObjectStore


@pytest.fixture
def store(sim):
    s = ObjectStore(sim)
    s.create_bucket("builds")
    s.put_object("builds", "job-1/build.tar.bz2", b"archive")
    return s


class TestPresign:
    def test_get_roundtrip(self, store):
        token = store.presign_get("builds", "job-1/build.tar.bz2")
        assert store.redeem_get(token).data == b"archive"

    def test_expired_token_rejected(self, sim, store):
        token = store.presign_get("builds", "job-1/build.tar.bz2",
                                  expires_in=100.0)
        sim._now = 101.0
        with pytest.raises(ExpiredToken):
            store.redeem_get(token)

    def test_tampered_token_rejected(self, store):
        token = store.presign_get("builds", "job-1/build.tar.bz2")
        with pytest.raises(SignatureMismatch):
            store.redeem_get(token[:-4] + "AAAA")
        with pytest.raises(SignatureMismatch):
            store.redeem_get("garbage")

    def test_put_token_allows_upload(self, store):
        token = store.presign_put("builds", "incoming/new")
        obj = store.redeem_put(token, b"uploaded")
        assert obj.data == b"uploaded"
        assert store.object_exists("builds", "incoming/new")

    def test_method_confusion_rejected(self, store):
        get_token = store.presign_get("builds", "job-1/build.tar.bz2")
        with pytest.raises(SignatureMismatch):
            store.redeem_put(get_token, b"sneaky")

    def test_presign_get_requires_existing_object(self, store):
        with pytest.raises(NoSuchKey):
            store.presign_get("builds", "ghost")

    def test_different_stores_tokens_dont_cross(self, sim, store):
        other = ObjectStore(sim, secret=b"other-secret")
        other.create_bucket("builds")
        other.put_object("builds", "job-1/build.tar.bz2", b"x")
        token = other.presign_get("builds", "job-1/build.tar.bz2")
        with pytest.raises(SignatureMismatch):
            store.redeem_get(token)
