"""Shared fixtures."""

import pytest

from repro.broker.message import message_pool, reset_message_ids
from repro.core.job import reset_job_ids
from repro.obs.context import reset_obs_ids
from repro.sim import Simulator


@pytest.fixture(autouse=True)
def _reset_global_counters():
    """Keep generated ids deterministic per-test."""
    reset_message_ids()
    reset_job_ids()
    reset_obs_ids()
    message_pool.clear()
    yield


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def system():
    """A small ready-to-use RAI deployment."""
    from repro.core.system import RaiSystem

    return RaiSystem.standard(num_workers=2, seed=7)


@pytest.fixture
def client(system):
    c = system.new_client(team="test-team")
    c.stage_project({
        "main.cu": "// @rai-sim quality=0.8 impl=analytic\nint main(){}\n",
        "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
    })
    return c
