"""Update application: the MongoDB update-operator language."""

from __future__ import annotations

import copy
from typing import Any

from repro.errors import InvalidUpdate


def _set_path(doc: dict, path: str, value: Any) -> None:
    parts = path.split(".")
    current = doc
    for part in parts[:-1]:
        nxt = current.get(part) if isinstance(current, dict) else None
        if not isinstance(nxt, (dict, list)):
            nxt = {}
            current[part] = nxt
        current = nxt
    if isinstance(current, list):
        current[int(parts[-1])] = value
    else:
        current[parts[-1]] = value


def _get_path(doc: dict, path: str, default=None) -> Any:
    current = doc
    for part in path.split("."):
        if isinstance(current, dict) and part in current:
            current = current[part]
        elif isinstance(current, list):
            try:
                current = current[int(part)]
            except (ValueError, IndexError):
                return default
        else:
            return default
    return current


def _unset_path(doc: dict, path: str) -> None:
    parts = path.split(".")
    current = doc
    for part in parts[:-1]:
        if isinstance(current, dict) and part in current:
            current = current[part]
        else:
            return
    if isinstance(current, dict):
        current.pop(parts[-1], None)


def apply_update(doc: dict, update: dict) -> dict:
    """Return a new document with ``update`` applied.

    ``update`` either uses operators (``{"$set": {...}, "$inc": {...}}``)
    or is a full replacement document (no ``$`` keys); mixing the two is an
    error, matching MongoDB.
    """
    if not isinstance(update, dict):
        raise InvalidUpdate("update must be a dict")
    has_ops = any(k.startswith("$") for k in update)
    has_plain = any(not k.startswith("$") for k in update)
    if has_ops and has_plain:
        raise InvalidUpdate("cannot mix update operators and literal fields")

    if not has_ops:
        replacement = copy.deepcopy(update)
        if "_id" in doc:
            replacement.setdefault("_id", doc["_id"])
        return replacement

    result = copy.deepcopy(doc)
    for op, spec in update.items():
        if not isinstance(spec, dict):
            raise InvalidUpdate(f"{op} requires a dict of field specs")
        for path, value in spec.items():
            if path == "_id" and op != "$setOnInsert":
                raise InvalidUpdate("_id is immutable")
            if op == "$set":
                _set_path(result, path, copy.deepcopy(value))
            elif op == "$unset":
                _unset_path(result, path)
            elif op == "$inc":
                current = _get_path(result, path, 0)
                _require_number(op, current)
                _set_path(result, path, current + value)
            elif op == "$mul":
                current = _get_path(result, path, 0)
                _require_number(op, current)
                _set_path(result, path, current * value)
            elif op == "$min":
                current = _get_path(result, path)
                if current is None or value < current:
                    _set_path(result, path, value)
            elif op == "$max":
                current = _get_path(result, path)
                if current is None or value > current:
                    _set_path(result, path, value)
            elif op == "$push":
                current = _get_path(result, path)
                if current is None:
                    current = []
                if not isinstance(current, list):
                    raise InvalidUpdate(f"$push target {path!r} is not a list")
                current = list(current)
                if isinstance(value, dict) and "$each" in value:
                    current.extend(copy.deepcopy(value["$each"]))
                else:
                    current.append(copy.deepcopy(value))
                _set_path(result, path, current)
            elif op == "$addToSet":
                current = _get_path(result, path)
                if current is None:
                    current = []
                if not isinstance(current, list):
                    raise InvalidUpdate(f"$addToSet target {path!r} is not a list")
                current = list(current)
                items = value["$each"] if isinstance(value, dict) and \
                    "$each" in value else [value]
                for item in items:
                    if item not in current:
                        current.append(copy.deepcopy(item))
                _set_path(result, path, current)
            elif op == "$pull":
                current = _get_path(result, path)
                if isinstance(current, list):
                    from repro.docdb.query import _match_condition
                    _set_path(result, path,
                              [x for x in current
                               if not _match_condition(x, value)])
            elif op == "$pop":
                current = _get_path(result, path)
                if isinstance(current, list) and current:
                    current = list(current)
                    if value == -1:
                        current.pop(0)
                    else:
                        current.pop()
                    _set_path(result, path, current)
            elif op == "$rename":
                current = _get_path(result, path, _SENTINEL)
                if current is not _SENTINEL:
                    _unset_path(result, path)
                    _set_path(result, path if not isinstance(value, str)
                              else value, current)
            elif op == "$setOnInsert":
                # handled by the collection at upsert time; no-op here
                pass
            else:
                raise InvalidUpdate(f"unsupported update operator {op!r}")
    return result


_SENTINEL = object()


def _require_number(op: str, value: Any) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise InvalidUpdate(f"{op} target is not numeric: {value!r}")
