"""Buckets and the object store service."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import (
    BucketAlreadyExists,
    NoSuchBucket,
    NoSuchKey,
    PreconditionFailed,
)
from repro.sim.monitor import Counter
from repro.storage.chunkstore import (
    DEFAULT_CHUNK_BYTES,
    ChunkedObject,
    ChunkStore,
)
from repro.storage.lifecycle import LifecycleRule
from repro.storage.multipart import MultipartUpload
from repro.storage.objects import StoredObject, compute_etag
from repro.storage.presign import PresignSigner


class Bucket:
    """A flat namespace of keyed objects with lifecycle rules."""

    def __init__(self, store: "ObjectStore", name: str):
        self.store = store
        self.name = name
        self.objects: Dict[str, StoredObject] = {}
        self.lifecycle_rules: List[LifecycleRule] = []

    def add_lifecycle_rule(self, rule: LifecycleRule) -> None:
        self.lifecycle_rules.append(rule)
        if self.store.journal is not None:
            self.store.journal.storage_rule(self.name, rule.prefix,
                                            rule.expire_after, rule.since)

    @property
    def total_bytes(self) -> int:
        return sum(o.size for o in self.objects.values())

    def __len__(self) -> int:
        return len(self.objects)


class ObjectStore:
    """The file-server service (paper's Amazon S3 role).

    All operations are instantaneous in simulated time; transfer *delays*
    are modelled by the callers (client/worker) from byte counts and link
    bandwidth, which keeps the store usable both inside simulations and in
    plain unit tests.
    """

    def __init__(self, sim, secret: bytes = b"repro-object-store",
                 chunk_size: int = DEFAULT_CHUNK_BYTES):
        self.sim = sim
        self.buckets: Dict[str, Bucket] = {}
        self.counters = Counter()
        #: Content-addressed dedup backing for ``put_object(dedup=True)``.
        #: Shared across all buckets: identical chunks are held once.
        self.chunk_store = ChunkStore(chunk_size=chunk_size)
        self._signer = PresignSigner(secret, clock=lambda: self.sim.now)
        self._uploads: Dict[str, MultipartUpload] = {}
        #: Optional :class:`~repro.obs.usage.UsageMeter`; wired by
        #: RaiSystem so stored bytes bill the owning tenant (attribution
        #: from the object metadata's team/username).
        self.usage = None
        #: Chaos hook: ``fault_hook(op, bucket, key)`` runs before every
        #: get/put and may raise (e.g. TransientStorageError).  Installed
        #: by :class:`repro.faults.FaultInjector`; None in normal runs.
        self.fault_hook = None
        #: Optional :class:`~repro.durability.DurabilityManager` journal.
        #: When set, bucket creation, puts, deletes (any path), and
        #: lifecycle-rule additions append to the write-ahead log.
        self.journal = None
        #: ``(bucket, owner) -> key`` of the owner's latest chunked
        #: upload — the server side of git-style base negotiation: a
        #: fresh client (or one that lost state to a restore) asks what
        #: base the server holds and deltas against it.
        self._upload_bases: Dict[tuple, str] = {}

    # -- buckets ------------------------------------------------------------

    def create_bucket(self, name: str, exist_ok: bool = False) -> Bucket:
        if name in self.buckets:
            if exist_ok:
                return self.buckets[name]
            raise BucketAlreadyExists(name)
        bucket = Bucket(self, name)
        self.buckets[name] = bucket
        if self.journal is not None:
            self.journal.storage_bucket(name)
        return bucket

    def bucket(self, name: str) -> Bucket:
        try:
            return self.buckets[name]
        except KeyError:
            raise NoSuchBucket(name) from None

    # -- object operations ------------------------------------------------------------

    def put_object(self, bucket_name: str, key: str, data: bytes,
                   metadata: Optional[dict] = None,
                   if_none_match: bool = False,
                   padding_bytes: int = 0,
                   dedup: bool = False,
                   file_digests: Optional[Dict[str, str]] = None) -> StoredObject:
        """Store an object; ``if_none_match`` makes the put create-only.

        With ``dedup=True`` the payload is content-addressed through the
        chunk store: only chunks never seen before cost memory, and the
        stored object assembles its bytes from shared chunks on demand.
        Sizes, etags, and bucket accounting are identical either way.
        ``file_digests`` (path → sha256 of the archived tree) rides on
        the dedup manifest so downstream readers can address the
        *content* without unpacking the archive.
        """
        if self.fault_hook is not None:
            self.fault_hook("put", bucket_name, key)
        bucket = self.bucket(bucket_name)
        if if_none_match and key in bucket.objects:
            raise PreconditionFailed(f"{bucket_name}/{key} already exists")
        if dedup:
            manifest, new_bytes = self.chunk_store.store(data)
            if file_digests:
                manifest.files = dict(file_digests)
            obj = ChunkedObject(key, manifest, self.chunk_store,
                                created_at=self.sim.now, metadata=metadata,
                                etag=compute_etag(data),
                                padding_bytes=padding_bytes)
            owner = (metadata or {}).get("username")
            if owner:
                self._upload_bases[(bucket_name, owner)] = key
            self.counters.incr("dedup_puts")
            self.counters.incr("bytes_in_unique", new_bytes)
            self.counters.incr("bytes_deduped", len(data) - new_bytes)
        else:
            obj = StoredObject(key, data, created_at=self.sim.now,
                               metadata=metadata, padding_bytes=padding_bytes)
        self._drop_object(bucket, key)  # release chunks of any overwrite
        bucket.objects[key] = obj
        self.counters.incr("puts")
        self.counters.incr("bytes_in", obj.size)
        if self.usage is not None:
            meta = metadata or {}
            tenant = meta.get("team") or meta.get("username")
            self.usage.record("storage_bytes_stored", float(len(data)),
                              tenant=tenant)
            if dedup and len(data) > new_bytes:
                # Chunks already resident cost no new storage: credit
                # the dedup win separately instead of hiding it.
                self.usage.record("storage_bytes_saved_dedup",
                                  float(len(data) - new_bytes),
                                  tenant=tenant)
        if self.journal is not None:
            self.journal.storage_put(bucket_name, key, data, metadata,
                                     padding_bytes, dedup)
        return obj

    def _drop_object(self, bucket: Bucket, key: str) -> bool:
        """Remove ``key`` from ``bucket``, releasing chunk references.

        Every deletion path (DELETE, lifecycle expiry, overwrite) funnels
        through here so a manifest's chunks are refcounted down exactly
        once — chunks shared with a live manifest survive.
        """
        obj = bucket.objects.pop(key, None)
        if obj is None:
            return False
        if isinstance(obj, ChunkedObject):
            self.counters.incr("chunk_bytes_freed",
                               self.chunk_store.release(obj.manifest))
            owner = obj.metadata.get("username")
            if owner and self._upload_bases.get((bucket.name, owner)) == key:
                del self._upload_bases[(bucket.name, owner)]
        if self.journal is not None:
            self.journal.storage_delete(bucket.name, key)
        return True

    def get_object(self, bucket_name: str, key: str) -> StoredObject:
        if self.fault_hook is not None:
            self.fault_hook("get", bucket_name, key)
        bucket = self.bucket(bucket_name)
        try:
            obj = bucket.objects[key]
        except KeyError:
            raise NoSuchKey(f"{bucket_name}/{key}") from None
        obj.last_used_at = self.sim.now
        self.counters.incr("gets")
        self.counters.incr("bytes_out", obj.size)
        return obj

    def head_object(self, bucket_name: str, key: str) -> dict:
        bucket = self.bucket(bucket_name)
        try:
            return bucket.objects[key].head()
        except KeyError:
            raise NoSuchKey(f"{bucket_name}/{key}") from None

    def object_exists(self, bucket_name: str, key: str) -> bool:
        return key in self.bucket(bucket_name).objects

    def delete_object(self, bucket_name: str, key: str,
                      missing_ok: bool = True) -> bool:
        bucket = self.bucket(bucket_name)
        if not self._drop_object(bucket, key):
            if missing_ok:
                return False
            raise NoSuchKey(f"{bucket_name}/{key}")
        self.counters.incr("deletes")
        return True

    def copy_object(self, src_bucket: str, src_key: str,
                    dst_bucket: str, dst_key: str) -> StoredObject:
        src = self.get_object(src_bucket, src_key)
        return self.put_object(dst_bucket, dst_key, src.data,
                               metadata=src.metadata,
                               dedup=isinstance(src, ChunkedObject))

    def list_objects(self, bucket_name: str, prefix: str = "") -> List[dict]:
        """Sorted HEAD views of all keys starting with ``prefix``."""
        bucket = self.bucket(bucket_name)
        return [bucket.objects[k].head()
                for k in sorted(bucket.objects) if k.startswith(prefix)]

    def iter_keys(self, bucket_name: str, prefix: str = "") -> Iterator[str]:
        for key in sorted(self.bucket(bucket_name).objects):
            if key.startswith(prefix):
                yield key

    # -- base negotiation ----------------------------------------------------

    def negotiate_base(self, bucket_name: str, owner: str):
        """The manifest of ``owner``'s latest chunked upload, or ``None``.

        This is the server half of git-delta ingest: a client with no
        local ``_last_manifest`` (fresh instance, post-restore session)
        asks the store for a base and deltas its upload against it.
        """
        key = self._upload_bases.get((bucket_name, owner))
        if key is None:
            return None
        bucket = self.buckets.get(bucket_name)
        obj = bucket.objects.get(key) if bucket is not None else None
        if isinstance(obj, ChunkedObject):
            return obj.manifest
        return None

    def rebuild_upload_bases(self) -> int:
        """Recompute the per-owner base registry from live objects (it is
        soft state, derived like chunk refcounts); returns entry count."""
        latest: Dict[tuple, tuple] = {}
        for bucket in self.buckets.values():
            for key, obj in bucket.objects.items():
                if not isinstance(obj, ChunkedObject):
                    continue
                owner = obj.metadata.get("username")
                if not owner:
                    continue
                slot = (bucket.name, owner)
                stamp = (obj.created_at, key)
                if slot not in latest or stamp > latest[slot]:
                    latest[slot] = stamp
        self._upload_bases = {slot: stamp[1]
                              for slot, stamp in latest.items()}
        return len(self._upload_bases)

    # -- multipart ------------------------------------------------------------

    def initiate_multipart(self, bucket_name: str, key: str,
                           metadata: Optional[dict] = None) -> MultipartUpload:
        self.bucket(bucket_name)  # existence check
        upload = MultipartUpload(self, bucket_name, key, metadata)
        self._uploads[upload.upload_id] = upload
        return upload

    def _finish_multipart(self, upload: MultipartUpload) -> None:
        self._uploads.pop(upload.upload_id, None)

    # -- presigned URLs ------------------------------------------------------------

    def presign_get(self, bucket_name: str, key: str,
                    expires_in: float = 3600.0) -> str:
        self.head_object(bucket_name, key)  # must exist now
        return self._signer.sign("GET", bucket_name, key,
                                 self.sim.now + expires_in)

    def presign_put(self, bucket_name: str, key: str,
                    expires_in: float = 3600.0) -> str:
        self.bucket(bucket_name)
        return self._signer.sign("PUT", bucket_name, key,
                                 self.sim.now + expires_in)

    def redeem_get(self, token: str) -> StoredObject:
        claim = self._signer.verify(token, expected_method="GET")
        return self.get_object(claim.bucket, claim.key)

    def redeem_put(self, token: str, data: bytes,
                   metadata: Optional[dict] = None) -> StoredObject:
        claim = self._signer.verify(token, expected_method="PUT")
        return self.put_object(claim.bucket, claim.key, data, metadata)

    # -- lifecycle ------------------------------------------------------------

    def run_lifecycle_sweep(self) -> List[str]:
        """Delete every expired object; returns ``bucket/key`` names."""
        now = self.sim.now
        removed: List[str] = []
        for bucket in self.buckets.values():
            doomed = [key for key, obj in bucket.objects.items()
                      if any(rule.matches(key) and rule.is_expired(obj, now)
                             for rule in bucket.lifecycle_rules)]
            for key in doomed:
                self._drop_object(bucket, key)
                removed.append(f"{bucket.name}/{key}")
        self.counters.incr("lifecycle_expired", len(removed))
        return removed

    def lifecycle_sweeper(self, interval: float = 24 * 3600.0):
        """A kernel process running sweeps every ``interval`` seconds."""
        while True:
            yield self.sim.timeout(interval)
            self.run_lifecycle_sweep()

    # -- recovery ------------------------------------------------------------

    def rebuild_chunk_refcounts(self) -> dict:
        """Recompute chunk refcounts from the manifests still live in
        buckets (refcounts are soft state and are not snapshotted)."""
        manifests = [obj.manifest
                     for bucket in self.buckets.values()
                     for obj in bucket.objects.values()
                     if isinstance(obj, ChunkedObject)]
        return self.chunk_store.rebuild_refcounts(manifests)

    # -- observability ------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return sum(b.total_bytes for b in self.buckets.values())

    @property
    def total_objects(self) -> int:
        return sum(len(b) for b in self.buckets.values())

    def stats(self) -> dict:
        return {
            "buckets": {name: {"objects": len(b), "bytes": b.total_bytes}
                        for name, b in self.buckets.items()},
            "total_bytes": self.total_bytes,
            "total_objects": self.total_objects,
            "chunk_store": self.chunk_store.stats(),
            "counters": self.counters.as_dict(),
        }
