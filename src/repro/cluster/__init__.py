"""Elastic worker provisioning and cost accounting.

§VII ("Resource Usage") describes the course's provisioning story: cheap
AWS G2 instances (K40-class GPUs, multiple jobs in flight) while students
worked with the CPU baseline, a transition to P2 instances (K80) as GPU
implementations matured, 10 instances with multiple pending submissions
mid-project, and 20–30 single-job P2 instances during the benchmark-heavy
final week.  "Students worked in bursts, which required RAI to be elastic
to remain reliable and cost-efficient."

This subpackage provides instance types with hourly prices, a provisioner
that turns instances into RAI workers (with boot delay), the course's
manual schedule, a reactive queue-depth autoscaler, and cost/utilisation
accounting.
"""

from repro.cluster.instance import InstanceType, INSTANCE_CATALOG, get_instance_type
from repro.cluster.provisioner import Provisioner, ProvisionedInstance
from repro.cluster.elasticity import Autoscaler, AutoscalerPolicy, ManualSchedule, SchedulePhase
from repro.cluster.metrics import CostReport

__all__ = [
    "InstanceType",
    "INSTANCE_CATALOG",
    "get_instance_type",
    "Provisioner",
    "ProvisionedInstance",
    "Autoscaler",
    "AutoscalerPolicy",
    "ManualSchedule",
    "SchedulePhase",
    "CostReport",
]
