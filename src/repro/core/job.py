"""Job model and lifecycle."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

_next_job_id = 1


def new_job_id() -> str:
    global _next_job_id
    job_id = f"job-{_next_job_id:06d}"
    _next_job_id += 1
    return job_id


def reset_job_ids() -> None:
    global _next_job_id
    _next_job_id = 1


def advance_job_ids(next_id: int) -> None:
    """Ensure the next minted id is at least ``next_id`` (monotonic).

    A restored deployment must never reuse a pre-crash job id: the
    worker's duplicate-record fence keys on job id, so a collision would
    silently swallow a brand-new submission.
    """
    global _next_job_id
    _next_job_id = max(_next_job_id, int(next_id))


def job_id_watermark() -> int:
    """The next id this process would mint (snapshotted on checkpoint)."""
    return _next_job_id


class JobKind(enum.Enum):
    """Development run vs graded final submission (§V)."""

    RUN = "run"
    SUBMIT = "submit"


class JobStatus(enum.Enum):
    CREATED = "created"
    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    REJECTED = "rejected"     # bad credentials / spec / rate limit
    TIMEOUT = "timeout"       # client gave up waiting for End
    DEAD_LETTERED = "dead_lettered"  # task message exhausted redelivery

    @property
    def is_terminal(self) -> bool:
        return self in (JobStatus.SUCCEEDED, JobStatus.FAILED,
                        JobStatus.REJECTED, JobStatus.TIMEOUT,
                        JobStatus.DEAD_LETTERED)


@dataclass
class Job:
    """One submission travelling through the system."""

    id: str
    kind: JobKind
    username: str
    team: Optional[str]
    upload_bucket: str
    upload_key: str
    spec_yaml: str
    access_key: str
    signature: str
    submitted_at: float
    status: JobStatus = JobStatus.CREATED
    #: Content digest of the uploaded source tree (manifest file map).
    #: Optional: pre-delta clients and dedup-off uploads omit it; when
    #: absent the wire body omits the key entirely so signatures over
    #: older messages (WAL replays) still verify.
    source_digest: Optional[str] = None

    def to_message(self) -> dict:
        """The broker message body (JSON-safe)."""
        body = {
            "job_id": self.id,
            "kind": self.kind.value,
            "username": self.username,
            "team": self.team,
            "upload_bucket": self.upload_bucket,
            "upload_key": self.upload_key,
            "spec_yaml": self.spec_yaml,
            "access_key": self.access_key,
            "signature": self.signature,
            "submitted_at": self.submitted_at,
        }
        if self.source_digest is not None:
            body["source_digest"] = self.source_digest
        return body

    @staticmethod
    def from_message(body: dict) -> "Job":
        return Job(
            id=body["job_id"],
            kind=JobKind(body["kind"]),
            username=body["username"],
            team=body.get("team"),
            upload_bucket=body["upload_bucket"],
            upload_key=body["upload_key"],
            spec_yaml=body["spec_yaml"],
            access_key=body["access_key"],
            signature=body["signature"],
            submitted_at=body["submitted_at"],
            status=JobStatus.QUEUED,
            source_digest=body.get("source_digest"),
        )


_ELAPSED_RE = re.compile(r"Elapsed time:\s*([0-9.eE+-]+)\s*s")
_CORRECTNESS_RE = re.compile(r"Correctness:\s*([0-9.eE+-]+)")
_TIME_RE = re.compile(r"([0-9.]+)real\s+([0-9.]+)user\s+([0-9.]+)sys")


@dataclass
class JobResult:
    """What the client assembles from the ``log_${job_id}`` stream."""

    job_id: str
    status: JobStatus = JobStatus.QUEUED
    exit_code: Optional[int] = None
    #: (simulated time, stream, text) tuples, in arrival order.
    log: List[Tuple[float, str, str]] = field(default_factory=list)
    build_url: Optional[str] = None
    error: Optional[str] = None
    queued_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    worker_id: Optional[str] = None
    #: Team's leaderboard rank after a successful final submission.
    rank: Optional[int] = None
    #: Bytes this submission actually put on the wire (chunk delta +
    #: manifest under dedup; the full archive otherwise).
    upload_bytes: Optional[int] = None
    #: Bytes a full re-upload would have cost (archive + padding).
    upload_bytes_full: Optional[int] = None

    @property
    def succeeded(self) -> bool:
        return self.status is JobStatus.SUCCEEDED

    @property
    def queue_wait(self) -> Optional[float]:
        if self.queued_at is None or self.started_at is None:
            return None
        return self.started_at - self.queued_at

    @property
    def turnaround(self) -> Optional[float]:
        if self.queued_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.queued_at

    def stdout_text(self) -> str:
        return "".join(text for _, stream, text in self.log
                       if stream == "stdout")

    def stderr_text(self) -> str:
        return "".join(text for _, stream, text in self.log
                       if stream == "stderr")

    @property
    def internal_time(self) -> Optional[float]:
        """The student-visible internal timer (``Elapsed time: ... s``)."""
        matches = _ELAPSED_RE.findall(self.stdout_text())
        return float(matches[-1]) if matches else None

    @property
    def correctness(self) -> Optional[float]:
        matches = _CORRECTNESS_RE.findall(self.stdout_text())
        return float(matches[-1]) if matches else None

    @property
    def time_command_output(self) -> Optional[dict]:
        """Instructor-only ``/usr/bin/time`` figures from stderr."""
        match = _TIME_RE.search(self.stderr_text())
        if match is None:
            return None
        return {"real": float(match.group(1)), "user": float(match.group(2)),
                "sys": float(match.group(3))}
