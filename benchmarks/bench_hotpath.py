"""Hot-path performance — dedup uploads, indexed probes, encode-once.

Not a paper figure: this bench records the *reproduction's own* perf
trajectory so later PRs have a baseline to regress against.  It drives
an N-students × M-resubmissions course (the paper's dominant load shape,
§V/Figure 4) at several scales, prints the headline numbers, asserts the
hot-path acceptance floors, and writes ``BENCH_hotpath.json`` at the
repository root.

Run: ``pytest benchmarks/bench_hotpath.py -s``
"""

import json
import os

from benchmarks.conftest import print_banner
from repro.workload.hotpath import DEFAULT_SCALES, run_hotpath

_OUT_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                         "BENCH_hotpath.json")


def test_hotpath_trajectory(benchmark):
    def run_all_scales():
        return [run_hotpath(scale) for scale in DEFAULT_SCALES]

    results = benchmark.pedantic(run_all_scales, rounds=1, iterations=1)

    print_banner("Submission hot path — dedup / planner / encode-once")
    print(f"{'scale':<10}{'subs':>6}{'p50 s':>9}{'p95 s':>9}"
          f"{'resub reduction':>17}{'dedup ratio':>13}{'wall s':>8}")
    for m in results:
        up = m["upload"]
        print(f"{m['scale']['name']:<10}"
              f"{m['submissions_completed']:>6}"
              f"{m['latency_s']['p50']:>9.2f}"
              f"{m['latency_s']['p95']:>9.2f}"
              f"{up['resubmissions']['reduction']:>16.1f}x"
              f"{up['dedup_ratio']:>12.1f}x"
              f"{m['wall_clock_s']:>8.2f}")

    largest = results[-1]
    print(f"\nlargest scale docdb probe: "
          f"{largest['docdb']['job_id_probe']}")
    print(f"planner totals: {largest['docdb']['planner']}")
    print(f"worker fetch bytes saved: "
          f"{largest['worker_fetch']['bytes_saved']}")

    # --- acceptance floors (ISSUE 2) -------------------------------------
    # Resubmission wire bytes at the largest scale: >= 5x cheaper than a
    # full re-upload.
    assert largest["upload"]["resubmissions"]["reduction"] >= 5.0
    # The per-job dedup probe is O(1): served by the submissions.job_id
    # index and examining exactly the matching document, not the
    # collection.
    probe = largest["docdb"]["job_id_probe"]
    assert probe["path"] == "index" and probe["index"] == "job_id"
    assert probe["docs_examined"] == 1
    assert probe["docs_total"] > probe["docs_examined"]
    # The submission pipeline itself never falls back to a collection
    # scan.
    assert largest["docdb"]["planner"]["scans"] == 0

    payload = {
        "bench": "hotpath",
        "source": "benchmarks/bench_hotpath.py",
        "scales": results,
    }
    with open(_OUT_PATH, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"\nwrote {_OUT_PATH}")
