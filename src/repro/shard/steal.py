"""Occupancy-driven work-stealing between partitions.

Each partition's executors consume from their home channel only — that is
what keeps routing, fair-share accounting, and warm-pool locality
per-partition.  The failure mode is a skewed deadline storm: one course's
partition backs up for an hour while the others sit idle.  Stealing fixes
the skew without giving up locality:

- **pull steal** (:class:`StealingConsumer`): when an executor's home
  queue is dry at claim time, it claims one message from the deepest
  sibling queue at or above the occupancy threshold.  The *victim's own
  scheduler* picks which message leaves (its fair-share/deadline policy
  still governs its queue), and the delivery is journaled against the
  victim's route, so crash recovery re-queues a stolen in-flight message
  on the partition that owns it.
- **rebalance** (:meth:`~repro.shard.plane.ShardedControlPlane.rebalance`,
  driven by the opt-in balancer loop): executors parked on a blocking
  ``get`` never cycle through ``try_get``, so a cold partition whose
  queue was empty *before* the storm began would otherwise sleep through
  it.  The balancer migrates queued messages from over-threshold queues
  to starving partitions (empty queue, parked or subscribed consumers),
  waking the sleepers.

Ack correctness: :class:`~repro.broker.topic.Channel` stamps each
delivered message with its source channel, and a stolen message must be
acked/re-queued *there* — acking the thief's home channel would leak the
victim's in-flight entry until the caretaker's stale sweep re-delivered
it, turning every steal into a duplicate execution.  The consumer below
routes all post-claim verbs through the message's delivering channel.
"""

from __future__ import annotations

from typing import Optional

from repro.broker.client import Consumer
from repro.broker.message import Message


class StealingConsumer(Consumer):
    """A partition-pinned consumer whose ``try_get`` can steal.

    Drop-in for :class:`~repro.broker.client.Consumer` in the worker's
    executor loop: ``get``/``cancel`` park on the home channel unchanged
    (blocking steals are the balancer's job), while ``try_get`` falls back
    to the control plane's steal policy and ``ack``/``ack_release``/
    ``requeue`` follow the message back to whichever channel delivered it.
    """

    def __init__(self, plane, partition: int):
        super().__init__(plane.broker, plane.shard_map.route(partition))
        self.plane = plane
        self.partition = partition

    def try_get(self) -> Optional[Message]:
        message = super().try_get()
        if message is not None:
            return message
        return self.plane.try_steal(self.partition)

    # -- post-claim verbs route via the delivering channel ------------------

    def _source_channel(self, message: Message):
        return getattr(message, "_channel", None) or self._channel

    def ack(self, message: Message) -> None:
        self._source_channel(message).ack(message)

    def ack_release(self, message: Message) -> None:
        self._source_channel(message).ack_release(message)

    def requeue(self, message: Message) -> bool:
        return self._source_channel(message).requeue(message)
