"""A unified metrics registry: counters, gauges, histograms, labels.

Before this module the repro's operational counters were islands —
``Collection.planner_stats`` dicts, broker ``Counter`` objects, monitor
counters — with no shared namespace, no labels, and no export path.  The
registry is the single home: every series is ``(name, labels)``-keyed,
snapshotable as JSON, and readable through thin legacy views
(:class:`CounterGroup`, the planner-stats mapping) so existing accessors
keep working unchanged.

Three instrument kinds, Prometheus-shaped:

- :class:`Counter` — monotonically increasing (``inc`` only);
- :class:`Gauge` — settable up/down, optionally *callback-backed* so the
  telemetry sampler and the operator report read live system state
  (queue depth, in-flight messages) from one definition;
- :class:`Histogram` — bucketed observations with count/sum/min/max and
  an interpolated percentile estimate (latency distributions).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: Default latency buckets (simulated seconds): sub-second client work up
#: to the 1-hour job deadline.
DEFAULT_BUCKETS = (0.1, 0.5, 1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0,
                   600.0, 1800.0, 3600.0)

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: dict) -> LabelsKey:
    # The overwhelmingly common case — unlabelled counters incremented on
    # the broker/worker hot paths — must not pay for a genexpr + sort.
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Common identity for all instrument kinds."""

    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = dict(labels)

    def __repr__(self):
        label_text = ",".join(f"{k}={v}" for k, v in self.labels.items())
        return (f"<{type(self).__name__} {self.name}"
                f"{{{label_text}}} {self.describe()}>")

    def describe(self) -> str:  # pragma: no cover - repr helper
        return ""


class Counter(Metric):
    """Monotonically increasing value."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: dict):
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def describe(self) -> str:
        return f"{self._value:g}"


class Gauge(Metric):
    """Settable value, optionally computed by a callback."""

    __slots__ = ("_value", "fn")

    def __init__(self, name: str, labels: dict,
                 fn: Optional[Callable[[], float]] = None):
        super().__init__(name, labels)
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        if self.fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self.fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return float(self.fn()) if self.fn is not None else self._value

    def describe(self) -> str:
        return f"{self.value:g}"


class Exemplar:
    """One concrete observation pinned to a histogram bucket.

    The metric→trace link: a latency histogram can say "p95 blew the
    objective", and the exemplar names an actual ``trace_id`` that
    landed in the offending bucket — ``rai trace`` then shows *why*
    that job was slow.  Each bucket keeps only its latest exemplar, so
    the memory cost is one small record per bucket.
    """

    __slots__ = ("trace_id", "value", "time")

    def __init__(self, trace_id: str, value: float, time: float):
        self.trace_id = trace_id
        self.value = value
        self.time = time

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "value": self.value,
                "t": self.time}

    def __repr__(self):
        return (f"<Exemplar {self.trace_id} value={self.value:g} "
                f"t={self.time:g}>")


class Histogram(Metric):
    """Bucketed observations (cumulative counts, Prometheus-style)."""

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "min", "max",
                 "exemplars")

    def __init__(self, name: str, labels: dict,
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        super().__init__(name, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds + (math.inf,)
        self.bucket_counts = [0] * len(self.buckets)
        #: Latest :class:`Exemplar` per bucket (None until a traced
        #: observation lands there).
        self.exemplars: List[Optional[Exemplar]] = [None] * len(self.buckets)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float, trace_id: Optional[str] = None,
                at: float = 0.0) -> None:
        if type(value) is not float:  # normalize ints / numpy scalars
            value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # First bucket with ``value <= bound``: bisect over the sorted
        # bounds instead of a linear scan (the last bound is +inf, so the
        # index is always valid).
        i = bisect_left(self.buckets, value)
        self.bucket_counts[i] += 1
        if trace_id is not None:
            self.exemplars[i] = Exemplar(trace_id, value, at)

    @property
    def value(self) -> float:
        """The running mean (a histogram's one-number summary)."""
        return self.sum / self.count if self.count else math.nan

    def exemplars_above(self, threshold: float,
                        since: Optional[float] = None) -> List[Exemplar]:
        """Exemplars from buckets whose entire range exceeds ``threshold``.

        The objective-violation query: for "p95 < 30 s", the exemplars
        of every bucket with lower bound >= 30 s name jobs that
        individually blew the objective.  ``since`` drops exemplars
        captured before a window start.
        """
        out: List[Exemplar] = []
        lower = 0.0
        for bound, exemplar in zip(self.buckets, self.exemplars):
            if lower >= threshold and exemplar is not None:
                if since is None or exemplar.time >= since:
                    out.append(exemplar)
            lower = bound
        return out

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile via linear in-bucket interpolation.

        An empty histogram reports 0.0 — the identity for "no latency
        observed yet" — so report code can format the result without a
        NaN guard at every call site.
        """
        if not self.count:
            return 0.0
        target = self.count * q / 100.0
        cumulative = 0
        lower = self.min if math.isfinite(self.min) else 0.0
        for i, bound in enumerate(self.buckets):
            in_bucket = self.bucket_counts[i]
            if cumulative + in_bucket >= target:
                upper = bound if math.isfinite(bound) else self.max
                if in_bucket == 0:
                    return upper
                frac = (target - cumulative) / in_bucket
                return lower + (upper - lower) * min(1.0, max(0.0, frac))
            cumulative += in_bucket
            lower = bound
        return self.max  # pragma: no cover - target <= count always hits

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.value if self.count else None,
            "p50": self.percentile(50) if self.count else None,
            "p95": self.percentile(95) if self.count else None,
            "buckets": {
                ("inf" if math.isinf(b) else f"{b:g}"): c
                for b, c in zip(self.buckets, self.bucket_counts)},
            "exemplars": [e.to_dict() for e in self.exemplars
                          if e is not None],
        }

    def describe(self) -> str:
        return f"n={self.count}"


class MetricsRegistry:
    """All metric series of one deployment, keyed by (name, labels)."""

    def __init__(self):
        self._metrics: "Dict[Tuple[str, LabelsKey], Metric]" = {}

    # -- instrument factories ------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              **labels) -> Gauge:
        gauge = self._get_or_create(Gauge, name, labels, fn=fn)
        if fn is not None and gauge.fn is None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str,
                  buckets: Optional[Tuple[float, ...]] = None,
                  **labels) -> Histogram:
        return self._get_or_create(Histogram, name, labels,
                                   buckets=buckets or DEFAULT_BUCKETS)

    def _get_or_create(self, cls, name: str, labels: dict, **kwargs):
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(name, labels, **kwargs)
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r}{labels or ''} is a "
                f"{type(metric).__name__}, not a {cls.__name__}")
        return metric

    # -- queries ------------------------------------------------------------

    def get(self, name: str, **labels) -> Optional[Metric]:
        return self._metrics.get((name, _labels_key(labels)))

    def value(self, name: str, **labels) -> float:
        metric = self.get(name, **labels)
        return metric.value if metric is not None else 0.0

    def series(self, name: str) -> List[Metric]:
        """Every labelled variant of ``name``."""
        return [m for (n, _), m in self._metrics.items() if n == name]

    def total(self, name: str) -> float:
        """Sum of ``name`` across all label sets."""
        return sum(m.value for m in self.series(name))

    def gauges(self) -> Iterator[Gauge]:
        return (m for m in self._metrics.values() if isinstance(m, Gauge))

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe dump: ``{kind: {name: {label_text: value}}}``."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in self._metrics.values():
            label_text = ",".join(
                f"{k}={v}" for k, v in sorted(metric.labels.items())) or ""
            if isinstance(metric, Counter):
                out["counters"].setdefault(metric.name, {})[label_text] = \
                    metric.value
            elif isinstance(metric, Histogram):
                out["histograms"].setdefault(metric.name, {})[label_text] = \
                    metric.to_dict()
            else:
                out["gauges"].setdefault(metric.name, {})[label_text] = \
                    metric.value
        return out


class CounterGroup:
    """Legacy ``sim.monitor.Counter``-shaped view over a registry.

    Components that historically owned a private ``Counter`` (the broker,
    the system monitor) keep their ``incr``/``get``/``as_dict`` surface;
    the data now lives in the shared registry under ``prefix + name``.
    """

    __slots__ = ("registry", "prefix", "_cache")

    def __init__(self, registry: MetricsRegistry, prefix: str = ""):
        self.registry = registry
        self.prefix = prefix
        #: name → Counter handle.  ``incr`` is called on broker/worker hot
        #: paths with a tiny set of names; resolving the registry key
        #: (labels tuple + dict lookup + type check) every time tripled
        #: its cost.  The registry owns the data — this only caches the
        #: object identity, which is stable for a (name, labels) key.
        self._cache: Dict[str, Counter] = {}

    def incr(self, name: str, amount: float = 1) -> None:
        counter = self._cache.get(name)
        if counter is None:
            counter = self._cache[name] = \
                self.registry.counter(self.prefix + name)
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        counter._value += amount

    def get(self, name: str) -> float:
        return self.registry.value(self.prefix + name)

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for (name, labels_key), metric in self.registry._metrics.items():
            if labels_key or not isinstance(metric, Counter):
                continue
            if name.startswith(self.prefix):
                out[name[len(self.prefix):]] = metric.value
        return out
