"""Content-addressed chunk store: dedup semantics and edge cases."""

import pytest

from repro.sim import Simulator
from repro.storage import (
    ChunkStore,
    ChunkedObject,
    LifecycleRule,
    Manifest,
    ObjectStore,
    split_chunks,
)
from repro.errors import StorageError


@pytest.fixture
def store():
    return ObjectStore(Simulator(), chunk_size=64)


class TestManifest:
    def test_round_trip_and_digest_stability(self):
        data = bytes(range(256)) * 3
        m = Manifest.from_bytes(data, chunk_size=100)
        again = Manifest.from_doc(m.to_doc())
        assert again.digest == m.digest
        assert again.total_size == len(data)
        assert [c.digest for c in again.chunks] == \
            [c.digest for c in m.chunks]

    def test_delta_identifies_changed_chunks_only(self):
        base = Manifest.from_bytes(b"a" * 100 + b"b" * 100, chunk_size=100)
        edit = Manifest.from_bytes(b"a" * 100 + b"c" * 100, chunk_size=100)
        delta = edit.delta(base)
        assert len(delta) == 1
        assert edit.delta(None) == list(edit.chunks)

    def test_split_chunks_validates(self):
        with pytest.raises(ValueError):
            split_chunks(b"xy", 0)


class TestDedupEdgeCases:
    def test_zero_byte_project(self, store):
        """An empty payload: zero chunks, assembles to b''."""
        store.create_bucket("b")
        obj = store.put_object("b", "empty", b"", dedup=True)
        assert isinstance(obj, ChunkedObject)
        assert len(obj.manifest) == 0
        assert obj.size == 0
        assert store.get_object("b", "empty").data == b""

    def test_single_chunk_project(self, store):
        """Payload smaller than one chunk: one chunk, full round trip."""
        store.create_bucket("b")
        obj = store.put_object("b", "tiny", b"hello", dedup=True)
        assert len(obj.manifest) == 1
        assert obj.data == b"hello"
        # A second identical upload stores nothing new.
        before = store.chunk_store.unique_bytes
        store.put_object("b", "tiny2", b"hello", dedup=True)
        assert store.chunk_store.unique_bytes == before

    def test_full_churn_has_no_dedup_win(self, store):
        """100% churn: every chunk is new, wire cost equals payload."""
        store.create_bucket("b")
        first = bytes(range(256)).ljust(256, b"\0")
        second = bytes(reversed(range(256)))
        store.put_object("b", "v1", first, dedup=True)
        m2 = Manifest.from_bytes(second, store.chunk_store.chunk_size)
        assert store.chunk_store.missing_bytes(m2) == len(second)
        _, new_bytes = store.chunk_store.store(second)
        assert new_bytes == len(second)

    def test_lifecycle_expiry_keeps_shared_chunks_alive(self, store):
        """Expiring one manifest must not break a live one sharing
        chunks (the refcount satellite)."""
        bucket = store.create_bucket("uploads")
        bucket.add_lifecycle_rule(LifecycleRule(expire_after=100.0,
                                                since="creation"))
        shared = b"S" * 64 + b"T" * 64   # two distinct shared chunks
        old = store.put_object("uploads", "old", shared + b"X" * 64,
                               dedup=True)
        store.sim.run(until=60.0)
        live = store.put_object("uploads", "live", shared + b"Y" * 64,
                                dedup=True)
        store.sim.run(until=120.0)   # 'old' past expiry, 'live' not
        removed = store.run_lifecycle_sweep()
        assert removed == ["uploads/old"]
        # The live object still assembles, including the shared prefix.
        assert store.get_object("uploads", "live").data == \
            shared + b"Y" * 64
        # The old object's unshared chunk was actually freed.
        assert store.chunk_store.unique_bytes == 128 + 64
        with pytest.raises(StorageError):
            store.chunk_store.assemble(old.manifest)
        assert live is not None

    def test_overwrite_releases_previous_manifest(self, store):
        store.create_bucket("b")
        store.put_object("b", "k", b"A" * 64, dedup=True)
        store.put_object("b", "k", b"B" * 64, dedup=True)
        assert store.chunk_store.unique_bytes == 64
        assert store.get_object("b", "k").data == b"B" * 64

    def test_delete_object_releases_chunks(self, store):
        store.create_bucket("b")
        store.put_object("b", "k", bytes(range(200)), dedup=True)
        assert store.chunk_store.unique_bytes == 200
        store.delete_object("b", "k")
        assert store.chunk_store.unique_bytes == 0
        assert store.chunk_store.unique_chunks == 0

    def test_dedup_object_accounting_matches_plain_put(self, store):
        """Sizes/etags/bucket bytes are identical either way; only the
        real memory differs."""
        store.create_bucket("b")
        data = bytes(range(256)) + bytes(range(44))
        plain = store.put_object("b", "plain", data)
        chunked = store.put_object("b", "chunked", data, dedup=True)
        assert chunked.size == plain.size
        assert chunked.etag == plain.etag
        assert chunked.head()["size"] == plain.head()["size"]
        # Stats surface the sharing.
        stats = store.stats()
        assert stats["chunk_store"]["unique_bytes"] == 300
        assert stats["chunk_store"]["dedup_ratio"] == 1.0


class TestChunkStoreRefcounts:
    def test_release_is_per_reference_not_per_chunk(self):
        cs = ChunkStore(chunk_size=50)
        m1, _ = cs.store(b"a" * 50)
        m2, new = cs.store(b"a" * 50)
        assert new == 0
        assert cs.release(m1) == 0       # still referenced by m2
        assert cs.assemble(m2) == b"a" * 50
        assert cs.release(m2) == 50      # last reference frees
        assert cs.unique_chunks == 0

    def test_dedup_ratio_tracks_live_sharing(self):
        cs = ChunkStore(chunk_size=10)
        cs.store(bytes(range(30)))
        cs.store(bytes(range(30)))
        cs.store(bytes(range(30)))
        assert cs.dedup_ratio() == pytest.approx(3.0)
