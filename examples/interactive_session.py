#!/usr/bin/env python
"""Interactive sessions — the paper's §VIII future work, working.

A student opens a live container on a worker and iterates: build, run,
inspect the profile, tweak, re-run — with state persisting between
commands, which batch submissions cannot offer.  The sandbox contract
(whitelisted image, no network, read-only /src, lifetime caps) still
holds.

Run:  python examples/interactive_session.py
"""

from repro.core.config import WorkerConfig
from repro.core.interactive import InteractiveSession
from repro.core.system import RaiSystem


def main() -> None:
    system = RaiSystem(seed=8)
    system.add_worker(WorkerConfig(enable_interactive=True))

    client = system.new_client(
        team="debuggers",
        on_line=lambda stream, text: print(text, end=""),
    )
    client.stage_project({
        "main.cu": "// @rai-sim quality=0.7 impl=analytic\n"
                   "#define TILE_WIDTH 16\n",
        "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
    })

    session = InteractiveSession(client, max_duration=1800.0)

    def student(sim):
        print("=== requesting an interactive session ===")
        transcript = yield from session.start()
        print(f"attached to {transcript.worker_id}\n")

        for command in [
            "nvidia-smi",
            "cmake /src && make",
            "./ece408 /data/test10.hdf5 /data/model.hdf5",
            "nvprof --export-profile timeline.nvprof "
            "./ece408 /data/test10.hdf5 /data/model.hdf5",
            "ls -l",                      # state persisted: ece408, profile
            "wc -l timeline.nvprof",
        ]:
            print(f"\n$ {command}")
            outcome = yield from session.run(command)
            print(f"[exit {outcome.exit_code}, "
                  f"{outcome.duration:.2f}s simulated]")

        print("\n$ curl http://example.com  (sandbox check)")
        denied = yield from session.run("curl http://example.com")
        print(f"[exit {denied.exit_code} — network stays off, even "
              "interactively]")

        transcript = yield from session.close()
        return transcript

    transcript = system.run(student(system.sim))
    print(f"\nsession ended: {transcript.end_reason}; "
          f"{len(transcript.outcomes)} commands, recorded in the DB as "
          f"{session.session_id}")
    row = system.db.collection("interactive_sessions").find_one(
        {"session_id": session.session_id})
    print(f"database transcript rows: {len(row['commands'])}")


if __name__ == "__main__":
    main()
