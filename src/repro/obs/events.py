"""The deployment-wide structured event log.

Traces answer "what happened inside *this* job"; metrics answer "how
much, in aggregate".  The event log sits between them: a single
time-ordered stream of typed, labelled records — state changes, slot
churn, redeliveries, fault injections, pool hits, scaling decisions,
alert transitions — that an operator can query by job, by team, by type,
or by time window (Ray's event-log/dashboard design applied to a
submission system).  Every event may carry a ``trace_id``/``span_id``,
so any log line links straight to its waterfall (``rai trace``).

The log is a ring buffer: a course-length run emits far more events than
an operator will ever page through, so only the most recent
``max_events`` are kept (drop count is tracked).  Emission is cheap and
allocation-light — one ``Event`` and a deque append — and a disabled log
costs a single attribute check, so the hot path can emit unconditionally.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Deque, Dict, Iterator, List, Optional


class EventType:
    """Well-known event types (plain strings; emitters may add more).

    Dotted namespaces group related records: everything under ``job.``
    concerns one submission's lifecycle, ``broker.`` the message plane,
    and so on.  The constants exist for greppability — the log itself
    accepts any string.
    """

    JOB_STATE_CHANGE = "job.state_change"
    WORKER_SLOT = "worker.slot"
    WORKER_CRASH = "worker.crash"
    BROKER_REDELIVER = "broker.redeliver"
    BROKER_DEAD_LETTER = "broker.dead_letter"
    FAULT_INJECTED = "fault.injected"
    POOL_HIT = "pool.hit"
    POOL_MISS = "pool.miss"
    POOL_EVICT = "pool.evict"
    BUILDCACHE_HIT = "buildcache.hit"
    BUILDCACHE_MISS = "buildcache.miss"
    BUILDCACHE_EVICT = "buildcache.evict"
    AUTOSCALE_DECISION = "autoscale.decision"
    SCHED_DISPATCH = "sched.dispatch"
    ALERT_FIRED = "alert.fired"
    ALERT_RESOLVED = "alert.resolved"
    DURABILITY_SNAPSHOT = "durability.snapshot"
    DURABILITY_REPLAY = "durability.replay"
    SHARD_ROUTE = "shard.route"
    SHARD_STEAL = "shard.steal"
    USAGE_SAMPLE = "usage.sample"
    COST_WINDOW = "cost.window"


class Event:
    """One timestamped, typed record with free-form labelled fields."""

    __slots__ = ("time", "type", "trace_id", "span_id", "fields")

    def __init__(self, time: float, type: str,
                 trace_id: Optional[str] = None,
                 span_id: Optional[str] = None,
                 fields: Optional[dict] = None):
        self.time = float(time)
        self.type = type
        self.trace_id = trace_id
        self.span_id = span_id
        self.fields: dict = fields if fields is not None else {}

    @property
    def job_id(self) -> Optional[str]:
        job_id = self.fields.get("job_id")
        return str(job_id) if job_id is not None else None

    @property
    def team(self) -> Optional[str]:
        team = self.fields.get("team")
        return str(team) if team is not None else None

    def to_dict(self) -> dict:
        out = {"t": self.time, "type": self.type}
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.span_id is not None:
            out["span_id"] = self.span_id
        out["fields"] = dict(self.fields)
        return out

    def __repr__(self):
        tags = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"<Event t={self.time:g} {self.type} {tags}>"


class EventLog:
    """Ring-buffered, queryable stream of :class:`Event` records."""

    __slots__ = ("clock", "max_events", "enabled", "_events",
                 "total_emitted", "counts", "_sample", "_skips")

    def __init__(self, clock: Callable[[], float],
                 max_events: int = 4096,
                 enabled: bool = True,
                 sample: Optional[Dict[str, int]] = None):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.clock = clock
        self.max_events = max_events
        self.enabled = enabled
        self._events: Deque[Event] = deque(maxlen=max_events)
        self.total_emitted = 0
        #: Emission tallies per event type (never truncated, unlike the
        #: ring itself) — ``rai alerts``/reports read rates off these.
        self.counts: Dict[str, int] = {}
        #: Per-type ring sampling: ``{"job.state_change": 16}`` retains
        #: one in 16 of that type in the ring.  ``total_emitted`` and
        #: :attr:`counts` stay exact — sampling thins only the debugging
        #: window, never the rates the SLO/alerting plane reads.  Types
        #: not listed are always retained, so rare-but-critical records
        #: (alerts, dead-letters) survive any sampling policy.  At a
        #: million events the ring keeps the last ``max_events`` — well
        #: under 1% — so materializing a record per emission buys
        #: nothing; high-volume homogeneous streams should sample.
        if sample:
            for type_, rate in sample.items():
                if rate < 1:
                    raise ValueError(
                        f"sample rate for {type_!r} must be >= 1")
        self._sample: Dict[str, int] = dict(sample) if sample else {}
        self._skips: Dict[str, int] = {}

    # -- ingest ------------------------------------------------------------

    def emit(self, type: str, span=None,
             trace_id: Optional[str] = None,
             span_id: Optional[str] = None,
             at: Optional[float] = None,
             **fields) -> Optional[Event]:
        """Append one event; returns it (or None when the log is off).

        ``span`` is a convenience: a live :class:`~repro.obs.span.Span`
        donates its trace/span ids (a ``NoopSpan``'s ids are None, so a
        tracing-disabled run degrades to unlinked events, not errors).
        """
        if not self.enabled:
            return None
        self.total_emitted += 1
        counts = self.counts
        try:
            counts[type] += 1
        except KeyError:
            counts[type] = 1
        # Ring sampling: tallies above are already exact, so a sampled-out
        # emission ends here without materializing a record.
        rate = self._sample.get(type)
        if rate is not None:
            left = self._skips.get(type, 1) - 1
            if left:
                self._skips[type] = left
                return None
            self._skips[type] = rate
        if span is not None:
            if trace_id is None:
                trace_id = span.trace_id
            if span_id is None:
                span_id = span.span_id
        # At volume the ring is perpetually full and every append evicts
        # the oldest record, so recycle that object in place instead of
        # allocating a new one — steady-state emission then allocates
        # nothing beyond the caller's kwargs dict.  Recycled events are
        # by definition outside the retained window, and emit's return
        # value is only ever inspected immediately.
        ring = self._events
        if len(ring) == self.max_events:
            event = ring.popleft()
            event.time = self.clock() if at is None else at
            event.type = type
            event.trace_id = trace_id
            event.span_id = span_id
            # Refill the retained fields dict rather than replacing it:
            # the caller's kwargs dict then dies young (allocator-hot),
            # instead of evicting a ring-old, cache-cold dict per emit.
            old = event.fields
            old.clear()
            old.update(fields)
        else:
            event = Event(self.clock() if at is None else at, type,
                          trace_id=trace_id, span_id=span_id, fields=fields)
        ring.append(event)
        return event

    # -- query ------------------------------------------------------------

    def query(self, type: Optional[str] = None,
              prefix: Optional[str] = None,
              job_id=None, team: Optional[str] = None,
              trace_id: Optional[str] = None,
              since: Optional[float] = None,
              until: Optional[float] = None,
              limit: Optional[int] = None) -> List[Event]:
        """Filter the retained window; all criteria AND together.

        ``type`` matches exactly; ``prefix`` matches a dotted namespace
        (``"pool."`` catches hits, misses, and evictions).  ``limit``
        keeps the *most recent* N matches.
        """
        job_id = str(job_id) if job_id is not None else None
        out: List[Event] = []
        for event in self._events:
            if type is not None and event.type != type:
                continue
            if prefix is not None and not event.type.startswith(prefix):
                continue
            if job_id is not None and event.job_id != job_id:
                continue
            if team is not None and event.team != team:
                continue
            if trace_id is not None and event.trace_id != trace_id:
                continue
            if since is not None and event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            out.append(event)
        if limit is not None and len(out) > limit:
            out = out[-limit:]
        return out

    def events_for_job(self, job_id) -> List[Event]:
        """The one-job audit trail (client accept → terminal state)."""
        return self.query(job_id=job_id)

    def tail(self, n: int = 20) -> List[Event]:
        """The most recent ``n`` events."""
        if n <= 0:
            return []
        return list(self._events)[-n:]

    @property
    def dropped(self) -> int:
        """Events emitted but not retained (ring overflow or sampling)."""
        return self.total_emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    # -- export ------------------------------------------------------------

    def export_jsonl(self, path: Optional[str] = None,
                     events: Optional[List[Event]] = None) -> str:
        """Events as JSONL, one per line (the whole ring by default)."""
        if events is None:
            events = list(self._events)
        lines = [json.dumps(e.to_dict()) for e in events]
        text = "\n".join(lines) + ("\n" if lines else "")
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "retained": len(self._events),
            "emitted": self.total_emitted,
            "dropped": self.dropped,
            "max_events": self.max_events,
            "by_type": dict(sorted(self.counts.items())),
        }
