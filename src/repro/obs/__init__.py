"""``repro.obs`` — end-to-end distributed tracing + a unified metrics
registry.

The third leg of the roadmap after robustness (PR 1) and performance
(PR 2): per-job provenance.  One trace follows a submission from client
publish through broker delivery, worker claim, buildspec parse,
container commands, storage transfers, and docdb writes to the result
publish; retries and injected faults land as span events, so a chaos
run is explainable job by job.  The metrics registry is the single home
for what used to be ad-hoc counter islands, and callback-backed gauges
feed the telemetry sampler and operator report from one definition.

The loop closes with :mod:`repro.obs.events` (the deployment-wide
structured event stream), :mod:`repro.obs.scrape` (windowed registry
snapshots), :mod:`repro.obs.slo` (declarative objectives with
multi-window burn rates), and :mod:`repro.obs.alerts` (fire/resolve
incident management) — metrics judge themselves, alerts land back in
the event log, and histogram exemplars link a burned objective to the
exact traces that burned it.
"""

from repro.obs.alerts import Alert, AlertManager
from repro.obs.context import (
    TraceContext,
    new_span_id,
    new_trace_id,
    reset_obs_ids,
)
from repro.obs.export import (
    export_metrics_json,
    export_spans_jsonl,
    export_trace_json,
    span_to_dict,
    trace_to_dict,
)
from repro.obs.events import Event, EventLog, EventType
from repro.obs.metrics import (
    Counter,
    CounterGroup,
    Exemplar,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.scrape import MetricsScraper, MetricsSnapshot
from repro.obs.slo import SloEngine, SloSpec, SloStatus, default_slos
from repro.obs.span import NOOP_SPAN, NoopSpan, Span, SpanStatus
from repro.obs.store import Trace, TraceStore
from repro.obs.usage import (
    UNATTRIBUTED,
    USAGE_RESOURCES,
    CostAllocator,
    CostWindow,
    UsageMeter,
    UsageRecord,
)
from repro.obs.tracer import Tracer
from repro.obs.waterfall import (
    critical_path,
    critical_path_report,
    find_trace,
    render_trace_report,
    render_waterfall,
)

__all__ = [
    "TraceContext", "new_trace_id", "new_span_id", "reset_obs_ids",
    "Span", "NoopSpan", "NOOP_SPAN", "SpanStatus",
    "Tracer", "Trace", "TraceStore",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "CounterGroup",
    "Exemplar",
    "Event", "EventLog", "EventType",
    "MetricsScraper", "MetricsSnapshot",
    "SloSpec", "SloEngine", "SloStatus", "default_slos",
    "Alert", "AlertManager",
    "UsageMeter", "UsageRecord", "CostAllocator", "CostWindow",
    "USAGE_RESOURCES", "UNATTRIBUTED",
    "span_to_dict", "trace_to_dict", "export_trace_json",
    "export_spans_jsonl", "export_metrics_json",
    "critical_path", "critical_path_report", "render_waterfall",
    "render_trace_report", "find_trace",
]
