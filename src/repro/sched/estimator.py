"""Per-team runtime estimation for shortest-expected-job-first ordering."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional


class RuntimeEstimator:
    """EWMA of observed per-team service times, seeded from history.

    ``history_fn(key)`` — typically a docdb query over past submissions —
    supplies prior observations the first time a key is seen, so a system
    restarted mid-semester does not forget that one team's jobs take ten
    minutes while another's take ten seconds.
    """

    def __init__(self,
                 history_fn: Optional[Callable[[str], Iterable[float]]] = None,
                 default_seconds: float = 30.0,
                 alpha: float = 0.3,
                 history_limit: int = 20):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if default_seconds <= 0:
            raise ValueError("default_seconds must be > 0")
        self.history_fn = history_fn
        self.default_seconds = default_seconds
        self.alpha = alpha
        self.history_limit = history_limit
        self._estimates: Dict[str, float] = {}
        self._seeded: set = set()

    def _seed(self, key: str) -> None:
        self._seeded.add(key)
        if self.history_fn is None:
            return
        try:
            samples = list(self.history_fn(key))[-self.history_limit:]
        except Exception:
            return
        estimate = None
        for sample in samples:
            try:
                value = float(sample)
            except (TypeError, ValueError):
                continue
            if value <= 0:
                continue
            estimate = value if estimate is None else \
                (1 - self.alpha) * estimate + self.alpha * value
        if estimate is not None:
            self._estimates[key] = estimate

    def expected(self, key: str) -> float:
        """Expected service seconds for ``key``'s next job."""
        if key not in self._seeded:
            self._seed(key)
        return self._estimates.get(key, self.default_seconds)

    def observe(self, key: str, seconds: float) -> None:
        """Fold one completed job's service time into the estimate."""
        if seconds < 0:
            return
        if key not in self._seeded:
            self._seed(key)
        current = self._estimates.get(key)
        if current is None:
            self._estimates[key] = seconds
        else:
            self._estimates[key] = \
                (1 - self.alpha) * current + self.alpha * seconds

    def known_keys(self) -> list:
        return sorted(self._estimates)
