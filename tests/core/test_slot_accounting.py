"""Per-slot live-time accounting behind ``RaiWorker.utilization``.

The old denominator was ``max_concurrent_jobs * uptime`` — wrong the
moment slots are added mid-run or the worker stops: a half-busy worker
could read as nearly idle and starve the autoscaler's occupancy signal.
The denominator now integrates only the seconds each slot actually
existed.
"""

import pytest

from repro.core.config import WorkerConfig
from repro.core.system import RaiSystem

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


def make_system(slots: int = 1) -> RaiSystem:
    return RaiSystem.standard(
        num_workers=1, seed=31,
        worker_config=WorkerConfig(max_concurrent_jobs=slots,
                                   enable_interactive=False))


def advance(system, seconds: float) -> None:
    def waiter(sim):
        yield sim.timeout(seconds)

    system.run(system.sim.process(waiter(system.sim)))


class TestSlotSeconds:
    def test_initial_slots_accrue_from_start(self):
        system = make_system(slots=2)
        worker = system.workers[0]
        advance(system, 100.0)
        assert worker.slot_count == 2
        assert worker.slot_seconds() == pytest.approx(200.0)

    def test_slots_added_mid_run_accrue_from_their_birth(self):
        system = make_system(slots=1)
        worker = system.workers[0]
        advance(system, 100.0)
        worker.add_slots(1)
        advance(system, 50.0)
        # 150s for the original slot + 50s for the late one, not 300s.
        assert worker.slot_count == 2
        assert worker.slot_seconds() == pytest.approx(200.0)

    def test_stop_freezes_the_denominator(self):
        system = make_system(slots=2)
        worker = system.workers[0]
        advance(system, 100.0)
        worker.stop()
        frozen = worker.slot_seconds()
        assert frozen == pytest.approx(200.0)
        advance(system, 500.0)
        assert worker.slot_seconds() == frozen
        assert worker.slot_count == 0

    def test_add_slots_validation(self):
        system = make_system()
        worker = system.workers[0]
        with pytest.raises(ValueError):
            worker.add_slots(0)
        worker.stop()
        with pytest.raises(RuntimeError):
            worker.add_slots(1)


class TestUtilization:
    def test_idle_worker_reads_zero(self):
        system = make_system(slots=2)
        advance(system, 50.0)
        assert system.workers[0].utilization() == 0.0

    def test_denominator_is_slot_time_not_uptime(self):
        """One busy slot out of two for the whole run reads ~50%, and the
        same busy seconds over one slot read twice that."""
        system = make_system(slots=2)
        worker = system.workers[0]
        client = system.new_client(team="t")
        client.stage_project(FILES)
        system.run(client.submit())
        busy = worker.busy_seconds
        assert busy > 0
        assert worker.utilization() == pytest.approx(
            busy / worker.slot_seconds())
        assert worker.slot_seconds() == pytest.approx(2 * system.sim.now)

    def test_late_slot_does_not_dilute_utilization(self):
        """Adding a slot just before reading utilization barely moves it,
        because the new slot has existed for ~no time."""
        system = make_system(slots=1)
        worker = system.workers[0]
        client = system.new_client(team="t")
        client.stage_project(FILES)
        system.run(client.submit())
        before = worker.utilization()
        worker.add_slots(3)
        after = worker.utilization()
        assert after == pytest.approx(before, rel=1e-6)

    def test_interactive_executor_not_a_slot(self):
        system = RaiSystem.standard(
            num_workers=1, seed=31,
            worker_config=WorkerConfig(max_concurrent_jobs=2,
                                       enable_interactive=True))
        assert system.workers[0].slot_count == 2
