"""Usage attribution survives cross-shard work-stealing (PR 10 satellite).

A stolen job executes on a worker homed to a different partition than
the submitting team.  Metering attributes by the job document's team —
carried in the message body and the job object, not the executing
worker's partition — so the originating team is billed no matter where
the container actually ran.
"""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import RaiSystem
from repro.obs.usage import UNATTRIBUTED

pytestmark = [pytest.mark.shard, pytest.mark.usage]

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}

# Probed against ShardMap(2, seed=0): three teams homed on partition 0,
# one on partition 1 (same constants as test_shard_system).
P0_TEAMS = ["team00", "team01", "team03"]
P1_TEAM = "team02"


def _storm(system, teams, jobs_per_team=1):
    gap = system.config.rate_limit_seconds + 5.0

    def student(idx, team):
        client = system.new_client(team=team, username=f"{team}-user")
        client.stage_project(FILES)
        yield system.sim.timeout(0.5 * idx)
        for k in range(jobs_per_team):
            if k:
                yield system.sim.timeout(gap)
            result = yield from client.submit()
            results.append(result)

    results = []
    system.run_all([student(i, t) for i, t in enumerate(teams)])
    return results


class TestStolenJobAttribution:
    def test_stolen_jobs_bill_the_originating_team(self):
        # Same recipe as the work-stealing test: partition 1's worker
        # drains its single home job, then pull-steals from partition
        # 0's three-team backlog.
        system = RaiSystem.standard(num_workers=2, seed=7,
                                    config=SystemConfig(shards=2))
        results = _storm(system, [P1_TEAM] + P0_TEAMS, jobs_per_team=3)
        assert all(r.status.value == "succeeded" for r in results)
        assert system.shards.steals_in[1] > 0   # steals really happened

        meter = system.usage
        # Every team's compute landed on its own ledger line...
        for team in [P1_TEAM] + P0_TEAMS:
            assert meter.tenant_total(team, "container_seconds") > 0
            assert meter.tenant_total(team, "slot_seconds") > 0
        # ...and none of it leaked to the overhead bucket.
        assert meter.tenant_total(
            UNATTRIBUTED, "container_seconds") == 0.0
        assert meter.tenant_count() == 4

    def test_stolen_job_exemplars_keep_team_and_trace(self):
        system = RaiSystem.standard(num_workers=2, seed=7,
                                    config=SystemConfig(shards=2))
        results = _storm(system, [P1_TEAM] + P0_TEAMS, jobs_per_team=3)
        by_job = {r.job_id: r for r in results}
        stolen = {e.fields["job_id"]
                  for e in system.events.query(type="shard.steal")}
        assert stolen
        metered = {j.job_id: j for j in system.usage.top_jobs(
            len(system.usage.jobs))}
        seen = stolen & set(metered)
        assert seen   # at least one stolen job kept an exemplar slot
        for job_id in seen:
            exemplar = metered[job_id]
            doc = system.db.collection("submissions").find_one(
                {"job_id": job_id})
            assert exemplar.tenant == doc["team"]
            assert exemplar.trace_id is not None
        # And the billed totals reconcile across partitions: summing
        # the per-team books equals the global container-second total.
        total = sum(system.usage.tenant_total(t, "container_seconds")
                    for t in [P1_TEAM] + P0_TEAMS)
        assert total == pytest.approx(
            system.usage.totals["container_seconds"])
