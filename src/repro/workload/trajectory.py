"""Per-team optimisation trajectories and project-file synthesis.

A team's code quality follows a logistic curve: near zero while they study
the serial baseline, a steep middle as the GPU port lands, and a plateau
at a skill-dependent final quality.  The synthesised sources carry the
``@rai-sim`` markers the container toolchain interprets (see
:mod:`repro.container.commands.base` for the substitution rationale).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from repro.workload.students import Team


@dataclass
class TeamTrajectory:
    """How one team's implementation evolves over the project."""

    team: Team
    #: Project-time fraction at which the team hits half its final quality.
    midpoint: float = 0.55
    #: Logistic steepness (fraction of project duration).
    steepness: float = 0.10
    #: Probability an early submission fails to compile (decays with time).
    early_compile_error_rate: float = 0.12
    late_compile_error_rate: float = 0.02
    early_crash_rate: float = 0.10
    late_crash_rate: float = 0.02
    #: Probability a run has a correctness bug (accuracy < target).
    early_wrong_rate: float = 0.25
    late_wrong_rate: float = 0.04

    @staticmethod
    def for_team(team: Team, rng: np.random.Generator) -> "TeamTrajectory":
        return TeamTrajectory(
            team=team,
            midpoint=float(rng.normal(0.55, 0.08)),
            steepness=float(max(0.05, rng.normal(0.10, 0.03))),
        )

    # -- quality ------------------------------------------------------------

    @property
    def final_quality(self) -> float:
        return self.team.skill

    def quality_at(self, t_fraction: float) -> float:
        """Optimisation quality at project-time fraction ``t``."""
        x = (t_fraction - self.midpoint) / self.steepness
        q = self.final_quality / (1.0 + math.exp(-x))
        return max(0.0, min(1.0, q))

    def on_gpu_at(self, t_fraction: float) -> bool:
        """Whether the team has a GPU port yet (vs the CPU baseline)."""
        return self.quality_at(t_fraction) > 0.02 * self.final_quality + 1e-9 \
            and t_fraction > self.midpoint - 3 * self.steepness

    # -- failure rates ------------------------------------------------------

    def _decayed(self, early: float, late: float, t: float) -> float:
        return early + (late - early) * min(1.0, max(0.0, t))

    def compile_error_rate(self, t: float) -> float:
        return self._decayed(self.early_compile_error_rate,
                             self.late_compile_error_rate, t)

    def crash_rate(self, t: float) -> float:
        return self._decayed(self.early_crash_rate, self.late_crash_rate, t)

    def wrong_rate(self, t: float) -> float:
        return self._decayed(self.early_wrong_rate, self.late_wrong_rate, t)


_CMAKELISTS = """\
cmake_minimum_required(VERSION 3.2)
project(ece408project LANGUAGES CXX CUDA)
add_executable(ece408 main.cu)
target_link_libraries(ece408 hdf5)
"""

_USAGE = """\
Build with `rai` using the default build file.  The nvprof timeline is
written to /build/timeline.nvprof; open it with nvvp.  Our kernel lives in
main.cu; tiling parameters are the TILE_* constants at the top.
"""


def team_project_files(trajectory: TeamTrajectory, t_fraction: float,
                       rng: np.random.Generator,
                       final: bool = False) -> Dict[str, Union[str, bytes]]:
    """Synthesise the team's project directory at this point in time.

    The ``@rai-sim`` marker encodes quality/correctness/failure modes the
    sandbox toolchain will honour.  Final submissions include the required
    USAGE and report.pdf files and are debugged harder (failure rates are
    halved).
    """
    t = min(1.0, max(0.0, t_fraction))
    quality = trajectory.quality_at(t)
    # Per-submission jitter: teams try experiments that sometimes regress.
    quality = float(np.clip(quality + rng.normal(0.0, 0.02), 0.0, 1.0))

    scale = 0.5 if final else 1.0
    compile_ok = rng.random() >= trajectory.compile_error_rate(t) * scale
    crash = rng.random() < trajectory.crash_rate(t) * scale
    wrong = rng.random() < trajectory.wrong_rate(t) * scale
    correctness = 1.0 if not wrong else float(rng.uniform(0.35, 0.93))

    marker = (f"// @rai-sim quality={quality:.4f} impl=analytic "
              f"correctness={correctness:.4f} "
              f"compile={'ok' if compile_ok else 'error'} "
              f"runtime={'crash' if crash else 'ok'} "
              f"mem_gb={1.5 + 2.5 * quality:.2f}")
    source = (
        f"{marker}\n"
        f"// {trajectory.team.name} CNN inference, "
        f"project time {t:.2f}, submission code\n"
        "#include <cuda_runtime.h>\n"
        "#define TILE_WIDTH 16\n"
        "__global__ void forward_kernel(float *y, const float *x, "
        "const float *k) { /* ... */ }\n"
        "int main(int argc, char **argv) { return run(argc, argv); }\n"
    )
    files: Dict[str, Union[str, bytes]] = {
        "main.cu": source,
        "CMakeLists.txt": _CMAKELISTS,
    }
    if final:
        files["USAGE"] = _USAGE
        files["report.pdf"] = b"%PDF-1.4\n" + \
            f"% {trajectory.team.name} final report\n".encode() + \
            bytes(2048)
    return files
