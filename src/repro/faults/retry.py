"""Reusable retry policy: exponential backoff + jitter + attempt budget.

The policy itself is pure arithmetic; the waiting happens in the caller's
simulation process via the :meth:`RetryPolicy.call` generator::

    result = yield from policy.call(
        sim, lambda: storage.get_object(bucket, key),
        rng=rng, retry_on=(TransientStorageError,))
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter and a bounded attempt budget."""

    #: Total tries, including the first (1 = no retries).
    max_attempts: int = 4
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    #: Fractional jitter: each delay is scaled by ``1 + jitter * U(0, 1)``
    #: (drawn from the caller's deterministic stream when provided).
    jitter: float = 0.25

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def backoff(self, attempt: int, rng=None) -> float:
        """Delay before retry number ``attempt`` (1-based failed attempt)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(self.base_delay * self.multiplier ** (attempt - 1),
                    self.max_delay)
        if rng is not None and self.jitter > 0:
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay

    def call(self, sim, fn, rng=None, retry_on=(Exception,), on_retry=None):
        """Generator running ``fn`` under this policy.

        Yields backoff timeouts between attempts; returns ``fn()``'s value.
        The final failure re-raises unaltered.  ``on_retry(attempt, exc)``
        (if given) is invoked before each backoff sleep.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except retry_on as exc:
                if attempt >= self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                yield sim.timeout(self.backoff(attempt, rng))
