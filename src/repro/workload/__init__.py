"""Synthetic student population and course-driver processes.

The paper's operational data (Figures 2 and 4, the §VII/§VIII aggregate
numbers) comes from 176 students in 58 teams working over a 5-week
project.  This subpackage is the DESIGN.md substitution for that class: a
stochastic behaviour model with the three mechanisms the paper names —

- a **circadian rhythm** in submission activity ("students made a
  significant number of submissions ... which followed their circadian
  rhythm", Fig. 4 caption);
- **deadline pressure** ("students worked in bursts", the final-week
  surge);
- an **optimisation trajectory** from the 30-minute serial baseline to
  sub-second tuned kernels, whose endpoint distribution produces the
  Figure 2 runtime histogram.
"""

from repro.workload.students import Student, Team, make_class
from repro.workload.trajectory import TeamTrajectory, team_project_files
from repro.workload.behavior import (
    circadian_weight,
    deadline_boost,
    submission_rate,
    sample_think_time,
)
from repro.workload.course import CourseConfig, CourseResult, CourseSimulation
from repro.workload.kernelbench import (
    GIANT_TIER,
    LADDER,
    LARGE_TIER,
    MEDIUM_TIER,
    SMALL_TIER,
    SMOKE_TIER,
    KernelResult,
    KernelScale,
    run_kernel_workload,
)

__all__ = [
    "Student",
    "Team",
    "make_class",
    "TeamTrajectory",
    "team_project_files",
    "circadian_weight",
    "deadline_boost",
    "submission_rate",
    "sample_think_time",
    "CourseConfig",
    "CourseResult",
    "CourseSimulation",
    "KernelScale",
    "KernelResult",
    "run_kernel_workload",
    "SMOKE_TIER",
    "SMALL_TIER",
    "MEDIUM_TIER",
    "LARGE_TIER",
    "GIANT_TIER",
    "LADDER",
]
