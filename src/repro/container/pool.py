"""Per-worker warm container pool.

Creating a fresh sandbox for every job charges the engine's create cost
(namespace setup, mount plumbing, cgroup wiring) on the submission hot
path.  The pool keeps a bounded number of *scrubbed* containers per image
and hands them to the next job after a cheap reprovision instead — the
"warm start" half of the scheduler + pool latency attack.

Safety invariants:

- **Reset on return.**  A container is :meth:`~repro.container.container.
  Container.scrub`-bed the moment its job releases it: filesystem (with
  the job's ``/src`` and ``/build``), environment, and output hooks are
  dropped before the container is parked.  Acquisition reprovisions from
  the image template with the new job's mounts, so a container is never
  reused across teams (or even jobs) without a full reset.
- **Tainted containers are never pooled.**  OOM-killed, timed-out, or
  already-destroyed containers go straight back to the engine for
  destruction.
- **Bounded and TTL-evicted.**  At most ``max_per_image`` containers park
  per image; entries idle past ``ttl_seconds`` on the simulation clock are
  destroyed at the next pool operation.
- **Crash-safe.**  :meth:`close` (wired to worker stop/crash) destroys
  every parked container and makes later releases destroy instead of
  park, so a dying worker leaks nothing into
  :attr:`~repro.container.runtime.ContainerRuntime.live_count`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.container.container import Container, ContainerState

#: Container states a released container may be parked from.
_REUSABLE_STATES = (ContainerState.RUNNING, ContainerState.EXITED,
                    ContainerState.CREATED)


@dataclass
class _Parked:
    container: Container
    parked_at: float


class WarmContainerPool:
    """A bounded, TTL-evicted pool of sanitized containers per image."""

    def __init__(self, runtime, clock: Callable[[], float],
                 max_per_image: int = 2,
                 ttl_seconds: float = 900.0,
                 create_seconds: float = 2.0,
                 reset_seconds: float = 0.2,
                 events=None, owner: Optional[str] = None, usage=None):
        if max_per_image < 0:
            raise ValueError("max_per_image must be >= 0")
        if create_seconds < 0 or reset_seconds < 0:
            raise ValueError("create/reset seconds must be >= 0")
        self.runtime = runtime
        self.clock = clock
        self.max_per_image = max_per_image
        self.ttl_seconds = ttl_seconds
        self.create_seconds = create_seconds
        self.reset_seconds = reset_seconds
        #: Optional :class:`~repro.obs.events.EventLog` + the owning
        #: worker's id, so fleet-wide pool churn reads as one stream.
        self.events = events
        self.owner = owner
        #: Optional :class:`~repro.obs.usage.UsageMeter`: warm-slot
        #: occupancy is billable — a hit charges the acquiring tenant
        #: the idle time it consumed; TTL evictions are overhead.
        self.usage = usage
        self._parked: Dict[str, Deque[_Parked]] = {}
        self._closed = False
        self.hits = 0
        self.misses = 0
        self.evicted_ttl = 0
        self.evicted_overflow = 0
        self.rejected_tainted = 0

    # -- state ----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.max_per_image > 0 and not self._closed

    @property
    def pooled_count(self) -> int:
        return sum(len(q) for q in self._parked.values())

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- the job-facing surface ----------------------------------------

    def acquire(self, image_name: str, limits=None, mounts=None,
                gpu_device=None, on_output=None, usage_key=None
                ) -> Tuple[Container, bool, float]:
        """Hand out a container for ``image_name``.

        Returns ``(container, pool_hit, cost_seconds)``: the container
        (CREATED state, caller starts it), whether it came warm from the
        pool, and the simulated seconds the caller must charge for the
        acquisition (engine create cost on a miss, reprovision cost on a
        hit).  ``usage_key`` is the tenant a warm hit's consumed slot
        time is metered against.
        """
        self.evict_expired()
        queue = self._parked.get(image_name)
        if self.enabled and queue:
            entry = queue.popleft()
            if not queue:
                del self._parked[image_name]
            if self.usage is not None:
                self.usage.record("warm_slot_seconds",
                                  self.clock() - entry.parked_at,
                                  tenant=usage_key)
            container = entry.container
            container.recycle(limits=limits, mounts=mounts or [],
                              gpu_device=gpu_device, on_output=on_output)
            self.hits += 1
            self._emit("pool.hit", image=image_name,
                       cost=self.reset_seconds)
            return container, True, self.reset_seconds
        container = self.runtime.create_container(
            image_name, limits=limits, mounts=mounts,
            gpu_device=gpu_device, on_output=on_output)
        self.misses += 1
        self._emit("pool.miss", image=image_name, cost=self.create_seconds)
        return container, False, self.create_seconds

    def _emit(self, type: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(type, worker=self.owner, **fields)

    def release(self, container: Container) -> bool:
        """Return a container after its job; park it or destroy it.

        Returns True when the container was parked for reuse.
        """
        if container.state not in _REUSABLE_STATES:
            if container.state is not ContainerState.DESTROYED:
                self.rejected_tainted += 1
                self.runtime.destroy_container(container)
            return False
        if not self.enabled:
            self.runtime.destroy_container(container)
            return False
        image_name = getattr(container.image, "name", None)
        if image_name is None:
            self.runtime.destroy_container(container)
            return False
        queue = self._parked.setdefault(image_name, deque())
        if len(queue) >= self.max_per_image:
            self.evicted_overflow += 1
            self.runtime.destroy_container(container)
            return False
        container.scrub()
        queue.append(_Parked(container=container, parked_at=self.clock()))
        return True

    # -- eviction and shutdown -----------------------------------------

    def evict_expired(self) -> int:
        """Destroy parked containers idle past the TTL; returns count."""
        if self.ttl_seconds is None:
            return 0
        now = self.clock()
        evicted = 0
        for image_name in list(self._parked):
            queue = self._parked[image_name]
            while queue and now - queue[0].parked_at >= self.ttl_seconds:
                entry = queue.popleft()
                self.runtime.destroy_container(entry.container)
                self.evicted_ttl += 1
                evicted += 1
                self._emit("pool.evict", image=image_name, reason="ttl",
                           idle=now - entry.parked_at)
                if self.usage is not None:
                    # Nobody claimed this slot before it expired: the
                    # idle time is platform overhead, not tenant usage.
                    self.usage.record("warm_slot_seconds",
                                      now - entry.parked_at, tenant=None)
            if not queue:
                del self._parked[image_name]
        return evicted

    def drain(self) -> int:
        """Destroy every parked container; returns count destroyed."""
        drained = 0
        for queue in self._parked.values():
            for entry in queue:
                self.runtime.destroy_container(entry.container)
                drained += 1
        self._parked.clear()
        return drained

    def close(self) -> int:
        """Drain the pool and refuse future parking (worker shutdown or
        crash): in-flight jobs releasing after close destroy their
        containers instead of leaking them into a dead worker's pool."""
        self._closed = True
        return self.drain()

    # -- observability --------------------------------------------------

    def stats(self) -> dict:
        return {
            "pooled": self.pooled_count,
            "max_per_image": self.max_per_image,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate(), 4),
            "evicted_ttl": self.evicted_ttl,
            "evicted_overflow": self.evicted_overflow,
            "rejected_tainted": self.rejected_tainted,
            "closed": self._closed,
        }
