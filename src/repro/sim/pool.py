"""Freelist allocation for hot-path objects.

At giant-tier volume (millions of broker deliveries) object allocation
itself becomes a measurable kernel cost: every published message fans out
into per-channel :class:`~repro.broker.message.Message` copies that live
for exactly one delivery.  A :class:`FreeList` recycles those carcasses so
the steady state allocates nothing.

Recycling is strictly *opt-in*: an object re-enters the pool only when its
owner explicitly proves it is done with it (e.g.
``Channel.ack_release``).  Automatic recycling on ack would be unsound —
consumers legitimately read message bodies after acking.
"""

from __future__ import annotations

from typing import Any, List, Optional


class FreeList:
    """A bounded LIFO cache of reusable objects.

    LIFO on purpose: the most recently released object is the most likely
    to still be CPU-cache-warm.  The pool never constructs objects itself
    — :meth:`acquire` returns ``None`` when empty and the caller falls
    back to a normal construction — so it stays type-agnostic and cannot
    hand out a half-initialised instance.
    """

    __slots__ = ("_free", "limit", "allocated", "reused", "recycled")

    def __init__(self, limit: int = 4096):
        self._free: List[Any] = []
        #: Maximum carcasses retained; releases beyond this are dropped to
        #: the garbage collector so a burst can't pin memory forever.
        self.limit = limit
        #: Fresh constructions (acquire misses).
        self.allocated = 0
        #: Acquire hits served from the freelist.
        self.reused = 0
        #: Objects accepted back into the pool.
        self.recycled = 0

    def acquire(self) -> Optional[Any]:
        """Pop a recycled object, or ``None`` if the pool is empty."""
        free = self._free
        if free:
            self.reused += 1
            return free.pop()
        self.allocated += 1
        return None

    def release(self, obj: Any) -> None:
        """Return an object to the pool (dropped if the pool is full)."""
        free = self._free
        if len(free) < self.limit:
            free.append(obj)
            self.recycled += 1

    def clear(self) -> None:
        """Drop every pooled object (test isolation helper)."""
        self._free.clear()

    def stats(self) -> dict:
        return {
            "free": len(self._free),
            "limit": self.limit,
            "allocated": self.allocated,
            "reused": self.reused,
            "recycled": self.recycled,
        }
