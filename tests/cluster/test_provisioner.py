"""Unit tests for instance types and the provisioner."""

import pytest

from repro.cluster import (
    CostReport,
    INSTANCE_CATALOG,
    Provisioner,
    get_instance_type,
)
from repro.core.system import RaiSystem


@pytest.fixture
def system():
    return RaiSystem(seed=5)   # no initial workers


@pytest.fixture
def provisioner(system):
    return Provisioner(system)


class TestInstanceTypes:
    def test_catalog_has_course_shapes(self):
        g2 = get_instance_type("g2.2xlarge")
        p2 = get_instance_type("p2.xlarge")
        assert g2.gpu_model == "K40"
        assert p2.gpu_model == "K80"
        assert g2.hourly_cost_usd < p2.hourly_cost_usd

    def test_unknown_type(self):
        with pytest.raises(KeyError):
            get_instance_type("dgx-h100")


class TestLaunch:
    def test_worker_joins_after_boot(self, system, provisioner):
        inst = provisioner.launch("p2.xlarge")
        assert inst.worker is None
        system.run(until=inst.instance_type.boot_seconds + 1)
        assert inst.worker is not None
        assert inst.worker in system.running_workers

    def test_worker_inherits_instance_gpu(self, system, provisioner):
        inst = provisioner.launch("g2.2xlarge")
        system.run(until=200)
        assert inst.worker.config.gpu_model == "K40"

    def test_launch_many(self, system, provisioner):
        provisioner.launch_many(5, instance_type="p2.xlarge")
        system.run(until=200)
        assert len(system.running_workers) == 5

    def test_concurrency_passed_through(self, system, provisioner):
        inst = provisioner.launch("p2.xlarge", max_concurrent_jobs=4)
        system.run(until=200)
        assert inst.worker.config.max_concurrent_jobs == 4


class TestTerminate:
    def test_terminate_stops_worker(self, system, provisioner):
        inst = provisioner.launch("p2.xlarge")
        system.run(until=200)
        provisioner.terminate(inst)
        assert not inst.is_live
        assert inst.worker not in system.running_workers

    def test_terminate_during_boot_prevents_join(self, system, provisioner):
        inst = provisioner.launch("p2.xlarge")
        system.run(until=10)   # still booting
        provisioner.terminate(inst)
        system.run(until=300)
        assert inst.worker is None
        assert system.running_workers == []

    def test_terminate_idempotent(self, system, provisioner):
        inst = provisioner.launch("p2.xlarge")
        system.run(until=200)
        provisioner.terminate(inst)
        first = inst.terminated_at
        provisioner.terminate(inst)
        assert inst.terminated_at == first

    def test_terminate_count_prefers_idle(self, system, provisioner):
        provisioner.launch_many(3, instance_type="p2.xlarge")
        system.run(until=200)
        assert provisioner.terminate_count(2) == 2
        assert len(provisioner.live_instances) == 1


class TestCost:
    def test_billing_rounds_up_to_hour(self, system, provisioner):
        inst = provisioner.launch("p2.xlarge")
        system.run(until=1800)   # half an hour
        assert inst.cost_until(system.sim.now) == pytest.approx(0.90)

    def test_multi_hour_billing(self, system, provisioner):
        inst = provisioner.launch("p2.xlarge")
        system.run(until=2.5 * 3600)
        assert inst.cost_until(system.sim.now) == pytest.approx(3 * 0.90)

    def test_terminated_instance_stops_accruing(self, system, provisioner):
        inst = provisioner.launch("p2.xlarge")
        system.run(until=1000)
        provisioner.terminate(inst)
        cost_then = provisioner.total_cost()
        system.run(until=100000)
        assert provisioner.total_cost() == cost_then

    def test_cost_report(self, system, provisioner):
        provisioner.launch_many(2, instance_type="p2.xlarge")
        system.run(until=3600)
        report = CostReport.collect(provisioner)
        assert report.instances_launched == 2
        assert report.total_cost_usd == pytest.approx(2 * 0.90)
        assert "fleet" in report.render()


class TestBillingEdgeCases:
    """Partial-hour billing corners pinned (PR 10 satellite)."""

    def test_zero_duration_instance_bills_nothing(self, system, provisioner):
        inst = provisioner.launch("p2.xlarge")
        provisioner.terminate(inst)   # same instant it launched
        assert inst.terminated_at == inst.launched_at
        system.run(until=7200)
        assert inst.cost_until(system.sim.now) == 0.0

    def test_exact_hour_boundary_does_not_round_up(self, system, provisioner):
        inst = provisioner.launch("p2.xlarge")
        system.run(until=2 * 3600)
        provisioner.terminate(inst)
        # Exactly 2h is 2 billed hours, not 3 — even with float drift.
        assert inst.cost_until(system.sim.now) == pytest.approx(2 * 0.90)
        # Simulated drift just past the boundary must not add an hour.
        inst.terminated_at = inst.launched_at + 2 * 3600 + 1e-10
        assert inst.cost_until(system.sim.now) == pytest.approx(2 * 0.90)

    def test_terminate_before_boot_still_bills_first_hour(
            self, system, provisioner):
        inst = provisioner.launch("p2.xlarge")
        system.run(until=10)   # still booting (boot takes 120s)
        provisioner.terminate(inst)
        assert inst.worker is None
        # Cloud billing starts at launch, not boot: ten seconds of
        # lease is one billed hour.
        system.run(until=100000)
        assert inst.cost_until(system.sim.now) == pytest.approx(0.90)

    def test_live_instance_open_ended_billing_is_monotone(
            self, system, provisioner):
        inst = provisioner.launch("p2.xlarge")
        costs = [inst.cost_until(t) for t in (0.0, 1.0, 3600.0, 3601.0,
                                              7200.0, 7200.5)]
        assert costs == sorted(costs)
        assert costs[-1] == pytest.approx(3 * 0.90)  # 7200.5s -> 3rd hour


class TestClusterGauges:
    """CostReport's numbers are registry gauges too (PR 10 satellite)."""

    def test_fleet_cost_and_occupancy_gauges(self, system, provisioner):
        provisioner.launch("p2.xlarge")
        provisioner.launch("g2.2xlarge")
        system.run(until=1800)
        metrics = system.metrics
        assert metrics.value("cluster_cost_usd_total") == pytest.approx(
            provisioner.total_cost())
        assert metrics.value("cluster_instances_live") == 2
        assert metrics.value("cluster_instance_hours") == pytest.approx(1.0)
        # Per-instance-type labelled gauges split the same totals.
        assert metrics.value("cluster_cost_usd",
                             instance_type="p2.xlarge") == pytest.approx(0.90)
        assert metrics.value("cluster_cost_usd",
                             instance_type="g2.2xlarge") == pytest.approx(0.65)
        assert metrics.value("cluster_instances_live",
                             instance_type="p2.xlarge") == 1

    def test_gauges_sum_across_provisioners(self, system):
        first = Provisioner(system)
        second = Provisioner(system)
        first.launch("p2.xlarge")
        second.launch("p2.xlarge")
        system.run(until=600)
        assert system.metrics.value("cluster_cost_usd_total") == \
            pytest.approx(first.total_cost() + second.total_cost())
        assert system.metrics.value(
            "cluster_cost_usd", instance_type="p2.xlarge") == \
            pytest.approx(2 * 0.90)

    def test_terminated_instances_leave_live_gauge(self, system, provisioner):
        inst = provisioner.launch("p2.xlarge")
        system.run(until=200)
        provisioner.terminate(inst)
        assert system.metrics.value("cluster_instances_live") == 0
        assert system.metrics.value("cluster_cost_usd_total") == \
            pytest.approx(0.90)
