"""Queued resources for the simulation kernel.

Three primitives cover everything the RAI model needs:

- :class:`Resource` — ``capacity`` interchangeable slots with a FIFO wait
  queue (worker job slots, GPU devices).
- :class:`Store` — an unbounded (or bounded) FIFO of Python objects with
  blocking ``get`` (message-broker channels, job queues).
- :class:`Container` — a continuous quantity with blocking ``put``/``get``
  (byte pools, budget accounting).
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Deque, List, Optional

from repro.errors import SimulationError
from repro.sim.events import PENDING, PRIORITY_NORMAL, Event


class Request(Event):
    """Pending acquisition of one slot of a :class:`Resource`."""

    __slots__ = ("resource", "priority", "key")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        self.key = (priority, next(resource._tiebreak))
        resource._request(self)

    def cancel(self) -> None:
        """Withdraw an un-granted request (safe to call after grant)."""
        if self in self.resource._waiting:
            self.resource._waiting.remove(self)

    # context-manager sugar: ``with res.request() as req: yield req``
    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.resource.release(self)
        return False


class Resource:
    """``capacity`` identical slots with FIFO (or priority) granting."""

    __slots__ = ("sim", "capacity", "users", "_waiting", "_tiebreak")

    def __init__(self, sim, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.users: List[Request] = []
        self._waiting: List[Request] = []
        import itertools
        self._tiebreak = itertools.count()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, priority: int = 0) -> Request:
        """Return an event that fires once a slot is granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return a previously granted slot (idempotent for safety)."""
        if request in self.users:
            self.users.remove(request)
            self._grant()
        else:
            request.cancel()

    # -- internals ----------------------------------------------------------

    def _request(self, request: Request) -> None:
        self._waiting.append(request)
        self._grant()

    def _select_next(self) -> Optional[Request]:
        return self._waiting[0] if self._waiting else None

    def _grant(self) -> None:
        while len(self.users) < self.capacity:
            nxt = self._select_next()
            if nxt is None:
                return
            self._waiting.remove(nxt)
            self.users.append(nxt)
            nxt.succeed(nxt)


class PriorityResource(Resource):
    """A resource granting the lowest ``priority`` value first, FIFO-tied."""

    __slots__ = ()

    def _select_next(self) -> Optional[Request]:
        if not self._waiting:
            return None
        return min(self._waiting, key=lambda r: r.key)


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.sim)
        self.item = item
        store._puts.append(self)
        store._dispatch()


class StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(self, store: "Store", filter=None):
        super().__init__(store.sim)
        self.filter = filter
        store._gets.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw an unfulfilled get (used by consumers shutting down)."""
        try:
            self.sim  # attribute check only
        finally:
            pass


class Store:
    """FIFO store of items with blocking ``get`` and optional capacity.

    ``get(filter=...)`` takes the first item satisfying the predicate,
    which the broker uses to implement per-route matching without busy
    waiting.
    """

    __slots__ = ("sim", "capacity", "items", "_puts", "_gets")

    def __init__(self, sim, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._puts: Deque[StorePut] = deque()
        self._gets: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Return an event that fires once the item is stored."""
        return StorePut(self, item)

    def get(self, filter=None) -> StoreGet:
        """Return an event that fires with the next (matching) item."""
        return StoreGet(self, filter)

    def peek_all(self) -> list:
        """Non-destructive snapshot of queued items (for stats/tests)."""
        return list(self.items)

    def _pop_next(self) -> Any:
        """Remove and return the next item for an unfiltered get.

        FIFO by default; subclasses (e.g. a scheduler-backed broker
        channel) may override to reorder dequeue without touching the
        event machinery.  Only called when ``self.items`` is non-empty.
        """
        return self.items.popleft()

    def _put_fast(self, item: Any) -> None:
        """Enqueue ``item`` when the caller ignores the put event.

        The broker's hottest paths (publish fan-out, backlog flush,
        requeue) never look at the returned :class:`StorePut`, so when
        the store has room this skips the event allocation entirely and
        appends directly.  A full store falls back to a real put event
        so blocking semantics — and FIFO order behind already-pending
        puts — are preserved.
        """
        items = self.items
        if self._puts or len(items) >= self.capacity:
            StorePut(self, item)
            return
        items.append(item)
        if self._gets:
            self._dispatch()

    def _dispatch(self) -> None:
        # ``succeed`` only schedules kernel events — callbacks run later,
        # from the kernel loop — so no new puts or gets can arrive while
        # this method runs.  That licenses a single rotation pass over
        # the waiting gets instead of the old rebuild-the-deque scan
        # per call, which at broker scale was the single largest cost in
        # the whole stack (O(waiting gets) per put, plus a full re-scan
        # whenever anything progressed).
        items = self.items
        puts = self._puts
        gets = self._gets
        sim = self.sim
        queue = sim._queue
        # ``evt.succeed(value)`` inlined below: these events were created
        # un-triggered moments ago and are only ever triggered here, so
        # the already-triggered guard, the re-schedule guard, and two
        # Python calls per delivery are pure overhead at broker volume.
        while True:
            # Admit pending puts while there is room.
            if puts:
                capacity = self.capacity
                while puts and len(items) < capacity:
                    put = puts.popleft()
                    items.append(put.item)
                    put._ok = True
                    put._value = None
                    put._scheduled = True
                    sim._seq = seq = sim._seq + 1
                    heappush(queue, (sim._now, PRIORITY_NORMAL, seq, put))
            # Serve waiting gets in one FIFO pass: unserved gets are
            # re-appended behind the not-yet-examined ones, and a final
            # rotate restores original order when items run out early.
            served = False
            if gets:
                n = len(gets)
                while n:
                    if not items:
                        # Nothing can match an empty store (filtered or
                        # not): put the n unexamined gets back behind the
                        # re-appended unserved ones in original order.
                        gets.rotate(-n)
                        break
                    n -= 1
                    get = gets.popleft()
                    if get._value is not PENDING:  # cancelled/raced
                        continue
                    filt = get.filter
                    if filt is None:
                        matched = self._pop_next()
                    else:
                        for i, item in enumerate(items):
                            if filt(item):
                                del items[i]
                                matched = item
                                break
                        else:
                            gets.append(get)
                            continue
                    get._ok = True
                    get._value = matched
                    get._scheduled = True
                    sim._seq = seq = sim._seq + 1
                    heappush(queue, (sim._now, PRIORITY_NORMAL, seq, get))
                    served = True
            # Served gets can only open room for a bounded store's pending
            # puts; loop again only when both sides can still progress.
            if not (served and puts):
                return


class Container:
    """A continuous quantity (e.g. bytes) with blocking put/get."""

    __slots__ = ("sim", "capacity", "level", "_puts", "_gets")

    def __init__(self, sim, capacity: float = float("inf"), init: float = 0.0):
        if init < 0 or init > capacity:
            raise ValueError("init must be within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.level = float(init)
        self._puts: Deque = deque()
        self._gets: Deque = deque()

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("amount must be > 0")
        evt = Event(self.sim)
        self._puts.append((evt, amount))
        self._dispatch()
        return evt

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("amount must be > 0")
        evt = Event(self.sim)
        self._gets.append((evt, amount))
        self._dispatch()
        return evt

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._puts:
                evt, amount = self._puts[0]
                if self.level + amount <= self.capacity:
                    self._puts.popleft()
                    self.level += amount
                    evt.succeed()
                    progressed = True
            if self._gets:
                evt, amount = self._gets[0]
                if amount <= self.level:
                    self._gets.popleft()
                    self.level -= amount
                    evt.succeed()
                    progressed = True
