"""Chaos regression: worker crash while holding warm-pool containers.

A crashing worker must not leak its parked (warm) containers into the
engine's live count, and the jobs it was holding must be redelivered to
surviving workers — the warm pool cannot weaken the at-least-once
recovery path it sits on top of.
"""

import pytest

from repro.core.config import WorkerConfig
from repro.core.job import JobStatus
from repro.core.system import RaiSystem

pytestmark = pytest.mark.chaos

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


def warm_config() -> WorkerConfig:
    return WorkerConfig(max_concurrent_jobs=2, warm_pool_size=2)


class TestCrashWithPooledContainers:
    def test_pooled_containers_destroyed_on_crash(self):
        """After a job parks its container and the worker crashes, the
        engine's live count drops to zero — nothing leaks."""
        system = RaiSystem.standard(num_workers=1, seed=21,
                                    worker_config=warm_config())
        victim = system.workers[0]
        client = system.new_client(team="t")
        client.stage_project(FILES)
        result = system.run(system.sim.process(client.submit()))
        assert result.status is JobStatus.SUCCEEDED
        # The finished job parked its container for the next one.
        assert victim.pool.pooled_count == 1
        assert victim.runtime.live_count == 1
        victim.crash()
        assert victim.pool.pooled_count == 0
        assert victim.runtime.live_count == 0
        assert victim.pool.stats()["closed"] is True

    def test_in_flight_release_after_crash_destroys(self):
        """A job still executing when its worker crashes must not park
        its container into the dead worker's pool."""
        system = RaiSystem.standard(num_workers=1, seed=22,
                                    worker_config=warm_config())
        victim = system.workers[0]
        client = system.new_client(team="t")
        client.stage_project(FILES)
        system.sim.process(client.submit())

        def chaos(sim):
            yield sim.timeout(8.0)
            assert victim.active_jobs == 1
            victim.crash()

        system.run(system.sim.process(chaos(system.sim)))
        system.run(until=system.sim.now + 60.0)
        assert victim.pool.pooled_count == 0
        assert victim.runtime.live_count == 0

    def test_queued_jobs_redelivered_to_survivor(self):
        """Jobs queued behind the crashed worker's un-acked message are
        redelivered via the caretaker and finish on the replacement."""
        system = RaiSystem.standard(num_workers=1, seed=23,
                                    worker_config=warm_config())
        system.start_caretaker(interval=30.0, in_flight_timeout=600.0)
        victim = system.workers[0]
        client = system.new_client(team="resilient")
        client.stage_project(FILES)
        job_proc = system.sim.process(client.submit())

        def chaos(sim):
            yield sim.timeout(5.0)
            assert victim.active_jobs == 1
            victim.crash()
            yield sim.timeout(60.0)
            system.add_worker(warm_config())

        system.sim.process(chaos(system.sim))
        result = system.run(job_proc)
        assert result.status is JobStatus.SUCCEEDED
        assert result.worker_id != victim.id
        # No container leaked anywhere: the victim's engine is empty and
        # the survivor holds only its parked warm container.
        assert victim.runtime.live_count == 0
        survivor = system.workers[-1]
        assert survivor.runtime.live_count == survivor.pool.pooled_count

    def test_fleet_hit_rate_survives_a_crash(self):
        """fleet_pool_hit_rate stays computable (no ZeroDivision, no
        dead-worker skew) after one of two workers crashes."""
        system = RaiSystem.standard(num_workers=2, seed=24,
                                    worker_config=warm_config())
        client = system.new_client(team="t")
        client.stage_project(FILES)
        result = system.run(system.sim.process(client.submit()))
        assert result.status is JobStatus.SUCCEEDED
        system.workers[0].crash()
        assert 0.0 <= system.fleet_pool_hit_rate() <= 1.0
