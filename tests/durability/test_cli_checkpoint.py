"""``rai checkpoint`` / ``rai restore`` round trip through the CLI."""

import pytest

from repro.core.cli import RaiCLI

pytestmark = pytest.mark.durability


class TestCheckpointRestoreCli:
    def test_round_trip(self, system, client, tmp_path):
        cli = RaiCLI(system, client)
        out = cli.run_command("rai run")
        assert "succeeded" in out

        out = cli.run_command(f"rai checkpoint {tmp_path / 'dur'}")
        assert "checkpoint written" in out
        assert "1 documents" in out

        # A second bare checkpoint compacts into the attached directory.
        out = cli.run_command("rai checkpoint")
        assert "checkpoint written" in out

        old_system = cli.system
        old_now = old_system.sim.now
        old_system.crash_stop()
        out = cli.run_command(f"rai restore {tmp_path / 'dur'} 2")
        assert "restored deployment" in out
        assert cli.system is not old_system
        assert cli.system.sim.now == pytest.approx(old_now)

        # Same student keys, same history: ranking sees the old run and
        # a new submission works on the restored deployment.
        assert len(cli.system.db.collection("submissions")) == 1
        cli.client.stage_project({
            "main.cu": "// @rai-sim quality=0.8 impl=analytic\nint main(){}\n",
            "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
        })
        out = cli.run_command("rai run")
        assert "succeeded" in out
        assert len(cli.system.db.collection("submissions")) == 2

    def test_checkpoint_requires_directory(self, system, client):
        cli = RaiCLI(system, client)
        out = cli.run_command("rai checkpoint")
        assert "no durability directory" in out

    def test_restore_usage(self, system, client):
        cli = RaiCLI(system, client)
        assert cli.run_command("rai restore").startswith("usage:")
        assert cli.run_command("rai restore /tmp/x nope").startswith("usage:")

    def test_help_lists_new_verbs(self, system, client):
        cli = RaiCLI(system, client)
        help_text = cli.run_command("rai help")
        assert "checkpoint" in help_text and "restore" in help_text
