"""Kernel-scale workload: the event storm that stresses ``repro.sim`` itself.

Every other workload in this package measures the *system under test* —
dedup uploads, warm pools, SLO loops.  This one measures the simulator:
at semester scale the event calendar, the broker's per-delivery object
churn, and the metrics/event-log hot paths become the bottleneck, so the
kernel needs its own standing regression bench (the Ray observation:
serving millions of tasks is a fight against per-task overhead).

Two layers:

- **Sub-benches** (`bench_event_loop`, `bench_broker`, `bench_obs`,
  `bench_docdb`) isolate one subsystem each, so a regression report can
  attribute a slowdown to the kernel, the broker, the observability
  plane, or the document store.
- **The tier ladder** (`run_kernel_workload`) drives the real
  student → broker → worker → docdb path with every heavyweight
  component (containers, storage, buildspecs) stripped away: tens of
  thousands of student processes publishing through one genuine
  topic/channel to competing worker slots, with metrics, the event log,
  and sampled docdb records on the side.  The ``giant`` tier — 10,000
  students, 1,000,000 submissions — completes in minutes and is the
  scale at which ``BENCH_kernel.json`` tracks throughput.

Determinism is part of the contract: every run folds its delivery order
into a SHA-256 digest (`KernelResult.trace_digest`), and the golden-trace
test asserts two same-seed runs produce identical digests — the guard
that kernel optimizations never trade away reproducibility.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.broker.broker import MessageBroker
from repro.broker.client import Consumer
from repro.broker.message import reset_message_ids
from repro.docdb.database import DocumentDB
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator

#: Latency buckets matched to the sub-minute service times this workload
#: simulates (the default registry buckets start at 100 ms and would put
#: every observation in the first two buckets).
_LATENCY_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
                    60.0, 300.0)


@dataclass(frozen=True)
class KernelScale:
    """One operating point of the kernel tier ladder."""

    name: str
    n_students: int
    n_submissions: int          # total across the whole class
    n_workers: int
    worker_slots: int = 4
    #: Record one in N completions to docdb (a full 1M-document insert
    #: would measure memory allocation, not the kernel).
    docdb_sample: int = 16
    #: Mean think time between one student's submissions (sim seconds).
    mean_think_s: float = 60.0
    #: Mean per-submission service time at a worker slot (sim seconds).
    mean_service_s: float = 0.2


SMOKE_TIER = KernelScale("smoke", n_students=50, n_submissions=2_000,
                         n_workers=2)
SMALL_TIER = KernelScale("small", n_students=500, n_submissions=20_000,
                         n_workers=4)
MEDIUM_TIER = KernelScale("medium", n_students=2_000, n_submissions=100_000,
                          n_workers=8)
LARGE_TIER = KernelScale("large", n_students=5_000, n_submissions=300_000,
                         n_workers=16)
#: The paper's course was 176 students / ~40k submissions; this is the
#: "every course on campus at once" tier the ROADMAP names.
GIANT_TIER = KernelScale("giant", n_students=10_000,
                         n_submissions=1_000_000, n_workers=32)

LADDER = (SMALL_TIER, MEDIUM_TIER, LARGE_TIER)


@dataclass
class KernelResult:
    """What one tier run reports back to the bench."""

    scale: KernelScale
    obs_enabled: bool
    submissions: int
    wall_s: float
    sim_duration_s: float
    kernel_events: int
    trace_digest: str
    latency_p50: float
    latency_p95: float
    events_emitted: int
    docdb_docs: int
    message_pool_stats: Optional[dict] = None

    @property
    def events_per_s(self) -> float:
        return self.kernel_events / self.wall_s if self.wall_s else 0.0

    @property
    def submissions_per_s(self) -> float:
        return self.submissions / self.wall_s if self.wall_s else 0.0

    def to_dict(self) -> dict:
        return {
            "scale": {"name": self.scale.name,
                      "n_students": self.scale.n_students,
                      "n_submissions": self.scale.n_submissions,
                      "n_workers": self.scale.n_workers},
            "obs_enabled": self.obs_enabled,
            "submissions": self.submissions,
            "wall_s": round(self.wall_s, 3),
            "sim_duration_s": round(self.sim_duration_s, 1),
            "kernel_events": self.kernel_events,
            "events_per_s": round(self.events_per_s),
            "submissions_per_s": round(self.submissions_per_s),
            "latency_s": {"p50": round(self.latency_p50, 4),
                          "p95": round(self.latency_p95, 4)},
            "obs_events_emitted": self.events_emitted,
            "docdb_docs": self.docdb_docs,
            "trace_digest": self.trace_digest,
            "message_pool": self.message_pool_stats,
        }


class _ChunkedExponential:
    """Amortised exponential draws: one numpy array refill per 4096 draws.

    Per-scalar ``Generator.exponential`` calls cost ~1 µs each; at a
    million submissions that is pure harness overhead, so workers draw
    service times in bulk.  Chunking changes *when* numbers are drawn
    but not their sequence, so determinism is unaffected.
    """

    __slots__ = ("rng", "mean", "_chunk", "_buf", "_i")

    def __init__(self, rng: np.random.Generator, mean: float,
                 chunk: int = 4096):
        self.rng = rng
        self.mean = mean
        self._chunk = chunk
        # ``.tolist()`` up front: handing np.float64 scalars to the kernel
        # makes every simulated timestamp a numpy scalar, which slows heap
        # comparisons stack-wide.  Conversion is exact, so determinism is
        # unaffected.
        self._buf = rng.exponential(mean, size=chunk).tolist()
        self._i = 0

    def next(self) -> float:
        i = self._i
        buf = self._buf
        if i >= len(buf):
            buf = self._buf = self.rng.exponential(
                self.mean, size=self._chunk).tolist()
            i = 0
        self._i = i + 1
        return buf[i]


def run_kernel_workload(scale: KernelScale, seed: int = 408,
                        obs: bool = True) -> KernelResult:
    """Drive one tier through the real broker path; returns the metrics.

    ``obs=False`` disables the event log and skips per-completion metric
    observations, so the bench can price the observability plane at any
    volume (`overhead = wall_on / wall_off - 1`).
    """
    reset_message_ids()
    wall_start = time.perf_counter()
    sim = Simulator()
    metrics = MetricsRegistry()
    # Ring sized to what an operator actually pages through, and the
    # one seven-figure-volume stream ring-sampled 1:16 — emission counts
    # stay exact (the SLO plane reads those), only the debugging window
    # is thinned.  Together with event recycling this bounds the obs
    # plane's resident working set to well under L2 even at giant-tier
    # heaps.
    events = EventLog(lambda: sim.now, max_events=512, enabled=obs,
                      sample={"job.state_change": 16})
    broker = MessageBroker(sim, metrics=metrics, events=events if obs else None)
    db = DocumentDB(sim, metrics=metrics)
    submissions = db.collection("submissions")
    submissions.create_index("job_id")

    channel = broker.channel("tasks/workers")
    total = scale.n_submissions
    digest = hashlib.sha256()
    latency = metrics.histogram("kernel_submit_latency",
                                buckets=_LATENCY_BUCKETS)
    published = metrics.counter("kernel_submissions_published")
    done = sim.event()
    state = {"completed": 0}

    root = np.random.SeedSequence(seed)
    student_seeds = root.spawn(scale.n_students)
    worker_seed = np.random.SeedSequence(entropy=root.entropy,
                                         spawn_key=(0x57F,))
    worker_rng = np.random.default_rng(worker_seed)

    per_student = total // scale.n_students
    remainder = total - per_student * scale.n_students

    def student(idx: int, n_subs: int):
        rng = np.random.default_rng(student_seeds[idx])
        thinks = rng.exponential(scale.mean_think_s, size=n_subs).tolist()
        timeout = sim.timeout
        publish = broker.publish
        base = idx * (per_student + 1)
        for k in range(n_subs):
            yield timeout(thinks[k])
            publish("tasks", {"j": base + k, "s": idx, "t": sim.now})
            published.inc()

    # Opt-in fan-out-copy recycling: this loop provably drops its message
    # reference after ack, so it may return copies to the broker freelist.
    # Resolved once (None on builds without the pool).
    release = getattr(type(channel), "ack_release", None)

    def worker(wid: int, service: _ChunkedExponential):
        consumer = Consumer(broker, "tasks/workers")
        timeout = sim.timeout
        update = digest.update
        sample = scale.docdb_sample
        observe = latency.observe
        emit = events.emit
        while state["completed"] < total:
            msg = consumer.try_get()
            if msg is None:
                msg = yield consumer.get()
                if msg is None:
                    break
            yield timeout(service.next())
            body = msg.body
            now = sim.now
            n = state["completed"] = state["completed"] + 1
            update(b"%d;%d;%r;%d" % (body["j"], wid, now, msg.attempts))
            if obs:
                observe(now - body["t"])
                # ``at=now`` skips the log's clock() indirection — the
                # loop already has the timestamp in hand.
                emit("job.state_change", at=now, job_id=body["j"],
                     worker=wid, state="finished")
            if n % sample == 0:
                submissions.insert_one({"job_id": body["j"],
                                        "student": body["s"],
                                        "finished_at": now})
            if release is not None:
                release(channel, msg)
            else:
                channel.ack(msg)
            if n >= total:
                done.succeed()
                break
        consumer.close()

    for idx in range(scale.n_students):
        n_subs = per_student + (1 if idx < remainder else 0)
        if n_subs:
            sim.process(student(idx, n_subs))
    for w in range(scale.n_workers * scale.worker_slots):
        sim.process(worker(w, _ChunkedExponential(
            worker_rng, scale.mean_service_s)))

    sim.run(until=done)
    wall = time.perf_counter() - wall_start
    return KernelResult(
        scale=scale,
        obs_enabled=obs,
        submissions=state["completed"],
        wall_s=wall,
        sim_duration_s=sim.now,
        kernel_events=_scheduled_events(sim),
        trace_digest=digest.hexdigest(),
        latency_p50=latency.percentile(50),
        latency_p95=latency.percentile(95),
        events_emitted=events.total_emitted,
        docdb_docs=len(submissions),
        message_pool_stats=_pool_stats(),
    )


def _scheduled_events(sim) -> int:
    """Total events ``sim`` ever scheduled, on either kernel generation.

    The optimized kernel exposes :attr:`Simulator.scheduled_events`; the
    pre-PR kernel kept an ``itertools.count`` tiebreaker, whose next value
    is recoverable from its pickle form without consuming it — so the
    baseline capture can report real event counts from unmodified code.
    """
    n = getattr(sim, "scheduled_events", None)
    if n is not None:
        return n
    seq = getattr(sim, "_seq", None)
    if seq is None:
        return 0
    try:
        return int(seq.__reduce__()[1][0])
    except Exception:
        return 0


def _pool_stats() -> Optional[dict]:
    """Fan-out-copy freelist stats, when the broker exposes one."""
    try:
        from repro.broker.message import message_pool
    except ImportError:
        return None
    return message_pool.stats()


# -- per-subsystem sub-benches -------------------------------------------------


def bench_event_loop(n_events: int = 200_000, n_procs: int = 200,
                     seed: int = 7) -> dict:
    """Pure kernel throughput: timeout cascades, no payload work.

    The event count here is structural — ``n_procs`` bootstraps, one
    Timeout per yield, one completion per process — so pre- and
    post-optimization runs process the *same* number of events and the
    events/sec ratio is a clean kernel speedup.
    """
    sim = Simulator()
    rng = np.random.default_rng(seed)
    per_proc = n_events // n_procs

    def cascade(delays):
        timeout = sim.timeout
        for d in delays:
            yield timeout(d)

    wall_start = time.perf_counter()
    for p in range(n_procs):
        sim.process(cascade(rng.exponential(1.0, size=per_proc).tolist()))
    sim.run()
    wall = time.perf_counter() - wall_start
    # Timeouts + one bootstrap and one completion event per process.
    events = n_procs * per_proc + 2 * n_procs
    return {"events": events, "wall_s": round(wall, 3),
            "events_per_s": round(events / wall)}


def bench_broker(n_messages: int = 100_000, n_consumers: int = 8,
                 seed: int = 7) -> dict:
    """Publish → fan-out → deliver → ack churn through one real channel."""
    reset_message_ids()
    sim = Simulator()
    broker = MessageBroker(sim)
    rng = np.random.default_rng(seed)
    state = {"done": 0}
    finished = sim.event()

    def producer(gaps):
        timeout = sim.timeout
        publish = broker.publish
        for i in range(n_messages):
            yield timeout(gaps[i])
            publish("bench", {"i": i})

    channel = broker.channel("bench/c")
    release = getattr(type(channel), "ack_release", None)

    def consumer_proc():
        consumer = Consumer(broker, "bench/c")
        while state["done"] < n_messages:
            msg = consumer.try_get()
            if msg is None:
                msg = yield consumer.get()
                if msg is None:
                    break
            if release is not None:
                release(channel, msg)
            else:
                channel.ack(msg)
            state["done"] += 1
            if state["done"] >= n_messages:
                finished.succeed()
                break
        consumer.close()

    wall_start = time.perf_counter()
    sim.process(producer(rng.exponential(0.01, size=n_messages).tolist()))
    for _ in range(n_consumers):
        sim.process(consumer_proc())
    sim.run(until=finished)
    wall = time.perf_counter() - wall_start
    return {"messages": n_messages, "wall_s": round(wall, 3),
            "messages_per_s": round(n_messages / wall)}


def bench_obs(n_ops: int = 200_000) -> dict:
    """Nanoseconds per operation on the three obs hot paths."""
    metrics = MetricsRegistry()
    counter = metrics.counter("bench_counter")
    hist = metrics.histogram("bench_hist")
    log_on = EventLog(lambda: 0.0, max_events=1024, enabled=True)
    log_off = EventLog(lambda: 0.0, max_events=1024, enabled=False)

    def timed(fn) -> float:
        start = time.perf_counter()
        for i in range(n_ops):
            fn(i)
        return (time.perf_counter() - start) / n_ops * 1e9

    from repro.obs.metrics import CounterGroup
    group = CounterGroup(metrics, prefix="bench_")
    return {
        "ops": n_ops,
        "counter_inc_ns": round(timed(lambda i: counter.inc())),
        "counter_group_incr_ns": round(timed(lambda i: group.incr("grouped"))),
        "histogram_observe_ns": round(timed(lambda i: hist.observe(i % 512))),
        "event_emit_ns": round(timed(
            lambda i: log_on.emit("bench.tick", job_id=i))),
        "event_emit_disabled_ns": round(timed(
            lambda i: log_off.emit("bench.tick", job_id=i))),
    }


def bench_docdb(n_docs: int = 50_000, n_probes: int = 20_000,
                seed: int = 7) -> dict:
    """Indexed insert and point-probe throughput."""
    db = DocumentDB()
    coll = db.collection("bench")
    coll.create_index("job_id")
    rng = np.random.default_rng(seed)

    start = time.perf_counter()
    for i in range(n_docs):
        coll.insert_one({"job_id": i, "team": i & 63, "x": float(i)})
    insert_wall = time.perf_counter() - start

    probe_ids = rng.integers(0, n_docs, size=n_probes)
    start = time.perf_counter()
    for jid in probe_ids:
        coll.find_one({"job_id": int(jid)})
    probe_wall = time.perf_counter() - start
    return {
        "docs": n_docs,
        "inserts_per_s": round(n_docs / insert_wall),
        "probes_per_s": round(n_probes / probe_wall),
    }


__all__ = [
    "KernelScale", "KernelResult",
    "SMOKE_TIER", "SMALL_TIER", "MEDIUM_TIER", "LARGE_TIER", "GIANT_TIER",
    "LADDER", "run_kernel_workload",
    "bench_event_loop", "bench_broker", "bench_obs", "bench_docdb",
]
