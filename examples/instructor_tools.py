#!/usr/bin/env python
"""Instructor utilities end to end (§VI + §VII "RAI Client Delivery").

1. Parse a class roster and email every student their RAI credentials
   (Listing 3's template, through the recorded outbox).
2. Configure master/devel branches, run the continuous builder across the
   10-target matrix, and render the Figure 3 download page.
3. A student reports a bug against an embedded commit id — bisect the
   history to find the regression.

Run:  python examples/instructor_tools.py
"""

from repro.auth import KeyMailer, KeyStore, parse_profile, parse_roster
from repro.release import ContinuousBuilder, DownloadPage, find_regression
from repro.sim import Simulator
from repro.storage import ObjectStore

ROSTER_CSV = """\
firstname,lastname,userid
Ada,Lovelace,alovelace
Alan,Turing,aturing
Grace,Hopper,ghopper
Edsger,Dijkstra,edijkstra
"""


def main() -> None:
    # --- 1. keys from the roster ---------------------------------------
    print("=== issuing credentials from the roster ===")
    roster = parse_roster(ROSTER_CSV)
    keystore = KeyStore()
    mailer = KeyMailer(keystore)
    teams = {"alovelace": "team-analytical", "aturing": "team-analytical",
             "ghopper": "team-compilers", "edijkstra": "team-compilers"}
    mailer.send_keys(roster, teams=teams)
    print(f"emails sent: {len(mailer.outbox)}")
    sample = mailer.outbox.messages[0]
    print(f"\n--- email to {sample.to} ---")
    print(sample.body)

    # The emailed block is a working .rai.profile:
    profile_lines = "\n".join(l for l in sample.body.splitlines()
                              if l.startswith("RAI_"))
    profile = parse_profile(profile_lines)
    keystore.verify_pair(profile.access_key, profile.secret_key)
    print("(verified: the emailed tokens authenticate)")

    # --- 2. client delivery ---------------------------------------------
    print("\n=== continuous builds and the download page (Figure 3) ===")
    storage = ObjectStore(Simulator())
    builder = ContinuousBuilder(storage=storage)
    builder.devel.commit("initial import")
    builder.devel.commit("add `rai ranking`")
    builder.master.merge_from(builder.devel)
    builder.devel.commit("refactor uploader")          # fine
    bad = builder.devel.commit("optimize tar writer")  # oops
    builder.devel.commits[-1] = type(bad)(
        sha=bad.sha, message=bad.message, author=bad.author,
        introduces_bug=True)
    builder.devel.commit("tweak progress bar")
    builder.build_all(build_date="2016-11-20T04:00:00Z")
    print(DownloadPage(builder).render())
    print(f"binaries published: {storage.total_objects}")

    # --- 3. regression bisection ----------------------------------------
    print("\n=== bug report: 'uploads hang on devel build', bisecting ===")
    commits = builder.devel.commits

    def is_bad(commit):
        idx = commits.index(commit)
        return any(c.introduces_bug for c in commits[: idx + 1])

    culprit = find_regression(commits, is_bad)
    print(f"first bad commit: {culprit.sha} ({culprit.message!r})")
    print("(students report the commit id their binary embeds — §VII)")


if __name__ == "__main__":
    main()
