"""Version and build stamping.

The paper (§VII, "RAI Client Delivery") embeds the commit version and build
date inside every client binary so that bug reports can be mapped to the
commit that introduced a regression.  We reproduce that mechanism: the
release pipeline (:mod:`repro.release`) stamps builds with this metadata.
"""

from __future__ import annotations

__version__ = "1.0.0"

#: Default metadata embedded in "built" clients when the release pipeline
#: has not stamped anything more specific.
_BUILD_INFO = {
    "version": __version__,
    "branch": "master",
    "commit": "0000000",
    "build_date": "1970-01-01T00:00:00Z",
}


def build_info() -> dict:
    """Return a copy of the embedded build metadata."""
    return dict(_BUILD_INFO)
