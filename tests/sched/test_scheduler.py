"""Fair-share scheduler policy: DRR, deadline band, SJF, wait EWMA."""

import pytest

from repro.broker.message import Message
from repro.sched import JobScheduler, RuntimeEstimator, SchedulerPolicy

pytestmark = pytest.mark.sched


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def msg(team: str, t: float = 0.0) -> Message:
    return Message("rai", {"team": team}, timestamp=t)


@pytest.fixture
def clock():
    return FakeClock()


def drain(sched: JobScheduler, items: list) -> list:
    """Dequeue everything through select(), returning the team order."""
    order = []
    queue = list(items)
    while queue:
        index = sched.select(queue)
        picked = queue.pop(index)
        sched.note_dispatch(picked)
        order.append(picked.body["team"])
    return order


class TestPolicyValidation:
    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            SchedulerPolicy(quantum_seconds=0)
        with pytest.raises(ValueError):
            SchedulerPolicy(deficit_cap_seconds=-1)
        with pytest.raises(ValueError):
            SchedulerPolicy(wait_ewma_alpha=0.0)
        with pytest.raises(ValueError):
            SchedulerPolicy(wait_ewma_half_life=0)


class TestDeficitRoundRobin:
    def test_flooding_team_cannot_starve_others(self, clock):
        sched = JobScheduler(clock)
        # 10 queued jobs from the storm, one each from two quiet teams
        # (queued later — FIFO would serve them last).
        items = [msg("storm", t=i * 0.1) for i in range(10)]
        items += [msg("quiet-a", t=5.0), msg("quiet-b", t=5.0)]
        order = drain(sched, items)
        # Both quiet teams dispatch within the first few picks, not after
        # the storm drains.
        assert order.index("quiet-a") < 4
        assert order.index("quiet-b") < 4
        assert set(order[-6:]) == {"storm"}

    def test_single_team_degrades_to_fifo(self, clock):
        sched = JobScheduler(clock)
        items = [msg("only", t=float(i)) for i in range(4)]
        first = items[0]
        assert items[sched.select(items)] is first

    def test_round_robin_across_equal_teams(self, clock):
        sched = JobScheduler(clock)
        items = [msg("a"), msg("a"), msg("b"), msg("b")]
        order = drain(sched, items)
        # Equal costs and quanta: strict alternation.
        assert order == ["a", "b", "a", "b"]

    def test_unkeyed_bodies_share_anonymous_bucket(self, clock):
        sched = JobScheduler(clock)
        items = [Message("rai", "not-a-dict", timestamp=0.0),
                 Message("rai", {"n": 1}, timestamp=0.0)]
        index = sched.select(items)
        assert index == 0          # FIFO within the anonymous bucket

    def test_departed_team_deficit_pruned(self, clock):
        sched = JobScheduler(clock)
        drain(sched, [msg("a"), msg("b")])
        # Both teams have left the queue entirely.
        sched.select([msg("c"), msg("c"), msg("d")])
        assert "a" not in sched._deficits
        assert "b" not in sched._deficits


class TestDeadlineBand:
    def policy(self):
        return SchedulerPolicy(deadline_at=1000.0,
                               deadline_window_seconds=100.0)

    def test_boosted_jobs_dequeue_first(self, clock):
        sched = JobScheduler(clock, policy=self.policy())
        early = msg("early", t=10.0)          # outside the window
        boosted = msg("cramming", t=950.0)    # inside [900, 1000]
        assert sched.select([early, boosted]) == 1

    def test_drr_applies_within_the_band(self, clock):
        sched = JobScheduler(clock, policy=self.policy())
        items = [msg("storm", t=900.0 + i) for i in range(6)]
        items.append(msg("other", t=950.0))
        order = drain(sched, items)
        assert order.index("other") < 3

    def test_after_deadline_no_boost(self, clock):
        sched = JobScheduler(clock, policy=self.policy())
        late = msg("late", t=1500.0)          # past the deadline
        early = msg("early", t=10.0)
        # Neither is in the band: plain FIFO order.
        assert sched.select([early, late]) == 0

    def test_boost_counted(self, clock):
        sched = JobScheduler(clock, policy=self.policy())
        sched.note_dispatch(msg("cramming", t=950.0))
        sched.note_dispatch(msg("early", t=10.0))
        assert sched.total_boosted == 1
        assert sched.total_dispatched == 2


class TestShortestJobFirst:
    def test_faster_team_wins_ties(self, clock):
        estimator = RuntimeEstimator(default_seconds=30.0)
        estimator.observe("slow", 60.0)
        estimator.observe("fast", 5.0)
        sched = JobScheduler(clock, estimator=estimator)
        items = [msg("slow"), msg("fast")]
        assert sched.select(items) == 1

    def test_completion_feedback_reorders(self, clock):
        sched = JobScheduler(clock)
        sched.note_completion("a", 120.0)
        sched.note_completion("b", 2.0)
        assert sched.select([msg("a"), msg("b")]) == 1

    def test_cost_clamped_by_deficit_cap(self, clock):
        policy = SchedulerPolicy(deficit_cap_seconds=50.0)
        estimator = RuntimeEstimator()
        estimator.observe("huge", 10_000.0)
        sched = JobScheduler(clock, policy=policy, estimator=estimator)
        # An arbitrarily slow team must still become eligible (its cost
        # is clamped to the cap, which deficits can reach).
        order = drain(sched, [msg("huge"), msg("huge"), msg("tiny")])
        assert order.count("huge") == 2


class TestWaitEwma:
    def test_tracks_waits_and_decays_when_idle(self, clock):
        policy = SchedulerPolicy(wait_ewma_alpha=0.5,
                                 wait_ewma_half_life=100.0)
        sched = JobScheduler(clock, policy=policy)
        clock.now = 40.0
        sched.note_dispatch(msg("a", t=0.0))     # 40s wait
        assert sched.wait_ewma() == pytest.approx(20.0)
        clock.now = 140.0                        # one half-life idle
        assert sched.wait_ewma() == pytest.approx(10.0)

    def test_fresh_scheduler_reports_zero(self, clock):
        assert JobScheduler(clock).wait_ewma() == 0.0

    def test_wait_stats_per_team(self, clock):
        sched = JobScheduler(clock)
        clock.now = 10.0
        sched.note_dispatch(msg("a", t=0.0))
        sched.note_dispatch(msg("b", t=8.0))
        stats = sched.wait_stats()
        assert stats["teams"]["a"]["mean_wait"] == pytest.approx(10.0)
        assert stats["teams"]["b"]["mean_wait"] == pytest.approx(2.0)
        assert stats["global_mean_wait"] == pytest.approx(6.0)
        assert stats["dispatched"] == 2


class TestEstimator:
    def test_seeded_from_history_on_first_sight(self):
        estimator = RuntimeEstimator(
            history_fn=lambda key: [10.0, 10.0, 10.0])
        assert estimator.expected("seeded") == pytest.approx(10.0)

    def test_history_errors_fall_back_to_default(self):
        def explode(key):
            raise RuntimeError("docdb down")

        estimator = RuntimeEstimator(history_fn=explode,
                                     default_seconds=42.0)
        assert estimator.expected("x") == 42.0

    def test_junk_history_samples_skipped(self):
        estimator = RuntimeEstimator(
            history_fn=lambda key: [None, "nan?", -5.0, 8.0])
        assert estimator.expected("x") == pytest.approx(8.0)

    def test_observation_ewma(self):
        estimator = RuntimeEstimator(alpha=0.5)
        estimator.observe("t", 10.0)
        estimator.observe("t", 20.0)
        assert estimator.expected("t") == pytest.approx(15.0)
        assert estimator.known_keys() == ["t"]

    def test_negative_observation_ignored(self):
        estimator = RuntimeEstimator()
        estimator.observe("t", -1.0)
        assert estimator.expected("t") == estimator.default_seconds
