"""Coreutils-flavoured guest commands."""

from __future__ import annotations

from typing import List

from repro.container.commands import register_command
from repro.container.commands.base import GuestCommand
from repro.errors import ReadOnlyFilesystem, VfsError
from repro.vfs.path import join as path_join

#: Simulated cost of a trivial process spawn.
TRIVIAL_SECONDS = 0.002


class Echo(GuestCommand):
    name = "echo"

    def run(self, ctx, args: List[str]) -> int:
        ctx.charge(TRIVIAL_SECONDS)
        newline = True
        if args and args[0] == "-n":
            newline = False
            args = args[1:]
        ctx.write_out(" ".join(args) + ("\n" if newline else ""))
        return 0


class Cat(GuestCommand):
    name = "cat"

    def run(self, ctx, args: List[str]) -> int:
        ctx.charge(TRIVIAL_SECONDS)
        if not args:
            return 0
        code = 0
        for arg in args:
            path = path_join(ctx.cwd, arg)
            if not ctx.fs.isfile(path):
                ctx.write_err(f"cat: {arg}: No such file or directory\n")
                code = 1
                continue
            data = ctx.fs.read_file(path)
            try:
                ctx.write_out(data.decode("utf-8"))
            except UnicodeDecodeError:
                ctx.write_out(data.decode("latin-1"))
        return code


class Ls(GuestCommand):
    name = "ls"

    def run(self, ctx, args: List[str]) -> int:
        ctx.charge(TRIVIAL_SECONDS)
        targets = [a for a in args if not a.startswith("-")] or ["."]
        long_format = any(a in ("-l", "-la", "-al") for a in args)
        code = 0
        for target in targets:
            path = path_join(ctx.cwd, target)
            if ctx.fs.isdir(path):
                for name in ctx.fs.listdir(path):
                    if long_format:
                        child = path_join(path, name)
                        st = ctx.fs.stat(child)
                        size = st.get("size", 0)
                        kind = "d" if st["type"] == "dir" else "-"
                        ctx.write_out(f"{kind} {size:>10} {name}\n")
                    else:
                        ctx.write_out(name + "\n")
            elif ctx.fs.isfile(path):
                ctx.write_out(target + "\n")
            else:
                ctx.write_err(f"ls: cannot access '{target}'\n")
                code = 2
        return code


class Cp(GuestCommand):
    name = "cp"

    def run(self, ctx, args: List[str]) -> int:
        ctx.charge(TRIVIAL_SECONDS)
        recursive = False
        positional = []
        for arg in args:
            if arg in ("-r", "-R", "-a", "-rf"):
                recursive = True
            elif not arg.startswith("-"):
                positional.append(arg)
        if len(positional) < 2:
            ctx.write_err("cp: missing file operand\n")
            return 1
        *sources, dest = positional
        dest_path = path_join(ctx.cwd, dest)
        code = 0
        for src in sources:
            src_path = path_join(ctx.cwd, src)
            if ctx.fs.isdir(src_path) and not recursive:
                ctx.write_err(f"cp: -r not specified; omitting directory '{src}'\n")
                code = 1
                continue
            if not ctx.fs.exists(src_path):
                ctx.write_err(f"cp: cannot stat '{src}': No such file or directory\n")
                code = 1
                continue
            try:
                # Charge proportional to bytes copied (5 GB/s page-cache rate).
                size = (ctx.fs.tree_size(src_path) if ctx.fs.isdir(src_path)
                        else ctx.fs.stat(src_path)["size"])
                ctx.charge(size / 5e9)
                ctx.fs.copy(src_path, dest_path)
            except VfsError as exc:
                ctx.write_err(f"cp: {exc}\n")
                code = 1
        return code


class Mv(GuestCommand):
    name = "mv"

    def run(self, ctx, args: List[str]) -> int:
        ctx.charge(TRIVIAL_SECONDS)
        positional = [a for a in args if not a.startswith("-")]
        if len(positional) != 2:
            ctx.write_err("mv: expected source and destination\n")
            return 1
        src, dest = (path_join(ctx.cwd, p) for p in positional)
        if not ctx.fs.exists(src):
            ctx.write_err(f"mv: cannot stat '{positional[0]}'\n")
            return 1
        try:
            ctx.fs.move(src, dest)
        except VfsError as exc:
            ctx.write_err(f"mv: {exc}\n")
            return 1
        return 0


class Rm(GuestCommand):
    name = "rm"

    def run(self, ctx, args: List[str]) -> int:
        ctx.charge(TRIVIAL_SECONDS)
        recursive = force = False
        positional = []
        for arg in args:
            if arg.startswith("-"):
                recursive = recursive or "r" in arg or "R" in arg
                force = force or "f" in arg
            else:
                positional.append(arg)
        code = 0
        for target in positional:
            path = path_join(ctx.cwd, target)
            try:
                if ctx.fs.isdir(path):
                    if not recursive:
                        ctx.write_err(f"rm: cannot remove '{target}': Is a directory\n")
                        code = 1
                        continue
                    ctx.fs.rmtree(path)
                elif ctx.fs.isfile(path):
                    ctx.fs.remove(path)
                elif not force:
                    ctx.write_err(f"rm: cannot remove '{target}': No such file\n")
                    code = 1
            except ReadOnlyFilesystem as exc:
                # -f suppresses "no such file", never permission errors.
                ctx.write_err(f"rm: cannot remove '{target}': "
                              f"Read-only file system\n")
                code = 1
            except VfsError as exc:
                if not force:
                    ctx.write_err(f"rm: {exc}\n")
                    code = 1
        return code


class Mkdir(GuestCommand):
    name = "mkdir"

    def run(self, ctx, args: List[str]) -> int:
        ctx.charge(TRIVIAL_SECONDS)
        parents = "-p" in args
        code = 0
        for target in (a for a in args if not a.startswith("-")):
            path = path_join(ctx.cwd, target)
            try:
                ctx.fs.mkdir(path, parents=parents, exist_ok=parents)
            except VfsError as exc:
                ctx.write_err(f"mkdir: {exc}\n")
                code = 1
        return code


class Touch(GuestCommand):
    name = "touch"

    def run(self, ctx, args: List[str]) -> int:
        ctx.charge(TRIVIAL_SECONDS)
        for target in (a for a in args if not a.startswith("-")):
            path = path_join(ctx.cwd, target)
            if not ctx.fs.exists(path):
                ctx.fs.write_file(path, b"")
        return 0


class Pwd(GuestCommand):
    name = "pwd"

    def run(self, ctx, args: List[str]) -> int:
        ctx.charge(TRIVIAL_SECONDS)
        ctx.write_out(ctx.cwd + "\n")
        return 0


class Env(GuestCommand):
    name = "env"

    def run(self, ctx, args: List[str]) -> int:
        ctx.charge(TRIVIAL_SECONDS)
        for key in sorted(ctx.env):
            ctx.write_out(f"{key}={ctx.env[key]}\n")
        return 0


class Sleep(GuestCommand):
    name = "sleep"

    def run(self, ctx, args: List[str]) -> int:
        try:
            seconds = float(args[0]) if args else 0.0
        except ValueError:
            ctx.write_err(f"sleep: invalid time interval '{args[0]}'\n")
            return 1
        # Sleeping burns container lifetime — this is how the 1-hour cap
        # ablation provokes a timeout.
        ctx.charge(seconds)
        return 0


class Hostname(GuestCommand):
    name = "hostname"

    def run(self, ctx, args: List[str]) -> int:
        ctx.charge(TRIVIAL_SECONDS)
        ctx.write_out(ctx.container.id + "\n")
        return 0


class Wget(GuestCommand):
    """Network clients exist in the image but the sandbox denies them."""

    name = "wget"

    def run(self, ctx, args: List[str]) -> int:
        ctx.charge(TRIVIAL_SECONDS)
        ctx.require_network(purpose=f"wget {' '.join(args)}")
        ctx.write_out("(download simulated)\n")
        return 0


class Curl(Wget):
    name = "curl"


class Wc(GuestCommand):
    name = "wc"

    def run(self, ctx, args: List[str]) -> int:
        ctx.charge(TRIVIAL_SECONDS)
        count_lines = "-l" in args
        code = 0
        for target in (a for a in args if not a.startswith("-")):
            path = path_join(ctx.cwd, target)
            if not ctx.fs.isfile(path):
                ctx.write_err(f"wc: {target}: No such file or directory\n")
                code = 1
                continue
            data = ctx.fs.read_file(path)
            lines = data.count(b"\n")
            if count_lines:
                ctx.write_out(f"{lines} {target}\n")
            else:
                words = len(data.split())
                ctx.write_out(f"{lines} {words} {len(data)} {target}\n")
        return code


class TrueCmd(GuestCommand):
    name = "true"

    def run(self, ctx, args: List[str]) -> int:
        return 0


class FalseCmd(GuestCommand):
    name = "false"

    def run(self, ctx, args: List[str]) -> int:
        return 1


for _cls in (Echo, Cat, Ls, Cp, Mv, Rm, Mkdir, Touch, Pwd, Env, Sleep,
             Hostname, Wget, Curl, Wc, TrueCmd, FalseCmd):
    register_command(_cls())
