"""Event-log + SLO pipeline overhead — full observability ON vs OFF.

Companion to ``bench_obs_overhead.py`` (which prices tracing alone):
this bench prices the rest of the closed loop — structured event
emission from every component, the periodic metrics scrape, and the
per-scrape SLO burn-rate / alert judgment — by running the hot-path
workload at each scale twice:

- **on**: event log enabled (the default) plus the scrape → judge →
  alert loop started via ``start_observability()``;
- **off**: event log disabled, no scrape loop (tracing stays on in
  both runs, so the delta isolates this PR's pipeline).

Asserts the acceptance bar (< 10% overhead at every scale) and writes
``BENCH_obs_pipeline.json`` at the repository root.

Run: ``pytest benchmarks/bench_obs_pipeline.py -s``
"""

import json
import os

from benchmarks.conftest import print_banner
from repro.core.config import SystemConfig
from repro.workload.hotpath import DEFAULT_SCALES, run_hotpath

_OUT_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                         "BENCH_obs_pipeline.json")

_ROUNDS = 3  # min-of-N per side damps scheduler noise


def _run(scale, pipeline_on: bool) -> dict:
    config = SystemConfig(event_log_enabled=pipeline_on)
    return run_hotpath(scale, config=config, observability=pipeline_on)


def _best_pair(scale) -> tuple:
    """Min-of-N for both sides, alternating rounds after an untimed
    warm-up run so neither side systematically pays cold caches."""
    _run(scale, pipeline_on=False)
    on_runs, off_runs = [], []
    for _ in range(_ROUNDS):
        on_runs.append(_run(scale, pipeline_on=True))
        off_runs.append(_run(scale, pipeline_on=False))
    pick = lambda runs: min(runs, key=lambda r: r["wall_clock_s"])  # noqa: E731
    return pick(on_runs), pick(off_runs)


def test_obs_pipeline_overhead(benchmark):
    def run_all_scales():
        rows = []
        for scale in DEFAULT_SCALES:
            on, off = _best_pair(scale)
            on_s, off_s = on["wall_clock_s"], off["wall_clock_s"]
            overhead = (on_s / off_s - 1.0) if off_s > 0 else 0.0
            rows.append({
                "scale": scale.name,
                "submissions": scale.n_students * (scale.n_resubmissions + 1),
                "wall_s_pipeline_on": round(on_s, 4),
                "wall_s_pipeline_off": round(off_s, 4),
                "overhead_pct": round(100 * overhead, 2),
                "events_emitted": on["obs"]["events_emitted"],
                "scrapes": on["obs"]["scrapes"],
                "alerts_fired": on["obs"]["alerts_fired"],
            })
        return rows

    rows = benchmark.pedantic(run_all_scales, rounds=1, iterations=1)

    print_banner("repro.obs — event-log + SLO pipeline overhead "
                 f"(on vs off, min of {_ROUNDS})")
    print(f"{'scale':<10}{'subs':>6}{'events':>8}{'scrapes':>9}"
          f"{'on s':>9}{'off s':>9}{'overhead':>10}")
    for row in rows:
        print(f"{row['scale']:<10}{row['submissions']:>6}"
              f"{row['events_emitted']:>8}{row['scrapes']:>9}"
              f"{row['wall_s_pipeline_on']:>9.3f}"
              f"{row['wall_s_pipeline_off']:>9.3f}"
              f"{row['overhead_pct']:>9.1f}%")

    # The pipeline must actually have run on the "on" side.
    assert all(row["events_emitted"] > 0 for row in rows)
    assert all(row["scrapes"] > 0 for row in rows)

    # --- acceptance bar (ISSUE 5): the loop costs < 10% everywhere ------
    worst = max(row["overhead_pct"] for row in rows)
    print(f"\nworst-case overhead: {worst:.1f}% (budget 10%)")
    assert worst < 10.0

    payload = {
        "bench": "obs_pipeline",
        "source": "benchmarks/bench_obs_pipeline.py",
        "rounds_per_side": _ROUNDS,
        "scales": rows,
    }
    with open(_OUT_PATH, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"\nwrote {_OUT_PATH}")
