"""Unit tests for HMAC request signing."""

import pytest

from repro.auth import sign_request, verify_request
from repro.errors import SignatureMismatch


class TestSigning:
    def test_roundtrip(self):
        sig = sign_request("secret", {"job": 1}, timestamp=100.0)
        verify_request("secret", {"job": 1}, 100.0, sig)

    def test_wrong_secret_fails(self):
        sig = sign_request("secret", {"job": 1}, 100.0)
        with pytest.raises(SignatureMismatch):
            verify_request("other", {"job": 1}, 100.0, sig)

    def test_tampered_payload_fails(self):
        sig = sign_request("secret", {"job": 1}, 100.0)
        with pytest.raises(SignatureMismatch):
            verify_request("secret", {"job": 2}, 100.0, sig)

    def test_tampered_timestamp_fails(self):
        sig = sign_request("secret", {"job": 1}, 100.0)
        with pytest.raises(SignatureMismatch):
            verify_request("secret", {"job": 1}, 101.0, sig)

    def test_key_order_does_not_matter(self):
        sig = sign_request("s", {"a": 1, "b": 2}, 0.0)
        verify_request("s", {"b": 2, "a": 1}, 0.0, sig)

    def test_stale_request_rejected(self):
        sig = sign_request("s", {}, timestamp=0.0)
        with pytest.raises(SignatureMismatch, match="too old"):
            verify_request("s", {}, 0.0, sig, now=7200.0, max_age=3600.0)

    def test_fresh_request_with_now_ok(self):
        sig = sign_request("s", {}, timestamp=1000.0)
        verify_request("s", {}, 1000.0, sig, now=1500.0, max_age=3600.0)
