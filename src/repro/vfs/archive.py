"""Genuine ``.tar.bz2`` packing of virtual-filesystem trees.

The paper's client compresses the project directory into a ``.tar.bz2``
before uploading it to the file server (§V, Client Execution step 3), and
the worker archives ``/build`` the same way on completion (Worker
Operations step 6).  We use the standard-library ``tarfile`` + ``bz2``
codecs over in-memory buffers, so archives produced here are byte-for-byte
valid tarballs that external tools could read.
"""

from __future__ import annotations

import io
import tarfile
from typing import List

from repro.errors import VfsError
from repro.vfs.filesystem import VirtualFileSystem
from repro.vfs.path import normalize, split_parts


def pack_tree(fs: VirtualFileSystem, top: str = "/",
              compression: str = "bz2") -> bytes:
    """Serialise everything under ``top`` into a tar archive.

    Member names are relative to ``top``.  Directories are included so that
    empty directories survive the round trip.
    """
    top = normalize(top)
    mode = "w:bz2" if compression == "bz2" else "w"
    buf = io.BytesIO()
    prefix_len = len(top.rstrip("/")) + 1 if top != "/" else 1
    with tarfile.open(fileobj=buf, mode=mode) as tar:
        for dirpath, dirnames, filenames in fs.walk(top):
            for name in dirnames:
                full = _child(dirpath, name)
                info = tarfile.TarInfo(full[prefix_len:])
                info.type = tarfile.DIRTYPE
                info.mode = 0o755
                info.mtime = int(fs.stat(full)["mtime"])
                tar.addfile(info)
            for name in filenames:
                full = _child(dirpath, name)
                data = fs.read_file(full)
                info = tarfile.TarInfo(full[prefix_len:])
                info.size = len(data)
                st = fs.stat(full)
                info.mtime = int(st["mtime"])
                info.mode = 0o755 if st["executable"] else 0o644
                tar.addfile(info, io.BytesIO(data))
    return buf.getvalue()


def unpack_tree(blob: bytes, fs: VirtualFileSystem, dest: str = "/",
                compression: str = "auto") -> List[str]:
    """Extract an archive into ``fs`` under ``dest``; returns written paths.

    Member names are normalised through the VFS path algebra, so ``..``
    components cannot escape ``dest`` (no tar-slip).  ``compression``
    defaults to auto-detection: the dedup upload path ships plain tars
    (chunks dedup poorly through bz2's positional coding) while build
    outputs stay ``.tar.bz2``, and the consumer should not care.
    """
    dest = normalize(dest)
    mode = _read_mode(compression)
    written: List[str] = []
    try:
        tar = tarfile.open(fileobj=io.BytesIO(blob), mode=mode)
    except tarfile.TarError as exc:
        raise VfsError(f"invalid archive: {exc}") from exc
    with tar:
        for member in tar.getmembers():
            rel = "/" + "/".join(split_parts(member.name))
            target = dest.rstrip("/") + rel if dest != "/" else rel
            if member.isdir():
                fs.makedirs(target)
            elif member.isfile():
                fileobj = tar.extractfile(member)
                data = fileobj.read() if fileobj is not None else b""
                fs.write_file(target, data,
                              executable=bool(member.mode & 0o100))
                written.append(target)
            # symlinks/devices are silently dropped: they have no meaning in
            # the sandbox and are a classic container-escape vector.
    return written


def archive_member_names(blob: bytes, compression: str = "auto") -> List[str]:
    """List member names without extracting (used by submission checks)."""
    mode = _read_mode(compression)
    try:
        with tarfile.open(fileobj=io.BytesIO(blob), mode=mode) as tar:
            return [m.name for m in tar.getmembers()]
    except tarfile.TarError as exc:
        raise VfsError(f"invalid archive: {exc}") from exc


def _read_mode(compression: str) -> str:
    """Map a compression name to a tarfile read mode (``auto`` sniffs)."""
    if compression == "auto":
        return "r:*"
    return "r:bz2" if compression == "bz2" else "r:"


def _child(dirpath: str, name: str) -> str:
    return dirpath.rstrip("/") + "/" + name if dirpath != "/" else "/" + name
