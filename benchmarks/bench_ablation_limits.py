"""Ablation — the §V container-execution limits, enforced vs disabled.

Paper: "To limit denial of service attacks and to maintain fairness, each
student can only submit a job every 30 seconds, and the Docker container
is configured without network access, only 8GB of memory, and a maximum
lifetime of 1 hour.  These limits can be changed using the RAI worker
configuration file."

Measured: a hostile workload (submission flood + memory hog + infinite
loop + exfiltration attempt) against (a) the default limits and (b) a
mis-configured deployment with limits off.  With limits, the system stays
live for honest users; without, the hostile jobs monopolise it.
"""

from benchmarks.conftest import print_banner
from repro.container.limits import ResourceLimits
from repro.core.config import SystemConfig, WorkerConfig
from repro.core.job import JobStatus
from repro.core.system import RaiSystem

HOSTILE_HOG = {
    "main.cu": "// @rai-sim quality=0.1 mem_gb=64\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}
HOSTILE_HANG = {
    "main.cu": "// @rai-sim runtime=hang\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}
HONEST = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


def run_scenario(enforced: bool):
    if enforced:
        limits = ResourceLimits()            # 8 GB, no net, 1 h
        window = 30.0
    else:
        limits = ResourceLimits(
            memory_bytes=1 << 62, network_enabled=True,
            max_lifetime_seconds=6 * 3600.0)
        window = 0.0
    system = RaiSystem(seed=23, config=SystemConfig(
        rate_limit_seconds=window))
    system.add_worker(WorkerConfig(max_concurrent_jobs=1, limits=limits))

    outcomes = {}

    # Hostile memory hog.
    hog = system.new_client(team="hog")
    hog.stage_project(HOSTILE_HOG)
    outcomes["hog"] = system.run(hog.submit())

    # Hostile infinite loop.
    hang = system.new_client(team="hang")
    hang.stage_project(HOSTILE_HANG)
    start = system.sim.now
    outcomes["hang"] = system.run(hang.submit())
    outcomes["hang_held_worker_seconds"] = system.sim.now - start

    # Flood: how many submissions can one team land in 5 minutes?
    flooder = system.new_client(team="flooder")
    flooder.stage_project(HONEST)

    def flood(sim):
        accepted = 0
        deadline = sim.now + 300.0
        while sim.now < deadline:
            result = yield from flooder.submit()
            if result.status is not JobStatus.REJECTED:
                accepted += 1
            yield sim.timeout(1.0)
        return accepted

    outcomes["flood_accepted"] = system.run(flood(system.sim))

    # An honest user afterwards.
    honest = system.new_client(team="honest")
    honest.stage_project(HONEST)
    outcomes["honest"] = system.run(honest.submit())
    return outcomes


def test_ablation_container_limits(benchmark):
    def experiment():
        return run_scenario(enforced=True), run_scenario(enforced=False)

    with_limits, without = benchmark.pedantic(experiment, rounds=1,
                                              iterations=1)

    print_banner("Ablation — §V limits enforced vs disabled")
    rows = [
        ("64 GB memory hog",
         with_limits["hog"].status.value,
         without["hog"].status.value),
        ("infinite-loop job held a worker for",
         f"{with_limits['hang_held_worker_seconds'] / 60:.0f} min (capped)",
         f"{without['hang_held_worker_seconds'] / 60:.0f} min"),
        ("flood: accepted in 5 min",
         with_limits["flood_accepted"],
         without["flood_accepted"]),
        ("honest user afterwards",
         with_limits["honest"].status.value,
         without["honest"].status.value),
    ]
    width = max(len(r[0]) for r in rows)
    print(f"{'scenario':<{width}} | enforced | disabled")
    for name, a, b in rows:
        print(f"{name:<{width}} | {a} | {b}")

    # --- assertions -------------------------------------------------------
    # Memory cap: OOM-kill with limits, sail through without.
    assert with_limits["hog"].status is JobStatus.FAILED
    assert without["hog"].status is JobStatus.SUCCEEDED
    # Lifetime cap bounds worker loss to ~1 h; without, hours are burned.
    assert with_limits["hang_held_worker_seconds"] <= 3700
    assert without["hang_held_worker_seconds"] > 5 * 3600
    # Rate limit bounds one team's acceptance rate.
    assert with_limits["flood_accepted"] <= 300 / 30 + 1
    assert without["flood_accepted"] > with_limits["flood_accepted"]
    # Honest users still served under attack when limits are on.
    assert with_limits["honest"].status is JobStatus.SUCCEEDED
