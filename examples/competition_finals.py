#!/usr/bin/env python
"""The competition: final submissions, ranking, and grading.

Reproduces the instructor-facing story of §V/§VI: several teams make
final submissions (forced through the Listing 2 uniform build file), the
ranking database records internal + /usr/bin/time timings, students check
the anonymised leaderboard, and the staff then downloads every final,
re-runs each 3 times taking the minimum, and generates grade reports with
the 30/20/10/40 rubric.

Run:  python examples/competition_finals.py
"""

from repro import RaiSystem
from repro.core.cli import RaiCLI
from repro.core.job import JobKind
from repro.grading import (
    GradingEvaluator,
    SubmissionDownloader,
    generate_grade_reports,
)

TEAMS = {
    # team name -> (optimisation quality, achieved accuracy)
    "warp-speed": (0.95, 1.00),
    "tile-masters": (0.85, 1.00),
    "coalesced": (0.70, 0.97),
    "register-pressure": (0.45, 0.99),
    "still-debugging": (0.15, 0.82),
}


def project_files(quality: float, correctness: float) -> dict:
    return {
        "main.cu": (
            f"// @rai-sim quality={quality} impl=analytic "
            f"correctness={correctness}\n"
            "#define TILE_WIDTH 32\n"
            "// shared-memory tiled convolution ...\n"
        ),
        "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
        "USAGE": "cmake /src && make && ./ece408 <data> <model>",
        "report.pdf": b"%PDF-1.4" + bytes(3000),
    }


def main() -> None:
    system = RaiSystem.standard(num_workers=3, seed=408)

    # --- each team files its final submission -------------------------
    clients = {}
    for team, (quality, correctness) in TEAMS.items():
        client = system.new_client(team=team)
        client.stage_project(project_files(quality, correctness))
        clients[team] = client
    results = system.run_all(
        [c.submit(JobKind.SUBMIT) for c in clients.values()])
    for team, result in zip(TEAMS, results):
        print(f"{team:<18} {result.status.value:<10} "
              f"internal={result.internal_time:8.3f}s "
              f"time(1)={result.time_command_output['real']:8.2f}s")

    # --- a student checks the leaderboard ------------------------------
    print("\n=== `rai ranking` as seen by team 'coalesced' ===")
    cli = RaiCLI(system, clients["coalesced"])
    print(cli.run_command("rai ranking"))

    # --- the staff grades ----------------------------------------------
    print("=== instructor: download → re-run ×3 (min) → grade ===")
    downloader = SubmissionDownloader(system)
    submissions = downloader.download_all(clean=True)
    evaluator = GradingEvaluator()
    evaluations = {s.team: evaluator.evaluate(s, repetitions=3)
                   for s in submissions}
    ranks = {row["team"]: row["rank"]
             for row in system.ranking.leaderboard()}
    reports = generate_grade_reports(submissions, evaluations, ranks)
    for report in sorted(reports, key=lambda r: r.breakdown.rank or 99):
        print()
        print(report.render())


if __name__ == "__main__":
    main()
