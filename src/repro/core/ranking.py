"""Competition ranking (§VI, Competition Ranking).

Teams see their own rank and "other teams' anonymized runtimes".  Final
submissions overwrite the team's recorded time ("The timing results are
recorded onto the ranking database, and overwrites existing timing
records", §V).
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

from repro.docdb import DocumentDB

RANKING_COLLECTION = "rankings"
SUBMISSIONS_COLLECTION = "submissions"


class RankingService:
    """Leaderboard over the document database."""

    def __init__(self, db: DocumentDB):
        self.db = db
        self.rankings = db.collection(RANKING_COLLECTION)
        self.rankings.create_index("team", unique=True)

    # -- writes ------------------------------------------------------------

    def record_final(self, team: str, internal_time: float,
                     instructor_time: float, correctness: float,
                     username: str, job_id: str, at: float) -> None:
        """Record (overwrite) a team's final-submission timing."""
        self.rankings.update_one(
            {"team": team},
            {"$set": {
                "team": team,
                "internal_time": float(internal_time),
                "instructor_time": float(instructor_time),
                "correctness": float(correctness),
                "submitted_by": username,
                "job_id": job_id,
                "recorded_at": float(at),
            }},
            upsert=True,
        )

    # -- reads ------------------------------------------------------------

    def leaderboard(self, limit: Optional[int] = None) -> List[dict]:
        """Teams ordered by internal time ascending (fastest first)."""
        cursor = self.rankings.find({}).sort([("internal_time", 1),
                                              ("recorded_at", 1)])
        if limit is not None:
            cursor = cursor.limit(limit)
        rows = cursor.to_list()
        for rank, row in enumerate(rows, start=1):
            row["rank"] = rank
        return rows

    def team_rank(self, team: str) -> Optional[int]:
        for row in self.leaderboard():
            if row["team"] == team:
                return row["rank"]
        return None

    def anonymized_view(self, viewer_team: str,
                        limit: Optional[int] = None) -> List[dict]:
        """The student-facing leaderboard: only your own team is named.

        Other teams appear under a stable opaque label so students can
        watch relative movement without identifying competitors (§VI).
        """
        rows = self.leaderboard(limit)
        out = []
        for row in rows:
            is_self = row["team"] == viewer_team
            out.append({
                "rank": row["rank"],
                "team": row["team"] if is_self else
                    _anonymize(row["team"]),
                "internal_time": row["internal_time"],
                "is_you": is_self,
            })
        return out

    def top_runtimes(self, n: int = 30) -> List[float]:
        """The top-n internal times — the data behind Figure 2."""
        return [row["internal_time"] for row in self.leaderboard(limit=n)]

    def __len__(self) -> int:
        return len(self.rankings)


def _anonymize(team: str) -> str:
    digest = hashlib.sha256(("rai-anon:" + team).encode()).hexdigest()[:8]
    return f"team-{digest}"
