"""Chaos: a team that blows through its budget fires — then resolves.

The budget-burn SLO rides the standard gauge machinery: the allocator
pushes ``usage_budget_burn{team=...}`` on every scrape, the SLO judges
it against burn <= 1.0, and the alert manager handles hysteresis.  So
an over-budget team pages, and a budget raise (the TA relents) clears
the page once good samples outweigh the bad window.
"""

import pytest

from repro.cluster import Provisioner
from repro.core.config import SystemConfig
from repro.core.system import RaiSystem
from repro.obs.events import EventType

pytestmark = [pytest.mark.obs, pytest.mark.usage, pytest.mark.chaos]

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


class TestBudgetBurnAlert:
    def test_over_budget_team_fires_then_budget_raise_resolves(self):
        config = SystemConfig(scrape_interval_seconds=30.0,
                              slo_fast_window_seconds=120.0,
                              slo_slow_window_seconds=600.0,
                              usage_window_seconds=300.0)
        system = RaiSystem(seed=23, config=config)
        provisioner = Provisioner(system)
        provisioner.launch_many(2, instance_type="p2.xlarge",
                                max_concurrent_jobs=2, boot_delay=1.0)

        # A twentieth-of-a-cent budget: the first metered container-
        # second of a ~$1.80/h fleet blows it.
        spec = system.set_team_budget("overspender", 0.0005)
        assert spec.name == "budget-burn:overspender"
        assert system.set_team_budget("overspender", 0.0005) is spec  # idempotent
        system.start_observability()

        client = system.new_client(team="overspender")
        client.stage_project(FILES)

        def spend(sim):
            yield sim.timeout(5.0)
            for _ in range(3):
                yield from client.submit()
                yield sim.timeout(config.rate_limit_seconds + 5.0)

        system.sim.process(spend(system.sim))
        system.sim.run(until=400.0)

        assert system.usage.tenant_total(
            "overspender", "container_seconds") > 0
        assert system.cost_allocator.budget_burn("overspender") > 1.0
        assert system.metrics.value(
            "usage_budget_burn", team="overspender") > 1.0
        assert system.alerts.is_firing("slo:budget-burn:overspender")

        # The TA relents: a generous budget drops burn under threshold
        # on the next scrape, and good samples then drain the window.
        system.cost_allocator.set_budget("overspender", 1e6)
        system.sim.run(until=2500.0)
        assert system.cost_allocator.budget_burn("overspender") < 1.0
        assert not system.alerts.is_firing("slo:budget-burn:overspender")

        incidents = system.alerts.incidents("slo:budget-burn:overspender")
        assert len(incidents) == 1
        assert incidents[0].resolved_at is not None
        fired = system.events.query(type=EventType.ALERT_FIRED)
        cleared = system.events.query(type=EventType.ALERT_RESOLVED)
        assert any(e.fields["alert"] == "slo:budget-burn:overspender"
                   for e in fired)
        assert any(e.fields["alert"] == "slo:budget-burn:overspender"
                   for e in cleared)

    def test_under_budget_team_never_pages(self):
        config = SystemConfig(scrape_interval_seconds=30.0,
                              usage_window_seconds=300.0)
        system = RaiSystem(seed=24, config=config)
        provisioner = Provisioner(system)
        provisioner.launch_many(2, instance_type="p2.xlarge",
                                max_concurrent_jobs=2, boot_delay=1.0)
        system.set_team_budget("frugal", 1e6)
        system.start_observability()

        client = system.new_client(team="frugal")
        client.stage_project(FILES)

        def spend(sim):
            yield sim.timeout(5.0)
            yield from client.submit()

        system.sim.process(spend(system.sim))
        system.sim.run(until=600.0)
        assert system.usage.tenant_total("frugal", "container_seconds") > 0
        assert system.cost_allocator.budget_burn("frugal") < 1.0
        assert not system.alerts.is_firing("slo:budget-burn:frugal")
        assert system.alerts.incidents("slo:budget-burn:frugal") == []
