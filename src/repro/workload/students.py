"""Class roster and team formation.

"176 students formed 58 teams" (§VII) — teams of 2 to 4 students (§I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.auth.roster import RosterEntry

_FIRST_NAMES = [
    "Alex", "Bailey", "Casey", "Devon", "Emery", "Finley", "Gray",
    "Harper", "Indigo", "Jordan", "Kai", "Logan", "Morgan", "Noel",
    "Oakley", "Parker", "Quinn", "Reese", "Sage", "Taylor", "Uma",
    "Val", "Wren", "Xia", "Yuri", "Zhen",
]
_LAST_NAMES = [
    "Anderson", "Brown", "Chen", "Davis", "Evans", "Foster", "Garcia",
    "Huang", "Ivanov", "Johnson", "Kim", "Lee", "Martinez", "Nguyen",
    "Olsen", "Patel", "Quintero", "Rodriguez", "Singh", "Tanaka",
    "Ueda", "Vasquez", "Wang", "Xu", "Yamamoto", "Zhang",
]


@dataclass(frozen=True)
class Student:
    """One enrolled student."""

    user_id: str
    first_name: str
    last_name: str

    def roster_entry(self) -> RosterEntry:
        return RosterEntry(self.first_name, self.last_name, self.user_id)


@dataclass
class Team:
    """A project team of 2-4 students."""

    name: str
    members: List[Student] = field(default_factory=list)
    #: Latent ability in [0, 1]; feeds the optimisation trajectory.
    skill: float = 0.5

    @property
    def size(self) -> int:
        return len(self.members)


def make_class(n_students: int = 176, n_teams: int = 58,
               rng: np.random.Generator = None,
               struggling_fraction: float = 0.35):
    """Generate the class: students, teams of 2-4, and team skills.

    Skills are a mixture: most teams reach high optimisation quality (the
    sub-second cluster of Figure 2), a ``struggling_fraction`` lands much
    lower (the histogram's multi-second-to-2-minute tail).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if not (2 * n_teams <= n_students <= 4 * n_teams):
        raise ValueError(
            f"cannot split {n_students} students into {n_teams} teams "
            f"of 2-4")

    students = [
        Student(
            user_id=f"student{i + 1:03d}",
            first_name=_FIRST_NAMES[int(rng.integers(0, len(_FIRST_NAMES)))],
            last_name=_LAST_NAMES[int(rng.integers(0, len(_LAST_NAMES)))],
        )
        for i in range(n_students)
    ]

    # Start every team at 2, then deal the remainder round-robin (max 4).
    sizes = [2] * n_teams
    extra = n_students - 2 * n_teams
    order = rng.permutation(n_teams)
    idx = 0
    while extra > 0:
        team = int(order[idx % n_teams])
        if sizes[team] < 4:
            sizes[team] += 1
            extra -= 1
        idx += 1

    teams: List[Team] = []
    cursor = 0
    for i, size in enumerate(sizes):
        if rng.random() < struggling_fraction:
            skill = float(rng.uniform(0.08, 0.65))
        else:
            skill = float(0.62 + 0.33 * rng.beta(2.0, 1.2))
        teams.append(Team(
            name=f"team-{i + 1:02d}",
            members=students[cursor:cursor + size],
            skill=min(1.0, max(0.0, skill)),
        ))
        cursor += size
    return students, teams
