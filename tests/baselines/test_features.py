"""Table I: the feature matrix is derived by probing live systems."""

import pytest

from repro.baselines import (
    JenkinsCI,
    QwikLabsSystem,
    RaiFacade,
    StudentProvidedSystem,
    TorqueCluster,
    WebGPUSystem,
    evaluate_system,
    feature_matrix,
)
from repro.baselines.features import FEATURES, PAPER_TABLE_1, render_matrix
from repro.sim import Simulator


@pytest.fixture(scope="module")
def matrix():
    sim = Simulator()
    systems = [StudentProvidedSystem(), TorqueCluster(sim), WebGPUSystem(),
               JenkinsCI(), QwikLabsSystem(), RaiFacade()]
    return feature_matrix(systems)


class TestTable1:
    def test_matches_paper_exactly(self, matrix):
        assert matrix == PAPER_TABLE_1

    def test_rai_is_the_only_all_check_row(self, matrix):
        full_rows = [name for name, row in matrix.items()
                     if all(row.values())]
        assert full_rows == ["RAI"]

    def test_every_axis_evaluated_for_every_system(self, matrix):
        for row in matrix.values():
            assert set(row) == set(FEATURES)

    def test_render(self, matrix):
        text = render_matrix(matrix)
        assert "RAI" in text and "✓" in text and "✗" in text


class TestIndividualProbes:
    def test_webgpu_blocks_profilers(self):
        row = evaluate_system(WebGPUSystem())
        assert not row["Configurability"]
        assert row["Testing Uniformity"]

    def test_student_provided_gpu_gap(self):
        """§II: 70% of students had no CUDA GPU → not accessible."""
        row = evaluate_system(StudentProvidedSystem(gpu_ownership_rate=0.3))
        assert not row["Accessibility"]

    def test_torque_no_uniformity(self):
        row = evaluate_system(TorqueCluster(Simulator()))
        assert row["Configurability"]
        assert not row["Testing Uniformity"]

    def test_jenkins_not_accessible(self):
        row = evaluate_system(JenkinsCI())
        assert not row["Accessibility"]

    def test_qwiklabs_canned_catalog(self):
        row = evaluate_system(QwikLabsSystem())
        assert not row["Configurability"]
        assert not row["Testing Uniformity"]

    def test_rai_isolation_probes_are_real(self):
        """The RAI isolation column is measured by actual attack jobs."""
        from repro.baselines.base import BaselineJob

        facade = RaiFacade()
        for mischief in ("read_other_user", "write_host", "network"):
            outcome = facade.submit(BaselineJob(owner="attacker",
                                                mischief=mischief))
            assert not outcome.escaped_sandbox, mischief
