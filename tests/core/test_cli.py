"""Unit tests for the rai CLI front end."""

import pytest

from repro.core.cli import RaiCLI
from repro.core.job import JobKind

FILES = {
    "main.cu": "// @rai-sim quality=0.9 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
    "USAGE": "usage",
    "report.pdf": b"%PDF-1.4",
}


@pytest.fixture
def cli(system):
    client = system.new_client(team="cli-team")
    client.stage_project(FILES)
    return RaiCLI(system, client)


class TestSubcommands:
    def test_run(self, cli):
        out = cli.run_command("rai run")
        assert "succeeded" in out
        assert "Building project" in out

    def test_submit_shows_rank(self, cli, system):
        out = cli.run_command("rai submit")
        assert "succeeded" in out
        assert "ranked #1" in out

    def test_ranking_empty(self, cli):
        assert "No submissions" in cli.run_command("rai ranking")

    def test_ranking_table(self, cli, system):
        cli.run_command("rai submit")
        out = cli.run_command("rai ranking")
        assert "← you" in out
        assert "cli-team" in out

    def test_history(self, cli):
        assert "No jobs" in cli.run_command("rai history")
        cli.run_command("rai run")
        out = cli.run_command("rai history")
        assert "job-" in out and "succeeded" in out

    def test_version_shows_embedded_build_info(self, cli):
        out = cli.run_command("rai version")
        assert "rai version" in out
        assert "built" in out

    def test_help_and_unknown(self, cli):
        assert "usage:" in cli.run_command("rai help")
        assert "unknown subcommand" in cli.run_command("rai frobnicate")
        assert "usage:" in cli.run_command("rai")

    def test_leading_rai_optional(self, cli):
        assert "usage:" in cli.run_command("help")

    def test_download_without_jobs(self, cli):
        assert "No completed jobs" in cli.run_command("rai download")

    def test_download_extracts_build(self, cli):
        cli.run_command("rai run")
        out = cli.run_command("rai download")
        assert "extracted" in out
        job_id = cli.client.history[-1].job_id
        assert cli.client.project_fs.isfile(
            f"/build-{job_id}/timeline.nvprof")

    def test_download_bad_index(self, cli):
        cli.run_command("rai run")
        assert "no such job" in cli.run_command("rai download 99")

    def test_stats_report(self, cli):
        cli.run_command("rai run")
        out = cli.run_command("rai stats")
        assert "deployment health" in out
        assert "jobs completed" in out

    def test_top_idle_fleet(self, cli, system):
        out = cli.run_command("rai top")
        assert "queue=0" in out
        assert "sched wait: p50=-" in out   # no dispatches yet
        assert "warm-pool hit rate" in out
        for worker in system.workers:
            assert worker.id in out
        assert "up" in out

    def test_top_after_jobs(self, cli, system):
        cli.run_command("rai run")
        out = cli.run_command("rai top")
        # Dispatch histogram populated; percentiles render as numbers.
        assert "dispatched=1" in out
        assert "p50=-" not in out
        # Pool columns show the cold create and the parked container.
        assert "0/1" in out and "pooled" in out

    def test_top_shows_downed_worker(self, cli, system):
        system.workers[0].crash()
        out = cli.run_command("rai top")
        assert "down" in out

    def test_top_listed_in_help(self, cli):
        assert "top" in cli.run_command("rai help")
