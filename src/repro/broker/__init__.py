"""NSQ-style publish/subscribe message broker.

The paper's clients and workers "connect and subscribe to different queues
on the broker ... using a publish/subscribe communication pattern" (§IV).
The broker is organised exactly as described in §V ("Message Broker
Operations"):

- a **topic** fans each published message out to every **channel**;
- within a channel, each message is delivered to exactly one subscribed
  consumer (competing-consumers queue semantics);
- routes are written ``topic_name/channel_name``;
- job logs flow through **ephemeral** topics named ``log_${job_id}`` that
  are deleted once they have no producers and no consumers.

Messages must be acknowledged; un-acked messages can be requeued with an
attempt budget, after which they are dead-lettered rather than lost.
"""

from repro.broker.message import Message, new_message_id
from repro.broker.routes import Route, parse_route
from repro.broker.topic import Topic, Channel
from repro.broker.broker import MessageBroker
from repro.broker.client import Producer, Consumer

__all__ = [
    "Message",
    "new_message_id",
    "Route",
    "parse_route",
    "Topic",
    "Channel",
    "MessageBroker",
    "Producer",
    "Consumer",
]
