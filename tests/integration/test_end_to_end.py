"""End-to-end integration: the complete Figure 1 architecture in motion."""

import pytest

from repro.core.job import JobKind, JobStatus
from repro.core.system import RaiSystem
from repro.vfs import VirtualFileSystem, unpack_tree


@pytest.fixture
def files():
    return {
        "main.cu": "// @rai-sim quality=0.9 impl=im2col\n"
                   "#define TILE_WIDTH 16\n",
        "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
        "USAGE": "cmake /src && make && ./ece408 ...",
        "report.pdf": b"%PDF-1.4" + bytes(2048),
    }


class TestWholePipeline:
    def test_development_then_final_then_grading(self, files):
        """The full student+instructor journey through every component."""
        system = RaiSystem.standard(num_workers=2, seed=42)

        # --- Student: development iterations ---------------------------
        client = system.new_client(team="integration-team")
        client.stage_project(files)
        dev = system.run(client.submit(JobKind.RUN))
        assert dev.status is JobStatus.SUCCEEDED
        # nvprof artifact comes back through the file server
        blob = client.download_build(dev)
        fs = VirtualFileSystem()
        unpack_tree(blob, fs, "/")
        assert fs.isfile("/timeline.nvprof")

        # --- Student: final submission ---------------------------------
        def wait(sim):
            yield sim.timeout(31)

        system.run(wait(system.sim))
        final = system.run(client.submit(JobKind.SUBMIT))
        assert final.status is JobStatus.SUCCEEDED
        assert final.rank == 1
        # real numpy ran on test10? no: finals use the full dataset with
        # the analytic path; internal timer parsed either way.
        assert final.internal_time is not None
        assert final.time_command_output is not None

        # --- The database recorded both --------------------------------
        submissions = system.db.collection("submissions")
        assert submissions.count_documents(
            {"team": "integration-team"}) == 2
        assert submissions.count_documents({"kind": "submit"}) == 1

        # --- Instructor: download, re-run, grade ------------------------
        from repro.grading import (
            GradingEvaluator,
            SubmissionDownloader,
            generate_grade_reports,
        )

        downloader = SubmissionDownloader(system)
        subs = downloader.download_all(clean=True)
        assert len(subs) == 1
        evaluator = GradingEvaluator()
        evaluations = {s.team: evaluator.evaluate(s, repetitions=3)
                       for s in subs}
        ranks = {r["team"]: r["rank"]
                 for r in system.ranking.leaderboard()}
        reports = generate_grade_reports(subs, evaluations, ranks)
        assert reports[0].breakdown.total > 0.5
        assert reports[0].breakdown.rank == 1

    def test_lifecycle_expires_stale_uploads(self, files):
        """§V step 3: uploads are deleted a month after last use."""
        system = RaiSystem.standard(num_workers=1, seed=1)
        client = system.new_client(team="t")
        client.stage_project(files)
        result = system.run(client.submit())
        uploads = system.config.upload_bucket
        assert len(list(system.storage.iter_keys(uploads))) == 1

        def pass_time(sim):
            yield sim.timeout(31 * 24 * 3600.0)

        system.run(pass_time(system.sim))
        system.storage.run_lifecycle_sweep()
        assert len(list(system.storage.iter_keys(uploads))) == 0
        # build outputs (90-day rule) survive the first month
        builds = system.config.build_bucket
        assert len(list(system.storage.iter_keys(builds))) == 1

    def test_presigned_build_url_expires(self, files):
        system = RaiSystem.standard(num_workers=1, seed=1)
        client = system.new_client(team="t")
        client.stage_project(files)
        result = system.run(client.submit())
        assert client.download_build(result) is not None

        def pass_time(sim):
            yield sim.timeout(8 * 24 * 3600.0)   # past 7-day presign expiry

        system.run(pass_time(system.sim))
        from repro.errors import ExpiredToken

        with pytest.raises(ExpiredToken):
            client.download_build(result)

    def test_burst_of_teams_all_served(self, files):
        """A deadline-like burst: 12 teams, 3 workers, nobody starved."""
        system = RaiSystem.standard(num_workers=3, seed=9)
        clients = []
        for i in range(12):
            c = system.new_client(team=f"team-{i:02d}")
            c.stage_project(files)
            clients.append(c)
        results = system.run_all([c.submit(JobKind.SUBMIT)
                                  for c in clients])
        assert all(r.status is JobStatus.SUCCEEDED for r in results)
        assert len(system.ranking) == 12
        ranks = {r.rank for r in results if r.rank}
        assert ranks  # ranks reported on results

    def test_worker_scale_out_mid_burst_helps(self, files):
        """Elasticity: adding workers mid-burst cuts later queue waits."""
        def run(scale_out: bool):
            system = RaiSystem.standard(num_workers=1, seed=13)
            clients = []
            # A long enough burst that new (cold, image-pulling) workers
            # pay for themselves — mirroring §VII where extra instances
            # were provisioned for sustained deadline load, not blips.
            for i in range(20):
                c = system.new_client(team=f"t{i}")
                # Distinct sources per team: identical trees would let
                # the build cache collapse the burst into replays, and
                # elasticity has nothing to help with.
                c.stage_project(dict(
                    files, **{"main.cu":
                              files["main.cu"] + f"// t{i}\n"}))
                clients.append(c)
            procs = [system.sim.process(c.submit()) for c in clients]
            if scale_out:
                def scaler(sim):
                    yield sim.timeout(30.0)
                    for _ in range(3):
                        system.add_worker()

                system.sim.process(scaler(system.sim))
            system.sim.run(until=system.sim.all_of(procs))
            results = [p.value for p in procs]
            assert all(r.succeeded for r in results)
            return max(r.turnaround for r in results)

        assert run(scale_out=True) < run(scale_out=False)
