"""Deterministic chaos: fault injection and recovery primitives.

§V's robustness claim — "these operations need to happen in order and be
robust to failures" — is only credible if the failure paths are actually
driven.  This package provides:

- :class:`FaultPlan` + fault dataclasses — a declarative description of
  what goes wrong and when (worker crashes, transient storage errors,
  broker delay/drop, container kills);
- :class:`FaultInjector` — turns a plan into kernel processes and hooks,
  all seeded from named ``system.rng.stream("faults:...")`` streams so
  chaos runs replay exactly;
- :class:`RetryPolicy` — the reusable exponential-backoff budget the
  worker applies to storage fetch/upload;
- :class:`CrashPoint` + :func:`tear_tail` — mid-write power loss for the
  durability write-ahead log (torn final record, recovery must cope).
"""

from repro.faults.crashpoint import CrashPoint, tear_tail
from repro.faults.plan import (
    ALWAYS,
    BrokerFault,
    ContainerKillFault,
    FaultPlan,
    StorageFault,
    WorkerCrashFault,
)
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryPolicy

__all__ = [
    "ALWAYS",
    "BrokerFault",
    "ContainerKillFault",
    "CrashPoint",
    "tear_tail",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "StorageFault",
    "WorkerCrashFault",
]
