"""Warm container pool: reuse, sanitization, bounds, TTL, shutdown."""

import pytest

from repro.container import ContainerRuntime, WarmContainerPool
from repro.container.container import ContainerState
from repro.container.volumes import VolumeMount
from repro.vfs import VirtualFileSystem


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def runtime():
    return ContainerRuntime()


@pytest.fixture
def pool(runtime, clock):
    return WarmContainerPool(runtime, clock, max_per_image=2,
                             ttl_seconds=100.0,
                             create_seconds=2.0, reset_seconds=0.2)


def _mounts(label: str):
    fs = VirtualFileSystem()
    fs.write_file("/main.cu", f"// {label}\n")
    return [VolumeMount("/src", read_only=True, source_fs=fs)]


class TestAcquireRelease:
    def test_first_acquire_is_a_miss_at_create_cost(self, pool):
        container, hit, cost = pool.acquire("webgpu/rai:root")
        assert not hit
        assert cost == 2.0
        assert pool.misses == 1 and pool.hits == 0

    def test_release_then_acquire_is_a_hit_at_reset_cost(self, pool):
        container, _, _ = pool.acquire("webgpu/rai:root")
        assert pool.release(container)
        assert pool.pooled_count == 1
        again, hit, cost = pool.acquire("webgpu/rai:root")
        assert hit
        assert cost == 0.2
        assert again is container
        assert pool.hit_rate() == 0.5

    def test_hit_only_for_the_same_image(self, pool):
        container, _, _ = pool.acquire("webgpu/rai:root")
        pool.release(container)
        other, hit, _ = pool.acquire("webgpu/rai:minimal")
        assert not hit
        assert other is not container

    def test_no_engine_create_on_a_hit(self, pool, runtime):
        container, _, _ = pool.acquire("webgpu/rai:root")
        pool.release(container)
        created_before = runtime.total_created
        pool.acquire("webgpu/rai:root")
        assert runtime.total_created == created_before


class TestSanitization:
    def test_released_container_is_scrubbed_before_parking(self, pool):
        container, _, _ = pool.acquire(
            "webgpu/rai:root", mounts=_mounts("team-a"))
        container.start()
        container.env["TEAM_SECRET"] = "hunter2"
        pool.release(container)
        assert container.env == {}
        assert container.fs is None

    def test_reuse_reprovisions_for_the_new_job(self, pool):
        container, _, _ = pool.acquire(
            "webgpu/rai:root", mounts=_mounts("team-a"))
        container.start()
        generation = container.generation
        pool.release(container)
        again, hit, _ = pool.acquire(
            "webgpu/rai:root", mounts=_mounts("team-b"))
        assert hit and again is container
        assert again.generation == generation + 1
        assert again.state is ContainerState.CREATED
        assert "TEAM_SECRET" not in again.env
        # The new job's /src is mounted, not team-a's.
        assert again.fs.read_text("/src/main.cu") == "// team-b\n"

    def test_tainted_container_never_pooled(self, pool, runtime):
        for state in (ContainerState.OOM_KILLED, ContainerState.TIMED_OUT):
            container, _, _ = pool.acquire("webgpu/rai:root")
            container.state = state
            assert not pool.release(container)
            assert container.state is ContainerState.DESTROYED
        assert pool.pooled_count == 0
        assert pool.rejected_tainted == 2
        assert runtime.live_count == 0

    def test_already_destroyed_release_is_a_noop(self, pool, runtime):
        container, _, _ = pool.acquire("webgpu/rai:root")
        runtime.destroy_container(container)
        destroyed_before = runtime.total_destroyed
        assert not pool.release(container)
        assert runtime.total_destroyed == destroyed_before
        assert pool.rejected_tainted == 0


class TestBoundsAndTTL:
    def test_per_image_bound_overflow_destroys(self, pool, runtime):
        containers = [pool.acquire("webgpu/rai:root")[0] for _ in range(3)]
        assert pool.release(containers[0])
        assert pool.release(containers[1])
        assert not pool.release(containers[2])
        assert pool.pooled_count == 2
        assert pool.evicted_overflow == 1
        assert runtime.live_count == 2

    def test_ttl_evicts_idle_containers(self, pool, runtime, clock):
        container, _, _ = pool.acquire("webgpu/rai:root")
        pool.release(container)
        clock.now = 99.0
        assert pool.evict_expired() == 0
        clock.now = 100.0
        assert pool.evict_expired() == 1
        assert pool.pooled_count == 0
        assert pool.evicted_ttl == 1
        assert runtime.live_count == 0

    def test_acquire_runs_eviction_first(self, pool, clock):
        container, _, _ = pool.acquire("webgpu/rai:root")
        pool.release(container)
        clock.now = 500.0
        _, hit, _ = pool.acquire("webgpu/rai:root")
        assert not hit             # the parked one expired, not reused
        assert pool.evicted_ttl == 1

    def test_disabled_pool_never_parks(self, runtime, clock):
        pool = WarmContainerPool(runtime, clock, max_per_image=0)
        container, hit, _ = pool.acquire("webgpu/rai:root")
        assert not hit
        assert not pool.release(container)
        assert runtime.live_count == 0


class TestShutdown:
    def test_close_drains_and_refuses_future_parking(self, pool, runtime):
        parked, _, _ = pool.acquire("webgpu/rai:root")
        pool.release(parked)
        in_flight, _, _ = pool.acquire("webgpu/rai:minimal")
        assert pool.close() == 1
        assert runtime.live_count == 1        # only the in-flight one
        # A job finishing after the crash destroys, never parks.
        assert not pool.release(in_flight)
        assert runtime.live_count == 0
        assert pool.pooled_count == 0

    def test_stats_shape(self, pool):
        container, _, _ = pool.acquire("webgpu/rai:root")
        pool.release(container)
        stats = pool.stats()
        assert stats["pooled"] == 1
        assert stats["hits"] == 0 and stats["misses"] == 1
        assert stats["closed"] is False
