"""Unit tests for the HDF5-like container format."""

import numpy as np
import pytest

from repro.gpu.hdf5sim import H5SimError, list_datasets, read_h5s, write_h5s


class TestRoundTrip:
    def test_multiple_dtypes(self):
        data = {
            "f32": np.arange(6, dtype=np.float32).reshape(2, 3),
            "f64": np.ones(4, dtype=np.float64),
            "i64": np.array([1, -2], dtype=np.int64),
            "u8": np.arange(256, dtype=np.uint8),
        }
        back = read_h5s(write_h5s(data))
        assert set(back) == set(data)
        for key in data:
            np.testing.assert_array_equal(back[key], data[key])
            assert back[key].dtype == data[key].dtype

    def test_shapes_preserved(self):
        arr = np.zeros((2, 3, 4, 5), dtype=np.float32)
        back = read_h5s(write_h5s({"x": arr}))
        assert back["x"].shape == (2, 3, 4, 5)

    def test_scalar_like(self):
        back = read_h5s(write_h5s({"n": np.asarray([10000],
                                                   dtype=np.int64)}))
        assert int(back["n"][0]) == 10000

    def test_empty_container(self):
        assert read_h5s(write_h5s({})) == {}

    def test_returned_arrays_are_writable(self):
        back = read_h5s(write_h5s({"x": np.zeros(3, dtype=np.float32)}))
        back["x"][0] = 1.0  # must not raise (frombuffer views are readonly)

    def test_unicode_names(self):
        back = read_h5s(write_h5s({"conv1.weight":
                                   np.zeros(2, dtype=np.float32)}))
        assert "conv1.weight" in back


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(H5SimError):
            read_h5s(b"GIF89a...")

    def test_truncated(self):
        blob = write_h5s({"x": np.zeros(100, dtype=np.float64)})
        with pytest.raises(H5SimError):
            read_h5s(blob[:40])

    def test_unsupported_dtype(self):
        with pytest.raises(H5SimError):
            write_h5s({"c": np.zeros(2, dtype=np.complex128)})

    def test_list_datasets(self):
        blob = write_h5s({"b": np.zeros(1, dtype=np.float32),
                          "a": np.zeros(1, dtype=np.float32)})
        assert list_datasets(blob) == ["a", "b"]
