"""Declarative SLOs with multi-window burn-rate evaluation.

The operational questions the paper's staff answered by eyeballing
dashboards — "is the queue backed up?", "are submissions succeeding?" —
become declarative :class:`SloSpec`\\ s judged automatically over
:class:`~repro.obs.scrape.MetricsScraper` history:

- **latency** — "p95 of histogram H stays under T seconds" expressed as
  a good-fraction target: the share of windowed observations at or
  under T must reach ``target`` (0.95 for a p95 objective);
- **ratio** — "good events / (good + bad) >= target" over counters,
  e.g. submission success ratio >= 99%;
- **gauge** — "the gauge satisfies a bound" as a fraction of scrape
  samples, e.g. at least N workers running 99% of the time.

Each evaluation computes the **burn rate** on two sliding windows (fast
and slow — the standard multi-window error-budget method): burn rate =
bad fraction / error budget, where budget = 1 - target.  Burning 1.0
means eating the budget exactly as fast as allowed; an alert needs
*both* windows over the threshold, so a single bad scrape (fast spike,
slow still clean) cannot page, and a long-resolved incident (slow still
polluted, fast clean) auto-resolves.

Latency objectives additionally surface **exemplars**: the histogram's
captured trace ids from buckets above the threshold — the exact jobs
that blew the objective, one ``rai trace`` away from their waterfalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.obs.metrics import Exemplar, Histogram
from repro.obs.scrape import HistogramState, MetricsScraper

#: Kinds a spec may declare.
KINDS = ("latency", "ratio", "gauge")


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective, declaratively."""

    #: Stable identifier (alert names derive from it).
    name: str
    #: "latency" | "ratio" | "gauge".
    kind: str
    #: Good-outcome target in (0, 1), e.g. 0.95 → 5% error budget.
    target: float
    #: Human description for reports.
    description: str = ""
    #: latency/gauge kinds: the metric (histogram / gauge) name.
    metric: Optional[str] = None
    #: Label text selector for ``metric`` ("" = the unlabelled series).
    label: str = ""
    #: latency: seconds bound an observation must stay at/under.
    #: gauge: the bound the sampled value is compared against.
    threshold: Optional[float] = None
    #: gauge: comparison that makes a sample *good* ("<=", ">=", "<", ">").
    op: str = "<="
    #: ratio: counter selectors summed as good / bad events.  Each entry
    #: is ``"name"`` or ``"name{label_text}"``.
    good: Tuple[str, ...] = ()
    bad: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if self.kind in ("latency", "gauge"):
            if self.metric is None or self.threshold is None:
                raise ValueError(
                    f"{self.kind} SLO {self.name!r} needs metric + threshold")
        if self.kind == "gauge" and self.op not in ("<=", ">=", "<", ">"):
            raise ValueError(f"unsupported gauge op {self.op!r}")
        if self.kind == "ratio" and not (self.good and self.bad):
            raise ValueError(
                f"ratio SLO {self.name!r} needs good and bad counters")

    @property
    def budget(self) -> float:
        """The error budget: tolerated bad fraction."""
        return 1.0 - self.target


def _parse_selector(selector: str) -> Tuple[str, Optional[str]]:
    """``"name{label_text}"`` → (name, label_text); bare name → (name, None).

    A None label sums every labelled variant of the counter.
    """
    if selector.endswith("}") and "{" in selector:
        name, _, rest = selector.partition("{")
        return name, rest[:-1]
    return selector, None


@dataclass
class WindowBurn:
    """Burn-rate arithmetic for one spec over one window."""

    window: float
    #: Seconds of history the baseline actually covered (< window early
    #: in a run).
    actual: float
    good: float
    bad: float
    #: bad / (good + bad); 0.0 with no data.
    bad_fraction: float
    #: bad_fraction / budget; 0.0 with no data.
    burn_rate: float

    @property
    def total(self) -> float:
        return self.good + self.bad

    @property
    def has_data(self) -> bool:
        return self.total > 0


@dataclass
class SloStatus:
    """One spec's judgment at one instant."""

    spec: SloSpec
    now: float
    fast: WindowBurn
    slow: WindowBurn
    #: True when BOTH windows burn at/over the engine threshold.
    burning: bool
    #: Latency objectives only: traced observations above the threshold.
    exemplars: List[Exemplar] = field(default_factory=list)

    @property
    def has_data(self) -> bool:
        return self.fast.has_data or self.slow.has_data

    @property
    def state(self) -> str:
        if not self.has_data:
            return "no-data"
        return "burning" if self.burning else "ok"

    def to_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "kind": self.spec.kind,
            "target": self.spec.target,
            "state": self.state,
            "now": self.now,
            "fast": {"window_s": self.fast.window,
                     "bad_fraction": round(self.fast.bad_fraction, 6),
                     "burn_rate": round(self.fast.burn_rate, 4),
                     "total": self.fast.total},
            "slow": {"window_s": self.slow.window,
                     "bad_fraction": round(self.slow.bad_fraction, 6),
                     "burn_rate": round(self.slow.burn_rate, 4),
                     "total": self.slow.total},
            "exemplars": [e.to_dict() for e in self.exemplars],
        }


class SloEngine:
    """Evaluates a set of :class:`SloSpec` against scraper history."""

    def __init__(self, scraper: MetricsScraper,
                 specs: Sequence[SloSpec] = (),
                 fast_window: float = 300.0,
                 slow_window: float = 3600.0,
                 burn_rate_threshold: float = 1.0,
                 max_exemplars: int = 5):
        if fast_window <= 0 or slow_window < fast_window:
            raise ValueError("need 0 < fast_window <= slow_window")
        if burn_rate_threshold <= 0:
            raise ValueError("burn_rate_threshold must be positive")
        self.scraper = scraper
        self.specs: List[SloSpec] = list(specs)
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.burn_rate_threshold = burn_rate_threshold
        self.max_exemplars = max_exemplars

    def add_spec(self, spec: SloSpec) -> SloSpec:
        if any(s.name == spec.name for s in self.specs):
            raise ValueError(f"duplicate SLO spec {spec.name!r}")
        self.specs.append(spec)
        return spec

    def spec(self, name: str) -> Optional[SloSpec]:
        for s in self.specs:
            if s.name == name:
                return s
        return None

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, now: Optional[float] = None,
                 scrape: bool = True) -> List[SloStatus]:
        """Judge every spec; optionally takes a fresh snapshot first.

        ``scrape=False`` evaluates against existing history only (the
        alert manager calls it this way right after the scrape loop's
        own capture, avoiding double snapshots).
        """
        if scrape:
            self.scraper.scrape_now()
        if now is None:
            now = self.scraper.clock()
        return [self._evaluate_spec(spec, now) for spec in self.specs]

    def status(self, name: str,
               now: Optional[float] = None) -> Optional[SloStatus]:
        spec = self.spec(name)
        if spec is None:
            return None
        if now is None:
            now = self.scraper.clock()
        return self._evaluate_spec(spec, now)

    def _evaluate_spec(self, spec: SloSpec, now: float) -> SloStatus:
        measure = {
            "latency": self._latency_window,
            "ratio": self._ratio_window,
            "gauge": self._gauge_window,
        }[spec.kind]
        fast = self._burn(spec, now, self.fast_window, measure)
        slow = self._burn(spec, now, self.slow_window, measure)
        burning = (fast.has_data and slow.has_data
                   and fast.burn_rate >= self.burn_rate_threshold
                   and slow.burn_rate >= self.burn_rate_threshold)
        exemplars: List[Exemplar] = []
        if spec.kind == "latency" and burning:
            exemplars = self._exemplars(spec, now)
        return SloStatus(spec=spec, now=now, fast=fast, slow=slow,
                         burning=burning, exemplars=exemplars)

    def _burn(self, spec: SloSpec, now: float, window: float,
              measure: Callable) -> WindowBurn:
        good, bad, actual = measure(spec, now, window)
        total = good + bad
        bad_fraction = bad / total if total > 0 else 0.0
        burn_rate = bad_fraction / spec.budget if total > 0 else 0.0
        return WindowBurn(window=window, actual=actual, good=good, bad=bad,
                          bad_fraction=bad_fraction, burn_rate=burn_rate)

    # -- per-kind good/bad splits --------------------------------------------

    def _window_span(self, now: float, window: float) -> float:
        base = self.scraper.baseline_for(now, window)
        return now - base.time if base is not None else 0.0

    def _latency_window(self, spec: SloSpec, now: float,
                        window: float) -> Tuple[float, float, float]:
        delta = self.scraper.histogram_delta(spec.metric, now, window,
                                             label=spec.label)
        actual = self._window_span(now, window)
        if delta is None or delta.count <= 0:
            return 0.0, 0.0, actual
        good = self._count_at_or_under(delta, spec.threshold)
        return float(good), float(delta.count - good), actual

    @staticmethod
    def _count_at_or_under(delta: HistogramState, threshold: float) -> int:
        """Observations provably <= threshold (bucket bound <= threshold).

        When the threshold falls inside a bucket, that bucket counts as
        bad — the conservative reading, since any of its observations
        may exceed the bound.  Align thresholds with bucket bounds for
        exact accounting.
        """
        good = 0
        for bound, count in zip(delta.bounds, delta.bucket_counts):
            if bound <= threshold:
                good += count
            else:
                break
        return good

    def _ratio_window(self, spec: SloSpec, now: float,
                      window: float) -> Tuple[float, float, float]:
        actual = self._window_span(now, window)
        good = sum(self._counter_delta(sel, now, window)
                   for sel in spec.good)
        bad = sum(self._counter_delta(sel, now, window) for sel in spec.bad)
        return good, bad, actual

    def _counter_delta(self, selector: str, now: float,
                       window: float) -> float:
        name, label = _parse_selector(selector)
        if label is not None:
            return self.scraper.counter_delta(name, now, window, label=label)
        latest = self.scraper.latest()
        base = self.scraper.baseline_for(now, window)
        if latest is None:
            return 0.0
        end = latest.counter_total(name)
        start = base.counter_total(name) if base is not None else 0.0
        return max(0.0, end - start)

    def _gauge_window(self, spec: SloSpec, now: float,
                      window: float) -> Tuple[float, float, float]:
        samples = self.scraper.gauge_samples(spec.metric, now, window,
                                             label=spec.label)
        actual = self._window_span(now, window)
        if not samples:
            return 0.0, 0.0, actual
        compare = {
            "<=": lambda v: v <= spec.threshold,
            ">=": lambda v: v >= spec.threshold,
            "<": lambda v: v < spec.threshold,
            ">": lambda v: v > spec.threshold,
        }[spec.op]
        good = sum(1 for _, v in samples if compare(v))
        return float(good), float(len(samples) - good), actual

    # -- exemplars ------------------------------------------------------------

    def _exemplars(self, spec: SloSpec, now: float) -> List[Exemplar]:
        metric = self.scraper.registry.get(
            spec.metric, **_labels_from_text(spec.label))
        if not isinstance(metric, Histogram):
            return []
        since = now - self.slow_window
        exemplars = metric.exemplars_above(spec.threshold, since=since)
        exemplars.sort(key=lambda e: e.time, reverse=True)
        return exemplars[:self.max_exemplars]


def _labels_from_text(label_text: str) -> dict:
    """Inverse of the scraper's label flattening ("k=v,k2=v2")."""
    if not label_text:
        return {}
    out = {}
    for part in label_text.split(","):
        key, _, value = part.partition("=")
        out[key] = value
    return out


def default_slos(queue_wait_p95_seconds: float = 30.0,
                 success_target: float = 0.99,
                 queue_wait_target: float = 0.95) -> List[SloSpec]:
    """The stock objectives every deployment starts with.

    Mirrors the paper's operational pain points: queue responsiveness
    (p95 queue wait under 30 s — students polling ``rai`` expect
    interactive turnaround) and submission success ratio (a submission
    system that loses or fails jobs burns instructor trust fastest).
    """
    return [
        SloSpec(
            name="queue-wait-p95",
            kind="latency",
            metric="sched_queue_wait_seconds",
            threshold=queue_wait_p95_seconds,
            target=queue_wait_target,
            description=(f"p95 queue wait < "
                         f"{queue_wait_p95_seconds:g}s"),
        ),
        SloSpec(
            name="submission-success",
            kind="ratio",
            good=("jobs_finished{status=succeeded}",),
            bad=("jobs_finished{status=failed}", "dead_letters_drained"),
            target=success_target,
            description=(f"submission success ratio >= "
                         f"{success_target:.0%}"),
        ),
    ]
