"""Unit tests for the content-keyed build artifact cache."""

import pytest

from repro.storage.buildcache import (
    BuildCache,
    content_key,
    primary_key,
)
from repro.vfs import VirtualFileSystem

pytestmark = pytest.mark.buildcache

IMG = "img-layer-digest"


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_fs(files=None):
    fs = VirtualFileSystem()
    for path, data in (files or {}).items():
        parent = path.rsplit("/", 1)[0]
        if parent:
            fs.makedirs(parent)
        fs.write_file(path, data if isinstance(data, bytes)
                      else data.encode())
    return fs


def run_command(cache, fs, command="make", cwd="/build", reads=(),
                writes=None, stdout="out\n", exit_code=0, **kw):
    """Simulate one traced command: read ``reads``, write ``writes``."""
    trace = fs.start_tracking()
    for path in reads:
        if fs.isfile(path):
            fs.read_file(path)
    for path, data in (writes or {}).items():
        fs.write_file(path, data)
    fs.stop_tracking()
    return cache.capture(IMG, cwd, command, trace, fs,
                         stdout, "", exit_code, 3.0, 2, **kw)


class TestKeys:
    def test_primary_key_separates_command_cwd_image(self):
        base = primary_key(IMG, "/build", "make")
        assert base == primary_key(IMG, "/build", "make")
        assert base != primary_key(IMG, "/build", "make -j")
        assert base != primary_key(IMG, "/src", "make")
        assert base != primary_key("other", "/build", "make")

    def test_content_key_is_input_order_insensitive(self):
        a = content_key("p", {"/a": "file:1", "/b": "dir"})
        b = content_key("p", {"/b": "dir", "/a": "file:1"})
        assert a == b
        assert a != content_key("p", {"/a": "file:2", "/b": "dir"})


class TestLookupAndInvalidation:
    def test_hit_after_capture(self):
        cache = BuildCache(FakeClock())
        fs = make_fs({"/src/main.cu": "int main(){}"})
        run_command(cache, fs, reads=["/src/main.cu"],
                    writes={"/build/out": b"bin"})
        entry = cache.lookup(IMG, "/build", "make", fs)
        assert entry is not None
        assert entry.exit_code == 0
        assert cache.hit_count == 1 and cache.miss_count == 0

    def test_read_content_change_misses(self):
        cache = BuildCache(FakeClock())
        fs = make_fs({"/src/main.cu": "v1"})
        run_command(cache, fs, reads=["/src/main.cu"])
        fs.write_file("/src/main.cu", b"v2")
        assert cache.lookup(IMG, "/build", "make", fs) is None
        assert cache.miss_count == 1

    def test_unread_file_change_still_hits(self):
        cache = BuildCache(FakeClock())
        fs = make_fs({"/src/main.cu": "v1", "/src/notes.txt": "a"})
        run_command(cache, fs, reads=["/src/main.cu"])
        fs.write_file("/src/notes.txt", b"b")
        assert cache.lookup(IMG, "/build", "make", fs) is not None

    def test_tree_enumeration_invalidates_on_new_file(self):
        cache = BuildCache(FakeClock())
        fs = make_fs({"/src/a.cu": "a"})
        trace = fs.start_tracking()
        list(fs.iter_files("/src"))
        fs.stop_tracking()
        cache.capture(IMG, "/build", "make", trace, fs, "", "", 0, 1.0, 0)
        assert cache.lookup(IMG, "/build", "make", fs) is not None
        fs.write_file("/src/b.cu", b"new source nothing read")
        assert cache.lookup(IMG, "/build", "make", fs) is None

    def test_absence_probe_invalidates_when_file_appears(self):
        cache = BuildCache(FakeClock())
        fs = make_fs()
        trace = fs.start_tracking()
        fs.exists("/build/Makefile")
        fs.stop_tracking()
        cache.capture(IMG, "/build", "cfg", trace, fs, "", "", 0, 1.0, 0)
        assert cache.lookup(IMG, "/build", "cfg", fs) is not None
        fs.makedirs("/build")
        fs.write_file("/build/Makefile", b"all:")
        assert cache.lookup(IMG, "/build", "cfg", fs) is None

    def test_multiple_entries_per_primary(self):
        """Two source versions coexist under one primary key; each hits
        against the matching tree (ccache direct-mode behaviour)."""
        cache = BuildCache(FakeClock())
        fs = make_fs({"/src/main.cu": "v1"})
        run_command(cache, fs, reads=["/src/main.cu"], stdout="built v1\n")
        fs.write_file("/src/main.cu", b"v2")
        run_command(cache, fs, reads=["/src/main.cu"], stdout="built v2\n")
        assert cache.lookup(IMG, "/build", "make", fs).stdout == "built v2\n"
        fs.write_file("/src/main.cu", b"v1")
        assert cache.lookup(IMG, "/build", "make", fs).stdout == "built v1\n"
        assert cache.entry_count == 2

    def test_nonzero_exit_is_cacheable(self):
        cache = BuildCache(FakeClock())
        fs = make_fs({"/src/bad.cu": "COMPILE_ERROR"})
        run_command(cache, fs, reads=["/src/bad.cu"], exit_code=2,
                    stdout="", )
        entry = cache.lookup(IMG, "/build", "make", fs)
        assert entry is not None and entry.exit_code == 2


class TestReplay:
    def test_apply_replays_output_tree(self):
        cache = BuildCache(FakeClock())
        fs = make_fs({"/src/main.cu": "v1"})
        trace = fs.start_tracking()
        fs.read_file("/src/main.cu")
        fs.makedirs("/build/CMakeFiles")
        fs.write_file("/build/ece408", b"\x7fELF binary", executable=True)
        fs.stop_tracking()
        cache.capture(IMG, "/build", "make", trace, fs, "ok\n", "", 0,
                      3.0, 2)
        entry = cache.lookup(IMG, "/build", "make", fs)

        fresh = make_fs({"/src/main.cu": "v1"})
        replayed_bytes = cache.apply(entry, fresh)
        assert fresh.isdir("/build/CMakeFiles")
        assert fresh.read_file("/build/ece408") == b"\x7fELF binary"
        assert fresh._resolve_file("/build/ece408").executable
        assert replayed_bytes == entry.bytes

    def test_apply_replays_removals(self):
        cache = BuildCache(FakeClock())
        fs = make_fs({"/build/stale.o": "old"})
        trace = fs.start_tracking()
        fs.remove("/build/stale.o")
        fs.stop_tracking()
        cache.capture(IMG, "/build", "clean", trace, fs, "", "", 0, 0.1, 0)
        entry = cache.lookup(IMG, "/build", "clean", fs)
        fresh = make_fs({"/build/stale.o": "old"})
        cache.apply(entry, fresh)
        assert not fresh.exists("/build/stale.o")


class TestBlobSharingAndEviction:
    def test_identical_outputs_share_one_blob(self):
        cache = BuildCache(FakeClock())
        blob = b"same binary payload"
        fs1 = make_fs({"/src/main.cu": "student one"})
        run_command(cache, fs1, reads=["/src/main.cu"],
                    writes={"/build/ece408": blob})
        fs2 = make_fs({"/src/main.cu": "student two"})
        run_command(cache, fs2, reads=["/src/main.cu"],
                    writes={"/build/ece408": blob})
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["blobs"] == 1
        assert stats["blob_bytes"] == len(blob)
        assert cache.verify() == []

    def test_evicting_one_sharer_keeps_the_blob(self):
        clock = FakeClock()
        cache = BuildCache(clock, ttl_seconds=100.0)
        blob = b"shared"
        fs1 = make_fs({"/src/a.cu": "a"})
        run_command(cache, fs1, command="make a", reads=["/src/a.cu"],
                    writes={"/build/out": blob})
        clock.now = 60.0
        fs2 = make_fs({"/src/b.cu": "b"})
        run_command(cache, fs2, command="make b", reads=["/src/b.cu"],
                    writes={"/build/out": blob})
        clock.now = 150.0  # first entry idle 150s > ttl; second only 90s
        cache.sweep()
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["blobs"] == 1
        assert cache.verify() == []
        clock.now = 250.0
        cache.sweep()
        assert cache.stats() == dict(cache.stats(), entries=0, blobs=0,
                                     blob_bytes=0)

    def test_lru_byte_budget_evicts_oldest(self):
        clock = FakeClock()
        cache = BuildCache(clock, max_bytes=100)
        for i in range(5):
            clock.now = float(i)
            fs = make_fs({"/src/main.cu": f"v{i}"})
            run_command(cache, fs, reads=["/src/main.cu"],
                        writes={"/build/out": bytes([i]) * 40})
        assert cache.total_blob_bytes <= 100
        assert cache.evict_count >= 3
        assert cache.verify() == []
        # The newest entry survived.
        fs = make_fs({"/src/main.cu": "v4"})
        assert cache.lookup(IMG, "/build", "make", fs) is not None

    def test_recapture_same_key_replaces_entry(self):
        cache = BuildCache(FakeClock())
        fs = make_fs({"/src/main.cu": "v1"})
        run_command(cache, fs, reads=["/src/main.cu"],
                    writes={"/build/out": b"first"})
        run_command(cache, fs, reads=["/src/main.cu"],
                    writes={"/build/out": b"second"})
        assert cache.entry_count == 1
        assert cache.stats()["blobs"] == 1
        assert cache.verify() == []


class TestSnapshotRestore:
    def _populated(self):
        cache = BuildCache(FakeClock(), max_bytes=1 << 20)
        blob = b"shared artifact"
        for i, cmd in enumerate(("cmake /src", "make")):
            fs = make_fs({"/src/main.cu": "same"})
            run_command(cache, fs, command=cmd, reads=["/src/main.cu"],
                        writes={"/build/out": blob},
                        source_digest="srcdigest")
        return cache

    def test_round_trip_rebuilds_refcounts(self):
        cache = self._populated()
        snap = cache.to_snapshot()
        restored = BuildCache(FakeClock())
        summary = restored.install_snapshot(snap)
        assert summary["entries"] == 2
        assert summary["dropped_entries"] == 0
        assert restored.verify() == []
        assert restored.stats()["blobs"] == 1  # still shared, no dupes
        assert restored.total_blob_bytes == cache.total_blob_bytes
        # Entries still hit after restore.
        fs = make_fs({"/src/main.cu": "same"})
        assert restored.lookup(IMG, "/build", "make", fs) is not None
        # The scheduler's hit predictor memory survived too.
        assert restored.seen_source("srcdigest")

    def test_torn_entry_dropped_not_half_restored(self):
        cache = self._populated()
        snap = cache.to_snapshot()
        snap["blobs"] = {}  # lose every payload
        restored = BuildCache(FakeClock())
        summary = restored.install_snapshot(snap)
        assert summary["entries"] == 0
        assert summary["dropped_entries"] == 2
        assert restored.verify() == []

    def test_json_round_trip(self):
        import json

        cache = self._populated()
        snap = json.loads(json.dumps(cache.to_snapshot()))
        restored = BuildCache(FakeClock())
        restored.install_snapshot(snap)
        assert restored.verify() == []
        assert restored.entry_count == 2
