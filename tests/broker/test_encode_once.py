"""Encode-once publishing: one serialization per publish, shared fan-out."""

import json

import pytest

from repro.broker import Consumer, MessageBroker
from repro.broker import message as message_mod
from repro.broker.message import Message, encode_body


@pytest.fixture
def broker(sim):
    return MessageBroker(sim)


@pytest.fixture
def counting_encoder(monkeypatch):
    """Wrap the module-level encoder so every real encode is counted."""
    calls = {"n": 0}
    real = encode_body

    def counted(body):
        calls["n"] += 1
        return real(body)

    monkeypatch.setattr(message_mod, "encode_body", counted)
    return calls


class TestEncodeOnce:
    def test_publish_encodes_exactly_once(self, broker, counting_encoder):
        msg = broker.publish("rai", {"job_id": "job-1", "blob": "x" * 500})
        assert counting_encoder["n"] == 1
        # Reading the payload and size afterwards reuses the cached bytes.
        _ = msg.payload
        _ = msg.encoded_size()
        _ = msg.encoded_size()
        assert counting_encoder["n"] == 1

    def test_fanout_copies_share_payload(self, broker, counting_encoder):
        for i in range(3):
            Consumer(broker, f"rai/channel-{i}")
        original = broker.publish("rai", {"n": 1})
        assert counting_encoder["n"] == 1
        copies = [broker.topic("rai").channels[f"channel-{i}"].items[-1]
                  for i in range(3)]
        for copy in copies:
            assert copy is not original
            assert copy.payload is original.payload
        assert counting_encoder["n"] == 1

    def test_ten_channel_fanout_still_one_encode(self, broker,
                                                 counting_encoder):
        for i in range(10):
            Consumer(broker, f"rai/c{i}")
        for _ in range(5):
            broker.publish("rai", {"payload": list(range(50))})
        assert counting_encoder["n"] == 5

    def test_size_limit_checked_against_encoded_payload(self, sim):
        broker = MessageBroker(sim, max_message_bytes=64)
        from repro.errors import MessageTooLarge
        with pytest.raises(MessageTooLarge):
            broker.publish("rai", {"blob": "x" * 100})

    def test_payload_bytes_match_body(self, broker):
        msg = broker.publish("rai", {"a": 1, "b": "two"})
        assert json.loads(msg.payload.decode("utf-8")) == \
            {"a": 1, "b": "two"}
        assert msg.encoded_size() == len(msg.payload)

    def test_lazy_message_encodes_on_demand(self, counting_encoder):
        msg = Message(topic="t", body={"n": 1}, timestamp=0.0)
        assert counting_encoder["n"] == 0
        size = msg.encoded_size()
        assert size == len(encode_body({"n": 1}))
        assert counting_encoder["n"] == 1
        _ = msg.payload
        assert counting_encoder["n"] == 1
