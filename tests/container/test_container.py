"""Unit tests for the container state machine and resource limits."""

import pytest

from repro.container import (
    ContainerRuntime,
    ContainerState,
    ResourceLimits,
    VolumeMount,
    cuda_volume,
)
from repro.errors import (
    ContainerStateError,
    ImageNotFound,
    ImageNotWhitelisted,
)
from repro.gpu import get_device
from repro.vfs import VirtualFileSystem


def project(marker="// @rai-sim quality=0.5"):
    fs = VirtualFileSystem()
    fs.import_mapping({
        "main.cu": marker + "\nint main(){}\n",
        "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
    }, "/")
    return fs


def build_container(rt=None, limits=None, marker="// @rai-sim quality=0.5"):
    rt = rt or ContainerRuntime()
    c = rt.create_container(
        "webgpu/rai:root",
        limits=limits,
        mounts=[VolumeMount("/src", read_only=True, source_fs=project(marker)),
                cuda_volume()],
        gpu_device=get_device("K80"))
    c.start()
    c.exec_line("cmake /src")
    c.exec_line("make")
    return c


class TestLifecycle:
    def test_states(self):
        rt = ContainerRuntime()
        c = rt.create_container("webgpu/rai:root")
        assert c.state is ContainerState.CREATED
        c.start()
        assert c.state is ContainerState.RUNNING
        c.stop()
        assert c.state is ContainerState.EXITED
        rt.destroy_container(c)
        assert c.state is ContainerState.DESTROYED

    def test_exec_requires_running(self):
        rt = ContainerRuntime()
        c = rt.create_container("webgpu/rai:root")
        with pytest.raises(ContainerStateError):
            c.exec_line("echo hi")

    def test_double_start_rejected(self):
        rt = ContainerRuntime()
        c = rt.create_container("webgpu/rai:root")
        c.start()
        with pytest.raises(ContainerStateError):
            c.start()

    def test_destroy_releases_filesystem(self):
        rt = ContainerRuntime()
        c = rt.create_container("webgpu/rai:root")
        rt.destroy_container(c)
        assert c.fs is None
        assert rt.live_count == 0


class TestWhitelist:
    def test_whitelisted_images_allowed(self):
        rt = ContainerRuntime()
        for image in ("webgpu/rai:root", "webgpu/rai:minimal"):
            rt.create_container(image)

    def test_unlisted_image_rejected(self):
        rt = ContainerRuntime()
        with pytest.raises(ImageNotWhitelisted):
            rt.create_container("sketchy/custom:latest")

    def test_unknown_image_rejected(self):
        rt = ContainerRuntime()
        with pytest.raises(ImageNotFound):
            rt.registry.set_whitelist(["ghost:latest"])
            rt.create_container("ghost:latest")


class TestImageCache:
    def test_first_pull_costs_later_free(self):
        rt = ContainerRuntime()
        first = rt.pull_cost_seconds("webgpu/rai:root")
        assert first > 0
        rt.create_container("webgpu/rai:root")
        assert rt.pull_cost_seconds("webgpu/rai:root") == 0.0

    def test_pull_time_scales_with_size(self):
        rt = ContainerRuntime()
        big = rt.pull_cost_seconds("webgpu/rai:root")
        small = rt.pull_cost_seconds("webgpu/rai:minimal")
        assert big > small


class TestMemoryLimit:
    def test_oom_kill(self):
        # The course default is 8 GB; this program declares 12 GB.
        c = build_container(marker="// @rai-sim quality=0.5 mem_gb=12")
        result = c.exec_line("./ece408 /data/test10.hdf5 /data/model.hdf5")
        assert result.exit_code == 137
        assert "oom" in result.error
        assert c.state is ContainerState.OOM_KILLED

    def test_within_limit_survives(self):
        c = build_container(marker="// @rai-sim quality=0.5 mem_gb=4")
        result = c.exec_line("./ece408 /data/test10.hdf5 /data/model.hdf5")
        assert result.exit_code == 0
        assert c.peak_memory == pytest.approx(4 * 2**30)

    def test_raised_limit_allows_more(self):
        limits = ResourceLimits(memory_bytes=16 * 2**30)
        c = build_container(limits=limits,
                            marker="// @rai-sim quality=0.5 mem_gb=12")
        result = c.exec_line("./ece408 /data/test10.hdf5 /data/model.hdf5")
        assert result.exit_code == 0


class TestLifetimeLimit:
    def test_timeout_kill(self):
        limits = ResourceLimits(max_lifetime_seconds=100.0)
        c = build_container(limits=limits)
        result = c.exec_line("sleep 200")
        assert result.exit_code == 124
        assert c.state is ContainerState.TIMED_OUT

    def test_hang_marker_hits_lifetime_cap(self):
        limits = ResourceLimits(max_lifetime_seconds=60.0)
        c = build_container(limits=limits,
                            marker="// @rai-sim runtime=hang")
        result = c.exec_line("./ece408 /data/test10.hdf5 /data/model.hdf5")
        assert result.exit_code == 124

    def test_lifetime_accumulates_across_commands(self):
        limits = ResourceLimits(max_lifetime_seconds=10.0)
        c = build_container(limits=limits)
        assert c.exec_line("sleep 6").exit_code == 0
        assert c.exec_line("sleep 6").exit_code == 124


class TestNetworkIsolation:
    def test_network_denied_by_default(self):
        c = build_container()
        result = c.exec_line("wget http://example.com/x")
        assert result.exit_code == 101

    def test_phone_home_program_denied(self):
        c = build_container(
            marker="// @rai-sim quality=0.5 net=phone-home")
        result = c.exec_line("./ece408 /data/test10.hdf5 /data/model.hdf5")
        assert result.exit_code == 101

    def test_network_can_be_enabled_by_config(self):
        limits = ResourceLimits(network_enabled=True)
        c = build_container(limits=limits)
        assert c.exec_line("wget http://example.com/x").exit_code == 0


class TestOutputLimit:
    def test_log_flood_is_killed(self):
        limits = ResourceLimits(max_output_bytes=1024)
        c = build_container(limits=limits)
        result = c.exec_line("echo " + "x" * 2000)
        assert result.exit_code == 137


class TestLimitsValidation:
    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            ResourceLimits(memory_bytes=0)
        with pytest.raises(ValueError):
            ResourceLimits(max_lifetime_seconds=-1)

    def test_paper_defaults(self):
        limits = ResourceLimits()
        assert limits.memory_bytes == 8 * 2**30
        assert limits.max_lifetime_seconds == 3600.0
        assert not limits.network_enabled


class TestOutputStreaming:
    def test_on_output_callback_receives_streams(self):
        rt = ContainerRuntime()
        seen = []
        c = rt.create_container(
            "webgpu/rai:root",
            on_output=lambda stream, text: seen.append((stream, text)))
        c.start()
        c.exec_line("echo to-stdout")
        c.exec_line("cat /missing")
        streams = {s for s, _ in seen}
        assert streams == {"stdout", "stderr"}
