"""Sharded control plane — submission throughput across partition counts.

Not a paper figure: this bench tracks what partitioning the control plane
buys (ISSUE 8).  The single-queue plane runs the fair-share scheduler's
O(depth) scan over the whole backlog on every dispatch; sharding splits
backlog *and* team set N ways, so each of the N independent schedulers
scans ~1/N of both.  The bench drives the same deadline storm — fixed
executor fleet, fixed arrival process — through 1, 2, 4, and 8
partitions and reports wall-clock submissions/s, then asserts the
acceptance floors: >= 3x throughput at 8 partitions, and the two
determinism contracts (``shards=1`` reproduces the pre-shard golden
digest byte-for-byte; same-seed sharded runs agree with each other).

Methodology notes:

- Each ladder point runs in a fresh interpreter (one subprocess per
  partition count, best-of-``reps`` interleaved across the ladder), for
  the same reason as ``bench_kernel``: shared-heap runs inherit
  allocator state from whatever ran before them.
- The executor fleet does **not** grow with the partition count — eight
  workers serve the storm at every ladder point, spread round-robin over
  the partitions — so the ratio isolates control-plane parallelism, not
  added capacity.

Run: ``pytest benchmarks/bench_shard.py -s``
"""

import json
import os
import subprocess
import sys

from benchmarks.conftest import print_banner
from repro.core.config import SystemConfig
from repro.workload.shardbench import (
    GOLDEN_DIGEST,
    SHARD_STORM,
    control_plane_digest,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_PATH = os.path.join(_REPO_ROOT, "BENCH_shard.json")

_LADDER = (1, 2, 4, 8)

_RUN_SNIPPET = (
    "import json, sys\n"
    "from repro.workload.shardbench import run_shard_workload, SHARD_STORM\n"
    "r = run_shard_workload(SHARD_STORM, int(sys.argv[1]))\n"
    "print(json.dumps(r.to_dict()))\n"
)


def _run_storm(partitions: int) -> dict:
    """One storm at ``partitions`` in a fresh interpreter."""
    env = dict(os.environ)
    src = os.path.join(_REPO_ROOT, "src")
    prev = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + prev if prev else "")
    proc = subprocess.run(
        [sys.executable, "-c", _RUN_SNIPPET, str(partitions)],
        capture_output=True, text=True, env=env, check=True)
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _run_ladder(reps: int = 2):
    """Best-of-``reps`` walls per partition count, interleaved.

    Interleaving spreads a slow patch of the machine across the whole
    ladder instead of biasing one point; every rep's digest must match
    the kept run's (same seed, fresh interpreter — the determinism
    contract for the sharded path).
    """
    best = {}
    for _ in range(reps):
        for p in _LADDER:
            run = _run_storm(p)
            kept = best.get(p)
            if kept is not None:
                assert run["trace_digest"] == kept["trace_digest"], p
            if kept is None or run["wall_s"] < kept["wall_s"]:
                best[p] = run
    return [best[p] for p in _LADDER]


def test_shard_throughput(benchmark):
    def run_all():
        ladder = _run_ladder()
        # Full-system digest checks are cheap; run them in-process.
        digests = {
            "default": control_plane_digest(),
            "shards_1": control_plane_digest(config=SystemConfig(shards=1)),
            "shards_4_a": control_plane_digest(
                config=SystemConfig(shards=4)),
            "shards_4_b": control_plane_digest(
                config=SystemConfig(shards=4)),
        }
        return ladder, digests

    ladder, digests = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base = ladder[0]

    print_banner("Sharded control plane — submission throughput 1 -> 8 "
                 "partitions (fixed fleet)")
    print(f"storm: {SHARD_STORM.n_teams} teams, "
          f"{SHARD_STORM.n_submissions:,} submissions, "
          f"{SHARD_STORM.n_workers} workers x {SHARD_STORM.worker_slots} "
          f"slots, peak backlog {base['peak_queue_depth']:,}")
    print(f"\n{'parts':<7}{'wall s':>8}{'subs/s':>9}{'speedup':>9}"
          f"{'steals':>8}{'routed (per partition)':>28}")
    for run in ladder:
        speedup = run["submissions_per_s"] / base["submissions_per_s"]
        routed = ",".join(str(r) for r in run["routed"])
        print(f"p{run['partitions']:<6}{run['wall_s']:>8.2f}"
              f"{run['submissions_per_s']:>9,}{speedup:>8.2f}x"
              f"{run['steals']:>8}{routed:>28}")

    p8 = ladder[-1]
    p8_speedup = p8["submissions_per_s"] / base["submissions_per_s"]
    print(f"\nshards=1 golden digest: "
          f"{'MATCH' if digests['shards_1'][0] == GOLDEN_DIGEST else 'DIFF'}")

    # --- acceptance floors (ISSUE 8) -------------------------------------
    # >= 3x submission throughput at 8 partitions vs the single queue.
    assert p8_speedup >= 3.0, p8_speedup
    # Every ladder point completed the whole storm, work-stealing active
    # on every multi-partition point.
    for run in ladder:
        assert run["submissions"] == SHARD_STORM.n_submissions
        if run["partitions"] > 1:
            assert run["steals"] > 0, run["partitions"]
    # Determinism: sharding *off* is byte-identical to the pre-shard
    # control plane, and sharding *on* is reproducible run-to-run.
    assert digests["default"][0] == GOLDEN_DIGEST
    assert digests["shards_1"][0] == GOLDEN_DIGEST
    assert digests["shards_4_a"] == digests["shards_4_b"]
    # Sharding may reorder deliveries relative to the single queue (that
    # is the point), but never loses or fails work.
    assert digests["shards_4_a"][1] == ["succeeded"]

    payload = {
        "bench": "shard",
        "source": "benchmarks/bench_shard.py",
        "storm": {"n_teams": SHARD_STORM.n_teams,
                  "n_submissions": SHARD_STORM.n_submissions,
                  "n_workers": SHARD_STORM.n_workers,
                  "worker_slots": SHARD_STORM.worker_slots},
        "ladder": ladder,
        "speedup_vs_p1": {
            f"p{run['partitions']}": round(
                run["submissions_per_s"] / base["submissions_per_s"], 2)
            for run in ladder},
        "determinism": {
            "golden_digest": GOLDEN_DIGEST,
            "default_matches_golden":
                digests["default"][0] == GOLDEN_DIGEST,
            "shards_1_matches_golden":
                digests["shards_1"][0] == GOLDEN_DIGEST,
            "shards_4_reproducible":
                digests["shards_4_a"] == digests["shards_4_b"],
            "shards_4_digest": digests["shards_4_a"][0],
        },
    }
    with open(_OUT_PATH, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"\nwrote {_OUT_PATH}")
