"""Unit tests for VFS path algebra."""

import pytest

from repro.vfs.path import (
    basename,
    is_within,
    join,
    normalize,
    parent_of,
    split_parts,
)


class TestNormalize:
    @pytest.mark.parametrize("raw,expected", [
        ("/a/b", "/a/b"),
        ("a/b", "/a/b"),
        ("/a//b/", "/a/b"),
        ("/a/./b", "/a/b"),
        ("/a/../b", "/b"),
        ("/../..", "/"),
        ("", "/"),
        ("/", "/"),
        ("/a/b/../../c", "/c"),
    ])
    def test_cases(self, raw, expected):
        assert normalize(raw) == expected

    def test_dotdot_cannot_escape_root(self):
        assert normalize("/../../../etc/passwd") == "/etc/passwd"


class TestSplitParts:
    def test_root_is_empty(self):
        assert split_parts("/") == ()

    def test_components(self):
        assert split_parts("/a/b/c") == ("a", "b", "c")


class TestJoin:
    def test_relative(self):
        assert join("/a", "b", "c") == "/a/b/c"

    def test_absolute_restarts(self):
        assert join("/a/b", "/x", "y") == "/x/y"

    def test_dotdot_in_join(self):
        assert join("/a/b", "../c") == "/a/c"


class TestParentBase:
    def test_parent(self):
        assert parent_of("/a/b/c") == "/a/b"
        assert parent_of("/a") == "/"
        assert parent_of("/") == "/"

    def test_basename(self):
        assert basename("/a/b/c.txt") == "c.txt"
        assert basename("/") == ""


class TestIsWithin:
    def test_self(self):
        assert is_within("/a/b", "/a/b")

    def test_child(self):
        assert is_within("/a/b/c", "/a/b")

    def test_sibling_not_within(self):
        assert not is_within("/a/bc", "/a/b")

    def test_root_contains_all(self):
        assert is_within("/anything", "/")
