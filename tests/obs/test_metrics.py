"""Unit tests for the unified metrics registry."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    CounterGroup,
    Gauge,
    Histogram,
    MetricsRegistry,
)

pytestmark = pytest.mark.obs


class TestCounter:
    def test_monotonic(self):
        registry = MetricsRegistry()
        c = registry.counter("jobs")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert registry.value("jobs") == 5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("jobs")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        registry.counter("hits", worker="w1").inc(3)
        registry.counter("hits", worker="w2").inc(5)
        assert registry.value("hits", worker="w1") == 3
        assert registry.value("hits", worker="w2") == 5
        assert registry.total("hits") == 8
        assert len(registry.series("hits")) == 2

    def test_label_order_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("x", a="1", b="2").inc()
        assert registry.value("x", b="2", a="1") == 1


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.dec(3)
        g.inc(1)
        assert g.value == 8

    def test_callback_backed(self):
        registry = MetricsRegistry()
        state = {"n": 7}
        g = registry.gauge("live", fn=lambda: state["n"])
        assert g.value == 7
        state["n"] = 9
        assert g.value == 9
        with pytest.raises(ValueError):
            g.set(1)
        with pytest.raises(ValueError):
            g.inc()

    def test_late_bound_callback(self):
        registry = MetricsRegistry()
        registry.gauge("live")
        g = registry.gauge("live", fn=lambda: 42)
        assert g.value == 42


class TestHistogram:
    def test_observe_and_summary(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 50.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(105.5)
        assert h.min == 0.5
        assert h.max == 50.0
        assert h.value == pytest.approx(105.5 / 4)

    def test_percentile_interpolates(self):
        h = MetricsRegistry().histogram("lat", buckets=(10.0, 20.0, 30.0))
        for v in (1.0, 11.0, 21.0, 29.0):
            h.observe(v)
        p50 = h.percentile(50)
        assert 10.0 <= p50 <= 20.0
        # Interpolation resolves to the bucket bound, not the exact max.
        assert h.percentile(100) == pytest.approx(30.0)

    def test_empty_percentile_zero(self):
        # An empty histogram reports 0.0 so report code needs no NaN
        # guard per call site; the mean stays NaN (no meaningful value).
        h = MetricsRegistry().histogram("lat")
        assert h.percentile(50) == 0.0
        assert h.percentile(95) == 0.0
        assert math.isnan(h.value)

    def test_percentile_bucket_boundaries(self):
        h = MetricsRegistry().histogram("lat", buckets=(10.0, 20.0, 30.0))
        # Exactly on a bound lands in that bound's bucket (<=).
        for v in (10.0, 20.0, 30.0):
            h.observe(v)
        assert h.bucket_counts[:3] == [1, 1, 1]
        assert h.percentile(100) == pytest.approx(30.0)
        # A single observation: every percentile within its bucket.
        single = MetricsRegistry().histogram("one", buckets=(10.0,))
        single.observe(5.0)
        assert 5.0 <= single.percentile(50) <= 10.0
        # Overflow bucket: interpolation is bounded by the observed max.
        over = MetricsRegistry().histogram("over", buckets=(1.0,))
        over.observe(100.0)
        assert over.percentile(99) <= 100.0

    def test_to_dict_buckets(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(99.0)
        d = h.to_dict()
        assert d["count"] == 3
        assert d["buckets"]["1"] == 1
        assert d["buckets"]["2"] == 1
        assert d["buckets"]["inf"] == 1


class TestRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TypeError):
            registry.gauge("thing")
        with pytest.raises(TypeError):
            registry.histogram("thing")

    def test_get_missing_returns_none_and_zero(self):
        registry = MetricsRegistry()
        assert registry.get("nope") is None
        assert registry.value("nope") == 0.0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", k="v").inc(2)
        registry.gauge("g").set(3)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert snap["counters"]["c"]["k=v"] == 2
        assert snap["gauges"]["g"][""] == 3
        assert snap["histograms"]["h"][""]["count"] == 1

    def test_len_and_iter(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        assert len(registry) == 2
        assert {m.name for m in registry} == {"a", "b"}

    def test_gauges_iterator(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.gauge("c", collection="x")
        gauges = list(registry.gauges())
        assert all(isinstance(g, Gauge) for g in gauges)
        assert {g.name for g in gauges} == {"b", "c"}


class TestCounterGroup:
    def test_legacy_surface(self):
        registry = MetricsRegistry()
        group = CounterGroup(registry, prefix="broker_")
        group.incr("published")
        group.incr("published", 2)
        group.incr("bytes", 100)
        assert group.get("published") == 3
        assert group.get("missing") == 0
        assert group.as_dict() == {"published": 3, "bytes": 100}
        # The data actually lives in the shared registry, prefixed.
        assert registry.value("broker_published") == 3

    def test_unprefixed_group_excludes_other_kinds(self):
        registry = MetricsRegistry()
        group = CounterGroup(registry)
        group.incr("jobs")
        registry.gauge("depth").set(5)
        registry.counter("labelled", k="v").inc()
        # Gauges and labelled counters don't leak into the legacy dict.
        assert group.as_dict() == {"jobs": 1}
