"""Unit tests for collections and the database."""

import pytest

from repro.docdb import DocumentDB
from repro.errors import DuplicateKeyError


@pytest.fixture
def db():
    return DocumentDB()


@pytest.fixture
def runs(db):
    coll = db["runs"]
    coll.insert_many([
        {"team": "t1", "time": 2.5, "kind": "run"},
        {"team": "t2", "time": 0.8, "kind": "final"},
        {"team": "t3", "time": 1.1, "kind": "final"},
    ])
    return coll


class TestInsert:
    def test_generates_ids(self, db):
        coll = db["c"]
        first = coll.insert_one({"a": 1})
        second = coll.insert_one({"a": 2})
        assert first != second
        assert coll.find_one({"_id": first})["a"] == 1

    def test_explicit_id_respected(self, db):
        db["c"].insert_one({"_id": "mine", "a": 1})
        assert db["c"].find_one({"_id": "mine"}) is not None

    def test_duplicate_id_rejected(self, db):
        db["c"].insert_one({"_id": "x"})
        with pytest.raises(DuplicateKeyError):
            db["c"].insert_one({"_id": "x"})

    def test_non_dict_rejected(self, db):
        from repro.errors import DocDbError

        with pytest.raises(DocDbError):
            db["c"].insert_one(["not", "a", "doc"])

    def test_insert_isolates_caller_object(self, db):
        doc = {"a": {"b": 1}}
        db["c"].insert_one(doc)
        doc["a"]["b"] = 999
        assert db["c"].find_one({})["a"]["b"] == 1


class TestFind:
    def test_find_all(self, runs):
        assert runs.find().count() == 3

    def test_find_filtered(self, runs):
        assert runs.find({"kind": "final"}).count() == 2

    def test_find_one_none_when_missing(self, runs):
        assert runs.find_one({"team": "ghost"}) is None

    def test_sort_limit_skip(self, runs):
        teams = [d["team"] for d in
                 runs.find().sort([("time", 1)]).skip(1).limit(1)]
        assert teams == ["t3"]

    def test_sort_descending(self, runs):
        times = [d["time"] for d in runs.find().sort([("time", -1)])]
        assert times == [2.5, 1.1, 0.8]

    def test_projection_include(self, runs):
        doc = runs.find_one({"team": "t1"}, projection={"time": 1})
        assert set(doc) == {"_id", "time"}

    def test_projection_exclude(self, runs):
        doc = runs.find_one({"team": "t1"},
                            projection={"time": 0, "_id": 0})
        assert set(doc) == {"team", "kind"}

    def test_results_are_isolated_copies(self, runs):
        doc = runs.find_one({"team": "t1"})
        doc["time"] = 999
        assert runs.find_one({"team": "t1"})["time"] == 2.5

    def test_count_documents(self, runs):
        assert runs.count_documents() == 3
        assert runs.count_documents({"time": {"$lt": 2}}) == 2

    def test_distinct(self, runs):
        assert sorted(runs.distinct("kind")) == ["final", "run"]


class TestUpdate:
    def test_update_one(self, runs):
        modified = runs.update_one({"team": "t1"}, {"$set": {"time": 1.0}})
        assert modified == 1
        assert runs.find_one({"team": "t1"})["time"] == 1.0

    def test_update_many(self, runs):
        modified = runs.update_many({"kind": "final"},
                                    {"$inc": {"time": 10}})
        assert modified == 2

    def test_no_match_returns_zero(self, runs):
        assert runs.update_one({"team": "ghost"}, {"$set": {"x": 1}}) == 0

    def test_upsert_inserts(self, runs):
        runs.update_one({"team": "t9"},
                        {"$set": {"time": 3.3}}, upsert=True)
        doc = runs.find_one({"team": "t9"})
        assert doc["time"] == 3.3
        assert doc["team"] == "t9"   # filter fields seed the new doc

    def test_upsert_updates_when_exists(self, runs):
        runs.update_one({"team": "t1"},
                        {"$set": {"time": 9.9}}, upsert=True)
        assert runs.count_documents({"team": "t1"}) == 1

    def test_replace_one(self, runs):
        runs.replace_one({"team": "t1"}, {"team": "t1", "fresh": True})
        doc = runs.find_one({"team": "t1"})
        assert doc["fresh"] is True
        assert "time" not in doc


class TestDelete:
    def test_delete_one(self, runs):
        assert runs.delete_one({"kind": "final"}) == 1
        assert runs.count_documents({"kind": "final"}) == 1

    def test_delete_many(self, runs):
        assert runs.delete_many({"kind": "final"}) == 2
        assert runs.count_documents() == 1

    def test_delete_no_match(self, runs):
        assert runs.delete_many({"team": "ghost"}) == 0


class TestIndexes:
    def test_unique_index_blocks_duplicates(self, db):
        coll = db["rank"]
        coll.create_index("team", unique=True)
        coll.insert_one({"team": "t1"})
        with pytest.raises(DuplicateKeyError):
            coll.insert_one({"team": "t1"})

    def test_unique_index_blocks_update_collision(self, db):
        coll = db["rank"]
        coll.create_index("team", unique=True)
        coll.insert_one({"team": "t1"})
        coll.insert_one({"team": "t2"})
        with pytest.raises(DuplicateKeyError):
            coll.update_one({"team": "t2"}, {"$set": {"team": "t1"}})
        # failed update must not corrupt the index
        assert coll.count_documents({"team": "t2"}) == 1

    def test_index_backfills_existing_docs(self, db):
        coll = db["c"]
        coll.insert_one({"team": "t1"})
        coll.insert_one({"team": "t1"})
        with pytest.raises(DuplicateKeyError):
            coll.create_index_unique_fail = coll.create_index("team",
                                                              unique=True)

    def test_index_fast_path_equals_scan(self, db):
        coll = db["c"]
        for i in range(20):
            coll.insert_one({"team": f"t{i % 5}", "n": i})
        scan = sorted(d["n"] for d in coll.find({"team": "t3"}))
        coll.create_index("team")
        indexed = sorted(d["n"] for d in coll.find({"team": "t3"}))
        assert scan == indexed

    def test_index_updated_on_delete(self, db):
        coll = db["c"]
        index = coll.create_index("team", unique=True)
        coll.insert_one({"team": "t1"})
        coll.delete_one({"team": "t1"})
        coll.insert_one({"team": "t1"})  # no duplicate error


class TestDatabase:
    def test_collections_namespaced(self, db):
        db["a"].insert_one({})
        db["b"].insert_one({})
        assert db.collection_names() == ["a", "b"]
        assert db.total_documents() == 2

    def test_drop_collection(self, db):
        db["a"].insert_one({})
        db.drop_collection("a")
        assert db.collection_names() == []

    def test_size_estimate_grows(self, db):
        before = db.estimated_size_bytes()
        db["a"].insert_one({"payload": "x" * 1000})
        assert db.estimated_size_bytes() > before + 900

    def test_stats(self, db):
        db["a"].insert_one({})
        stats = db.stats()
        assert stats["collections"] == {"a": 1}
