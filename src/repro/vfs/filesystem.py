"""The virtual filesystem proper."""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.errors import (
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
    ReadOnlyFilesystem,
)
from repro.vfs.node import DirNode, FileNode
from repro.vfs.path import is_within, normalize, parent_of, split_parts

Node = Union[FileNode, DirNode]


class AccessTrace:
    """What one tracked window of filesystem activity touched.

    ``inputs`` maps each path *read* (or probed) to a content descriptor:

    - ``"file:<sha256>"`` — the file's content digest at read time;
    - ``"tree:<sha256>"`` — digest of the sorted file-name listing under a
      walked directory (enumeration is an input: a command that globs a
      tree must be invalidated when a file is added or removed, even if it
      never reads the newcomer);
    - ``"dir"`` / ``"absent"`` — existence probes (``isfile``/``isdir``/
      ``exists``) and failed reads.

    ``writes`` is the set of paths the window mutated (file writes,
    directory creation, removals, copy/move targets).  A path written
    before it is read is *not* an input — its observed content was the
    window's own intermediate state, not outside state.
    """

    __slots__ = ("inputs", "writes")

    def __init__(self):
        self.inputs: Dict[str, str] = {}
        self.writes: Set[str] = set()

    def note_input(self, path: str, descriptor: str) -> None:
        if path in self.writes:
            return
        existing = self.inputs.get(path)
        if existing is None:
            self.inputs[path] = descriptor
        elif existing == "file" and descriptor.startswith("file:"):
            # A bare existence probe followed by an actual read upgrades to
            # the content digest — the stronger observation wins.
            self.inputs[path] = descriptor
        elif existing == "dir" and descriptor.startswith(("tree:", "list:")):
            self.inputs[path] = descriptor
        elif existing == "list:" and descriptor.startswith("tree:"):
            self.inputs[path] = descriptor

    def note_write(self, path: str) -> None:
        self.writes.add(path)


def file_digest(data: bytes) -> str:
    """SHA-256 content digest used by access tracking and build caching."""
    return hashlib.sha256(data).hexdigest()


def tree_signature(top: str, node: DirNode) -> str:
    """Digest of the sorted *file-path* listing under ``node``.

    Names only, no content — editing a file leaves its tree signature
    alone, while adding or removing one changes it.  This is exactly the
    sensitivity a directory enumeration (walk/glob) has.
    """
    names: List[str] = []

    def rec(path: str, dirnode: DirNode) -> None:
        for name in sorted(dirnode.children):
            child = dirnode.children[name]
            cpath = path.rstrip("/") + "/" + name if path != "/" else "/" + name
            if isinstance(child, DirNode):
                rec(cpath, child)
            else:
                names.append(cpath)

    rec(top, node)
    return file_digest("\n".join(names).encode())


class VirtualFileSystem:
    """An in-memory tree of files and directories.

    Parameters
    ----------
    clock:
        Optional zero-argument callable supplying mtimes (normally the
        simulator's ``lambda: sim.now``); defaults to a constant ``0.0`` so
        that filesystems built outside a simulation stay deterministic.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.root = DirNode()
        self._clock = clock or (lambda: 0.0)
        #: Directory prefixes that reject writes (used for the ``/src``
        #: read-only project mount inside containers).
        self._readonly_prefixes: List[str] = []
        #: Active :class:`AccessTrace`, or ``None`` when not tracking.
        self._trace: Optional[AccessTrace] = None
        #: Tops already folded into a tree signature this window (a
        #: recursive walk must not re-record every subdirectory).
        self._walked: List[str] = []

    # -- access tracking -----------------------------------------------------

    def start_tracking(self) -> AccessTrace:
        """Begin recording reads/probes/writes; returns the live trace."""
        self._trace = AccessTrace()
        self._walked = []
        return self._trace

    def stop_tracking(self) -> Optional[AccessTrace]:
        trace, self._trace = self._trace, None
        self._walked = []
        return trace

    def _note_probe(self, path: str) -> None:
        if self._trace is None:
            return
        path = normalize(path)
        try:
            node = self._resolve(path)
        except (FileNotFound, NotADirectory):
            self._trace.note_input(path, "absent")
            return
        self._trace.note_input(
            path, "dir" if isinstance(node, DirNode) else "file")

    def _note_write(self, path: str) -> None:
        if self._trace is not None:
            self._trace.note_write(normalize(path))

    def _note_tree(self, top: str) -> None:
        """Record a walk of ``top`` as a name-enumeration input."""
        if self._trace is None:
            return
        for prior in self._walked:
            if is_within(top, prior):
                return
        try:
            node = self._resolve_dir(top)
        except (FileNotFound, NotADirectory):
            self._trace.note_input(top, "absent")
            return
        self._walked.append(top)
        self._trace.note_input(top, "tree:" + tree_signature(top, node))

    # -- read-only enforcement ----------------------------------------------

    def set_readonly(self, prefix: str) -> None:
        """Make ``prefix`` and everything beneath it immutable."""
        self._readonly_prefixes.append(normalize(prefix))

    def clear_readonly(self, prefix: str) -> None:
        self._readonly_prefixes.remove(normalize(prefix))

    def _check_writable(self, path: str) -> None:
        for prefix in self._readonly_prefixes:
            if is_within(path, prefix):
                raise ReadOnlyFilesystem(f"{path} is read-only (under {prefix})")

    # -- resolution -----------------------------------------------------------

    def _resolve(self, path: str) -> Node:
        node: Node = self.root
        for part in split_parts(path):
            if not isinstance(node, DirNode):
                raise NotADirectory(path)
            try:
                node = node.children[part]
            except KeyError:
                raise FileNotFound(path) from None
        return node

    def _resolve_dir(self, path: str) -> DirNode:
        node = self._resolve(path)
        if not isinstance(node, DirNode):
            raise NotADirectory(path)
        return node

    def _resolve_file(self, path: str) -> FileNode:
        node = self._resolve(path)
        if isinstance(node, DirNode):
            raise IsADirectory(path)
        return node

    # -- queries -----------------------------------------------------------

    def exists(self, path: str) -> bool:
        self._note_probe(path)
        try:
            self._resolve(path)
            return True
        except (FileNotFound, NotADirectory):
            return False

    def isfile(self, path: str) -> bool:
        self._note_probe(path)
        try:
            return isinstance(self._resolve(path), FileNode)
        except (FileNotFound, NotADirectory):
            return False

    def isdir(self, path: str) -> bool:
        self._note_probe(path)
        try:
            return isinstance(self._resolve(path), DirNode)
        except (FileNotFound, NotADirectory):
            return False

    def listdir(self, path: str = "/") -> List[str]:
        entries = sorted(self._resolve_dir(path).children)
        if self._trace is not None:
            self._trace.note_input(
                normalize(path),
                "list:" + file_digest("\n".join(entries).encode()))
        return entries

    def read_file(self, path: str) -> bytes:
        if self._trace is None:
            return self._resolve_file(path).data
        npath = normalize(path)
        try:
            data = self._resolve_file(npath).data
        except (FileNotFound, NotADirectory):
            self._trace.note_input(npath, "absent")
            raise
        except IsADirectory:
            self._trace.note_input(npath, "dir")
            raise
        self._trace.note_input(npath, "file:" + file_digest(data))
        return data

    def read_text(self, path: str, encoding: str = "utf-8") -> str:
        return self.read_file(path).decode(encoding)

    def stat(self, path: str) -> dict:
        self._note_probe(path)
        node = self._resolve(path)
        if isinstance(node, FileNode):
            return {"type": "file", "size": node.size, "mtime": node.mtime,
                    "executable": node.executable}
        return {"type": "dir", "entries": len(node.children), "mtime": node.mtime}

    def walk(self, top: str = "/") -> Iterator[Tuple[str, List[str], List[str]]]:
        """Yield ``(dirpath, dirnames, filenames)`` in sorted order."""
        top = normalize(top)
        self._note_tree(top)
        return self._walk(top)

    def _walk(self, top: str) -> Iterator[Tuple[str, List[str], List[str]]]:
        node = self._resolve_dir(top)
        dirs, files = [], []
        for name in sorted(node.children):
            child = node.children[name]
            (dirs if isinstance(child, DirNode) else files).append(name)
        yield top, dirs, files
        for name in dirs:
            sub = top.rstrip("/") + "/" + name if top != "/" else "/" + name
            yield from self._walk(sub)

    def iter_files(self, top: str = "/") -> Iterator[str]:
        """Yield every file path under ``top`` in sorted order."""
        for dirpath, _dirs, files in self.walk(top):
            for name in files:
                yield dirpath.rstrip("/") + "/" + name if dirpath != "/" else "/" + name

    def tree_size(self, top: str = "/") -> int:
        """Total bytes of all files under ``top``."""
        return sum(self._resolve_file(p).size for p in self.iter_files(top))

    def file_count(self, top: str = "/") -> int:
        return sum(1 for _ in self.iter_files(top))

    # -- mutation ------------------------------------------------------------

    def mkdir(self, path: str, parents: bool = False,
              exist_ok: bool = False) -> None:
        path = normalize(path)
        self._check_writable(path)
        parts = split_parts(path)
        if not parts:
            if exist_ok:
                return
            raise FileExists("/")
        node = self.root
        for i, part in enumerate(parts):
            last = i == len(parts) - 1
            child = node.children.get(part)
            if child is None:
                if not last and not parents:
                    raise FileNotFound("/" + "/".join(parts[: i + 1]))
                child = DirNode(mtime=self._clock())
                node.children[part] = child
                self._note_write("/" + "/".join(parts[: i + 1]))
            elif last:
                if isinstance(child, FileNode):
                    raise FileExists(path)
                if not exist_ok:
                    raise FileExists(path)
            elif isinstance(child, FileNode):
                raise NotADirectory("/" + "/".join(parts[: i + 1]))
            node = child  # type: ignore[assignment]

    def makedirs(self, path: str) -> None:
        self.mkdir(path, parents=True, exist_ok=True)

    def write_file(self, path: str, data: Union[bytes, str],
                   create_parents: bool = True, executable: bool = False) -> None:
        path = normalize(path)
        self._check_writable(path)
        if isinstance(data, str):
            data = data.encode("utf-8")
        parent = parent_of(path)
        if create_parents:
            self.makedirs(parent)
        dirnode = self._resolve_dir(parent)
        name = split_parts(path)[-1]
        existing = dirnode.children.get(name)
        if isinstance(existing, DirNode):
            raise IsADirectory(path)
        dirnode.children[name] = FileNode(data, mtime=self._clock(),
                                          executable=executable)
        self._note_write(path)

    def append_file(self, path: str, data: Union[bytes, str]) -> None:
        if isinstance(data, str):
            data = data.encode("utf-8")
        existing = self.read_file(path) if self.isfile(path) else b""
        self.write_file(path, existing + data)

    def remove(self, path: str) -> None:
        """Remove a single file."""
        path = normalize(path)
        self._check_writable(path)
        parent = self._resolve_dir(parent_of(path))
        name = split_parts(path)[-1] if split_parts(path) else None
        if name is None or name not in parent.children:
            raise FileNotFound(path)
        if isinstance(parent.children[name], DirNode):
            raise IsADirectory(path)
        del parent.children[name]
        self._note_write(path)

    def rmtree(self, path: str) -> None:
        """Remove a directory (or file) recursively."""
        path = normalize(path)
        self._check_writable(path)
        parts = split_parts(path)
        if not parts:
            self.root = DirNode(mtime=self._clock())
            self._note_write("/")
            return
        parent = self._resolve_dir(parent_of(path))
        if parts[-1] not in parent.children:
            raise FileNotFound(path)
        del parent.children[parts[-1]]
        self._note_write(path)

    def copy(self, src: str, dst: str) -> None:
        """Copy a file or directory tree (``cp -r`` semantics).

        If ``dst`` is an existing directory, ``src`` is copied *into* it
        under its basename, matching coreutils.
        """
        src, dst = normalize(src), normalize(dst)
        node = self._resolve(src)
        if self.isdir(dst):
            base = split_parts(src)[-1] if split_parts(src) else ""
            if base:
                dst = dst.rstrip("/") + "/" + base if dst != "/" else "/" + base
        self._check_writable(dst)
        if is_within(dst, src) and isinstance(node, DirNode) and dst != src:
            raise FileExists(f"cannot copy {src} into itself: {dst}")
        self._note_probe(src)
        clone = node.clone()
        parent = parent_of(dst)
        self.makedirs(parent)
        name = split_parts(dst)[-1]
        self._resolve_dir(parent).children[name] = clone
        self._note_write(dst)

    def move(self, src: str, dst: str) -> None:
        self.copy(src, dst)
        node = self._resolve(normalize(src))
        if isinstance(node, DirNode):
            self.rmtree(src)
        else:
            self.remove(src)

    # -- tree import/export ----------------------------------------------------

    def import_mapping(self, mapping: dict, base: str = "/") -> None:
        """Write ``{relative_path: content}`` under ``base``.

        A trailing ``/`` in a key creates an empty directory.
        """
        base = normalize(base)
        self.makedirs(base)
        for rel, content in mapping.items():
            target = base.rstrip("/") + "/" + rel.lstrip("/") if base != "/" \
                else "/" + rel.lstrip("/")
            if rel.endswith("/"):
                self.makedirs(target)
            else:
                self.write_file(target, content)

    def export_mapping(self, top: str = "/") -> dict:
        """Return ``{path_relative_to_top: bytes}`` for every file."""
        top = normalize(top)
        out = {}
        prefix_len = len(top.rstrip("/")) + 1 if top != "/" else 1
        for path in self.iter_files(top):
            out[path[prefix_len:]] = self.read_file(path)
        return out

    def graft(self, other: "VirtualFileSystem", src: str, dst: str) -> None:
        """Deep-copy ``other:src`` under ``self:dst`` (mount-by-copy)."""
        node = other._resolve(normalize(src))
        self._check_writable(normalize(dst))
        self.makedirs(parent_of(normalize(dst)))
        parts = split_parts(dst)
        if not parts:
            if not isinstance(node, DirNode):
                raise NotADirectory(dst)
            self.root = node.clone()
            self._note_write("/")
            return
        parent = self._resolve_dir(parent_of(normalize(dst)))
        parent.children[parts[-1]] = node.clone()
        self._note_write(normalize(dst))

    def __repr__(self):
        return f"<VirtualFileSystem {self.file_count()} files, {self.tree_size()}B>"
