"""The grading rubric (§VII: 30/20/10/40)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RubricWeights:
    performance: float = 0.30
    correctness: float = 0.20
    code_quality: float = 0.10
    report: float = 0.40

    def __post_init__(self):
        total = (self.performance + self.correctness +
                 self.code_quality + self.report)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"rubric weights must sum to 1, got {total}")


@dataclass
class GradeBreakdown:
    """Component scores in [0, 1] plus the weighted total."""

    team: str
    performance: float
    correctness: float
    code_quality: float
    report: float
    total: float
    rank: Optional[int] = None
    best_time: Optional[float] = None


class Rubric:
    """Scores a team's evaluation results.

    Performance is scored on a log scale between the fastest achievable
    time and the serial baseline: a team at the baseline gets 0, matching
    the top time gets 1, and every ~10× speedup earns equal credit —
    appropriate for a contest spanning 4 orders of magnitude.
    """

    def __init__(self, weights: Optional[RubricWeights] = None,
                 best_time: float = 0.25,
                 baseline_time: float = 30 * 60.0,
                 accuracy_target: float = 0.80):
        self.weights = weights or RubricWeights()
        self.best_time = best_time
        self.baseline_time = baseline_time
        self.accuracy_target = accuracy_target

    def performance_score(self, best_time: Optional[float]) -> float:
        if best_time is None or best_time <= 0:
            return 0.0
        t = min(max(best_time, self.best_time), self.baseline_time)
        span = math.log(self.baseline_time / self.best_time)
        return (math.log(self.baseline_time / t) / span) if span > 0 else 1.0

    def correctness_score(self, accuracy: Optional[float]) -> float:
        """Full credit at/above the target accuracy, linear below."""
        if accuracy is None:
            return 0.0
        if accuracy >= self.accuracy_target:
            return 1.0
        return max(0.0, accuracy / self.accuracy_target)

    def grade(self, team: str, best_time: Optional[float],
              accuracy: Optional[float], code_quality: float,
              report: float, rank: Optional[int] = None) -> GradeBreakdown:
        performance = self.performance_score(best_time)
        correctness = self.correctness_score(accuracy)
        weights = self.weights
        total = (weights.performance * performance +
                 weights.correctness * correctness +
                 weights.code_quality * code_quality +
                 weights.report * report)
        return GradeBreakdown(
            team=team,
            performance=performance,
            correctness=correctness,
            code_quality=min(1.0, max(0.0, code_quality)),
            report=min(1.0, max(0.0, report)),
            total=total,
            rank=rank,
            best_time=best_time,
        )
