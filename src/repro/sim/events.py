"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot future: it is *triggered* once with either a
value (``succeed``) or an exception (``fail``), after which the simulator
invokes its callbacks in scheduling order.  Processes are themselves events
(they trigger when their generator returns), which is what makes
``yield other_process`` compose naturally.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError

#: Sentinel stored in :attr:`Event._value` until the event is triggered.
PENDING = object()

#: Priority for events that must run before same-time normal events
#: (used by interrupts so they preempt the interrupted process's own
#: resume).  Defined here — not in :mod:`repro.sim.kernel` — so the
#: :class:`Timeout` fast path can schedule without a circular import;
#: the kernel re-exports both names.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class Event:
    """A one-shot occurrence in simulated time.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.kernel.Simulator`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    def __init__(self, sim):
        self.sim = sim
        #: Callables ``cb(event)`` invoked when the event is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._defused = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (``callbacks`` is then ``None``)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully and schedule its callbacks."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        If no process is waiting on the event when it is processed, the
        exception propagates out of :meth:`Simulator.step` (unless
        :meth:`defused` was called) so that programming errors do not vanish
        silently.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy another event's outcome onto this one (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.defuse_source(event)
            self.fail(event._value)

    def defused(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    @staticmethod
    def defuse_source(event: "Event") -> None:
        event._defused = True

    def __repr__(self):
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay: float, value: Any = None):
        # Timeouts are the single most-allocated event type (every think
        # time, service time, and caretaker tick is one), so this inlines
        # ``Event.__init__`` + ``Simulator._schedule`` into one flat body:
        # a timeout is born triggered and scheduled, so the generic
        # re-schedule guard and callback indirection buy nothing here.
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._scheduled = True
        self._defused = False
        self.delay = delay = float(delay)
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now + delay, PRIORITY_NORMAL, seq, self))

    def __repr__(self):
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Condition(Event):
    """Composite event over several sub-events.

    ``evaluate(events, n_triggered)`` decides when the condition is met.
    The condition's value is a dict mapping each *triggered* sub-event to
    its value, preserving creation order (like simpy's ConditionValue).
    """

    __slots__ = ("events", "_evaluate", "_fired")

    def __init__(self, sim, evaluate, events):
        super().__init__(sim)
        self.events = list(events)
        self._evaluate = evaluate
        #: Sub-events whose callbacks have fired, in firing order.  (An
        #: event like Timeout is "triggered" from creation, so membership
        #: here — not ``triggered`` — defines the condition's value.)
        self._fired: List[Event] = []
        for evt in self.events:
            if evt.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
        if not self.events:
            self.succeed({})
            return
        for evt in self.events:
            if evt.processed:
                self._check(evt)
            else:
                evt.callbacks.append(self._check)

    def _collect_values(self) -> dict:
        return {e: e._value for e in self._fired}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._fired.append(event)
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self.events, len(self._fired)):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events, count) -> bool:
        return count == len(events)

    @staticmethod
    def any_events(events, count) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Condition that fires once *all* sub-events have fired."""

    __slots__ = ()

    def __init__(self, sim, events):
        super().__init__(sim, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that fires once *any* sub-event has fired."""

    __slots__ = ()

    def __init__(self, sim, events):
        super().__init__(sim, Condition.any_events, events)
