"""Unit tests for the build/delivery pipeline (§VII, Figure 3)."""

import pytest

from repro.errors import ReleaseError
from repro.release import (
    BUILD_MATRIX,
    ContinuousBuilder,
    DownloadPage,
    find_regression,
)


@pytest.fixture
def builder():
    b = ContinuousBuilder()
    b.devel.commit("initial import")
    b.master.merge_from(b.devel)
    return b


class TestBuildMatrix:
    def test_figure3_targets(self):
        """10 rows: 6 linux, 2 darwin, 2 windows (Figure 3)."""
        assert len(BUILD_MATRIX) == 10
        by_os = {}
        for target in BUILD_MATRIX:
            by_os.setdefault(target.os, []).append(target.arch)
        assert len(by_os["linux"]) == 6
        assert by_os["darwin"] == ["i386", "amd64"]
        assert by_os["windows"] == ["i386", "amd64"]

    def test_windows_binaries_have_exe(self):
        windows = [t for t in BUILD_MATRIX if t.os == "windows"]
        assert all(t.binary_name.endswith(".exe") for t in windows)


class TestBranches:
    def test_commit_shas_unique(self, builder):
        first = builder.devel.commit("a")
        second = builder.devel.commit("b")
        assert first.sha != second.sha

    def test_merge_adopts_new_commits(self, builder):
        builder.devel.commit("feature")
        merged = builder.master.merge_from(builder.devel)
        assert len(merged) == 1
        assert builder.master.head.sha == builder.devel.head.sha

    def test_merge_is_idempotent(self, builder):
        builder.devel.commit("feature")
        builder.master.merge_from(builder.devel)
        assert builder.master.merge_from(builder.devel) == []

    def test_unknown_branch(self, builder):
        with pytest.raises(ReleaseError):
            builder.branch("release-candidate")


class TestContinuousBuilds:
    def test_build_covers_all_targets(self, builder):
        artifacts = builder.build_branch("master")
        assert len(artifacts) == 10
        assert {a.target.key for a in artifacts} == \
            {t.key for t in BUILD_MATRIX}

    def test_metadata_embedded(self, builder):
        """§VII: commit and build date embedded in the binary."""
        artifact = builder.build_branch(
            "master", build_date="2016-11-20T12:00:00Z")[0]
        info = artifact.embedded_info()
        assert info["commit"] == builder.master.head.sha
        assert info["build_date"] == "2016-11-20T12:00:00Z"
        assert info["branch"] == "master"

    def test_build_empty_branch_fails(self):
        builder = ContinuousBuilder()
        with pytest.raises(ReleaseError):
            builder.build_branch("master")

    def test_build_all_does_both_branches(self, builder):
        builder.devel.commit("devel-only change")
        built = builder.build_all()
        assert set(built) == {"master", "devel"}
        master = builder.latest("master", "linux-amd64")
        devel = builder.latest("devel", "linux-amd64")
        assert master.commit != devel.commit

    def test_publishes_to_object_store(self, sim):
        from repro.storage import ObjectStore

        storage = ObjectStore(sim)
        builder = ContinuousBuilder(storage=storage)
        builder.master.commit("x")
        builder.build_branch("master")
        keys = list(storage.iter_keys(builder.RELEASE_BUCKET))
        assert len(keys) == 10
        artifact = builder.latest("master", "linux-amd64")
        blob = storage.redeem_get(artifact.url).data
        assert b"commit=" in blob


class TestDownloadPage:
    def test_rows_match_figure3(self, builder):
        builder.devel.commit("wip")
        builder.build_all()
        page = DownloadPage(builder)
        rows = page.rows()
        assert len(rows) == 10
        assert all(r["stable"] and r["development"] for r in rows)

    def test_render_layout(self, builder):
        builder.build_all()
        text = DownloadPage(builder).render()
        assert "linux" in text and "darwin" in text and "windows" in text
        assert "URL" in text

    def test_links_update_after_new_build(self, builder):
        """'The links are continuously updated' (Figure 3 caption)."""
        builder.build_all()
        old = DownloadPage(builder).rows()[0]["stable_commit"]
        builder.master.commit("hotfix")
        builder.build_branch("master")
        new = DownloadPage(builder).rows()[0]["stable_commit"]
        assert new != old


class TestRegressionBisect:
    def test_finds_first_bad_commit(self, builder):
        commits = [builder.devel.commit(f"c{i}", introduces_bug=(i == 6))
                   for i in range(10)]
        bad = find_regression(builder.devel.commits,
                              lambda c: any(
                                  x.introduces_bug
                                  for x in builder.devel.commits[
                                      :builder.devel.commits.index(c) + 1]))
        assert bad is commits[6]

    def test_no_regression_returns_none(self, builder):
        builder.devel.commit("fine")
        assert find_regression(builder.devel.commits, lambda c: False) is None

    def test_empty_history(self):
        assert find_regression([], lambda c: True) is None
