"""Unit tests for roster parsing and the key mailer (§VI, Listing 3)."""

import pytest

from repro.auth import KeyMailer, KeyStore, parse_roster, render_roster
from repro.auth.roster import RosterEntry
from repro.errors import AuthError


class TestRoster:
    def test_basic_csv(self):
        entries = parse_roster("Ada,Lovelace,alove\nAlan,Turing,aturing\n")
        assert len(entries) == 2
        assert entries[0].full_name == "Ada Lovelace"
        assert entries[0].email == "alove@illinois.edu"

    def test_header_row_skipped(self):
        entries = parse_roster("firstname,lastname,userid\nA,B,ab\n")
        assert len(entries) == 1

    def test_blank_lines_skipped(self):
        assert len(parse_roster("A,B,ab\n\n\nC,D,cd\n")) == 2

    def test_malformed_row_rejected(self):
        with pytest.raises(AuthError):
            parse_roster("OnlyOneField\n")
        with pytest.raises(AuthError):
            parse_roster("A,,ab\n")

    def test_duplicate_userid_rejected(self):
        with pytest.raises(AuthError, match="duplicate"):
            parse_roster("A,B,same\nC,D,same\n")

    def test_render_roundtrip(self):
        entries = [RosterEntry("A", "B", "ab"), RosterEntry("C", "D", "cd")]
        assert parse_roster(render_roster(entries)) == entries


class TestKeyMailer:
    def test_one_email_per_student(self):
        roster = parse_roster("Ada,Lovelace,alove\nAlan,Turing,aturing\n")
        mailer = KeyMailer(KeyStore())
        sent = mailer.send_keys(roster)
        assert len(sent) == 2
        assert len(mailer.outbox) == 2

    def test_email_contains_working_credentials(self):
        """The emailed keys must actually authenticate (end-to-end)."""
        from repro.auth import parse_profile

        keystore = KeyStore()
        mailer = KeyMailer(keystore)
        (message,) = mailer.send_keys(parse_roster("Ada,Lovelace,alove\n"))
        assert message.to == "alove@illinois.edu"
        assert "Hello Ada Lovelace," in message.body
        # Extract the profile block exactly as a student would paste it.
        lines = [l for l in message.body.splitlines()
                 if l.startswith("RAI_")]
        profile = parse_profile("\n".join(lines))
        keystore.verify_pair(profile.access_key, profile.secret_key)

    def test_team_recorded_on_credential(self):
        keystore = KeyStore()
        mailer = KeyMailer(keystore)
        mailer.send_keys(parse_roster("A,B,ab\n"), teams={"ab": "team-7"})
        cred = keystore.lookup(keystore.credentials()[0].access_key)
        assert cred.team == "team-7"

    def test_invalid_recipient_rejected(self):
        from repro.auth.email import EmailMessage, Outbox

        with pytest.raises(ValueError):
            Outbox().send(EmailMessage(to="not-an-address", subject="s",
                                       body="b"))

    def test_mentions_webgpu_transition(self):
        """Listing 3 explicitly tells students WebGPU is not used."""
        mailer = KeyMailer(KeyStore())
        (message,) = mailer.send_keys(parse_roster("A,B,ab\n"))
        assert "we will not be using WebGPU" in message.body
