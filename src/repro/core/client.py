"""The RAI client: §V "Client Execution", implemented step by step.

1. check the project directory and find ``rai-build.yml`` (falling back to
   the Listing 1 default);
2. verify the user credentials from ``.rai.profile``;
3. compress the project into a ``.tar.bz2`` and upload it to the file
   server (with a delete-after-last-use lifetime);
4. create a job request and push it onto the queue;
5. subscribe to the ``log_${job_id}`` topic;
6. print worker messages until ``End`` arrives;
7. for final submissions, the execution time and team name land in the
   ranking database (written by the worker);
8. exit once ``End`` is received.

``submit()`` is a simulation-process generator; drive it with
``system.run(client.submit(...))`` which returns the assembled
:class:`~repro.core.job.JobResult`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.auth.profile import RaiProfile
from repro.auth.signing import sign_request
from repro.broker.client import Consumer
from repro.buildspec.defaults import DEFAULT_BUILD_YAML, FINAL_SUBMISSION_YAML
from repro.core.job import Job, JobKind, JobResult, JobStatus, new_job_id
from repro.errors import (
    BrokerError,
    InvalidCredentials,
    RateLimited,
    StorageError,
    SubmissionRejected,
)
from repro.storage.chunkstore import Manifest
from repro.vfs import VirtualFileSystem, file_digest, pack_tree

#: Files a final submission must contain (§V, Student Final Submission):
#: USAGE (how to reproduce the profile results) and report.pdf.
REQUIRED_SUBMISSION_FILES = ("USAGE", "report.pdf")


class RaiClient:
    """The student-side command-line tool."""

    def __init__(self, system, profile: RaiProfile,
                 team: Optional[str] = None,
                 on_line: Optional[Callable[[str, str], None]] = None):
        self.system = system
        self.sim = system.sim
        self.profile = profile
        self.team = team
        #: Called with (stream, text) for every log chunk — the client
        #: "prints them to the user's screen" (§V).
        self.on_line = on_line
        self.project_fs = VirtualFileSystem(clock=lambda: self.sim.now)
        self.history: List[JobResult] = []
        #: Declared extra project bytes (datasets/checkpoints a real
        #: project would carry); counted in upload time and storage
        #: accounting without materialising content.  See StoredObject.
        self.project_padding_bytes: int = 0
        #: Manifest of the most recent successful upload — the base the
        #: next submission's chunk delta is computed against.
        self._last_manifest: Optional[Manifest] = None

    @property
    def username(self) -> str:
        return self.profile.username

    # -- project staging ------------------------------------------------------

    def stage_project(self, files: Dict[str, Union[str, bytes]],
                      clear: bool = False) -> None:
        """Write files into the local project directory."""
        if clear:
            self.project_fs.rmtree("/")
        self.project_fs.import_mapping(files, "/")

    def set_build_file(self, yaml_text: str) -> None:
        self.project_fs.write_file("/rai-build.yml", yaml_text)

    def build_file_text(self) -> Optional[str]:
        for name in ("rai-build.yml", "rai-build.yaml"):
            if self.project_fs.isfile("/" + name):
                return self.project_fs.read_text("/" + name)
        return None

    # -- the submission process ------------------------------------------------

    def submit(self, kind: JobKind = JobKind.RUN,
               raise_on_reject: bool = False,
               wait_timeout: Optional[float] = None):
        """Generator implementing the eight client steps.

        Returns (via the process value) a :class:`JobResult`.  Local
        rejections (rate limit, bad credentials, missing final-submission
        files) produce a ``REJECTED`` result unless ``raise_on_reject``.

        ``wait_timeout`` bounds the End wait (step 6); it defaults to
        ``SystemConfig.client_wait_timeout_seconds`` (``None`` = wait
        forever, the paper's behaviour).  On expiry the result is terminal
        with ``JobStatus.TIMEOUT`` — the job may still complete server-side,
        but this client has stopped listening.
        """
        result = JobResult(job_id="(unassigned)")
        self.history.append(result)
        tracer = self.system.tracer
        span = tracer.start_span(
            "client.submit", kind="client",
            attributes={"user": self.username, "kind": kind.value})

        def reject(exc: Exception) -> JobResult:
            result.status = JobStatus.REJECTED
            result.error = str(exc)
            result.finished_at = self.sim.now
            tracer.end_subtree(span, status="error", message=str(exc))
            if raise_on_reject:
                raise exc
            return result

        # Step 1 — locate the build file (or fall back to the default).
        if self.project_fs.file_count("/") == 0:
            return reject(SubmissionRejected("project directory is empty"))
        spec_yaml = self.build_file_text()
        if spec_yaml is None:
            spec_yaml = DEFAULT_BUILD_YAML
            self._emit("stdout", "• no rai-build.yml found; using the "
                                 "course default\n")
        if kind is JobKind.SUBMIT:
            # The student's build file is ignored for finals (Listing 2).
            spec_yaml = FINAL_SUBMISSION_YAML
            missing = [name for name in REQUIRED_SUBMISSION_FILES
                       if not self.project_fs.isfile("/" + name)]
            if missing:
                return reject(SubmissionRejected(
                    f"final submission is missing required file(s): "
                    f"{', '.join(missing)}"))

        # Step 2 — verify credentials; also the 30-second rate limit.
        try:
            self.system.keystore.verify_pair(self.profile.access_key,
                                             self.profile.secret_key)
        except InvalidCredentials as exc:
            return reject(exc)
        try:
            self.system.rate_limiter.check(self.team or self.username)
        except RateLimited as exc:
            return reject(exc)

        # Step 3 — pack and upload the project.  With dedup enabled the
        # archive is a plain tar chunked by content: the client computes
        # the delta against its previously uploaded manifest (plus a
        # store-side negotiation for chunks other uploads already hold)
        # and transfers only unseen chunks and the manifest itself.
        dedup = self.system.config.dedup_uploads
        file_digests = None
        if dedup:
            archive = pack_tree(self.project_fs, "/", compression="none")
            file_digests = {
                path: file_digest(self.project_fs.read_file(path))
                for path in self.project_fs.iter_files("/")}
            manifest = Manifest.from_bytes(
                archive, self.system.storage.chunk_store.chunk_size,
                files=file_digests)
            # A chunk-size reconfiguration shifts every boundary: a base
            # chunked at the old size would yield a bogus delta, so it is
            # stale by definition.
            if (self._last_manifest is not None
                    and self._last_manifest.chunk_size
                    != manifest.chunk_size):
                self._last_manifest = None
            # The base the delta is encoded against: this client's last
            # upload when it has one, else whatever the server still
            # holds for this user (git-style negotiation — a fresh client
            # instance or a post-restore session still ships a delta).
            base = self._last_manifest
            base_kind = "local"
            if base is None:
                base = self.system.storage.negotiate_base(
                    self.system.config.upload_bucket, self.username)
                base_kind = "negotiated" if base is not None else "none"
            if base is not None and base.chunk_size != manifest.chunk_size:
                base, base_kind = None, "none"
            # Chunks the delta says changed since the base; the store
            # negotiation then prunes those some *other* upload already
            # holds (and re-adds any the server has since expired) — the
            # negotiation is ground truth for the wire.
            delta = manifest.delta(base)
            self.system.monitor.incr("client_delta_chunks", len(delta))
            wire_bytes = (
                self.system.storage.chunk_store.missing_bytes(manifest)
                + manifest.delta_wire_size(base))
        else:
            archive = pack_tree(self.project_fs, "/")
            manifest = None
            wire_bytes = len(archive)
        full_bytes = len(archive) + self.project_padding_bytes
        upload_bytes = wire_bytes + self.project_padding_bytes
        upload_seconds = upload_bytes / self.system.config.client_bandwidth_bps
        upload_span = tracer.start_span(
            "client.upload", parent=span, kind="client",
            attributes={"bytes": upload_bytes, "bytes_full": full_bytes,
                        "dedup": dedup})
        if dedup:
            upload_span.add_event("chunk.negotiation",
                                  delta_chunks=len(delta),
                                  wire_bytes=wire_bytes,
                                  base=base_kind)
        yield self.sim.timeout(upload_seconds)
        job_id = new_job_id()
        result.job_id = job_id
        # Binds the whole trace to the job id in the trace store.
        span.set_attribute("job_id", job_id)
        suffix = "tar" if dedup else "tar.bz2"
        upload_key = f"{self.username}/{job_id}.{suffix}"
        try:
            self.system.storage.put_object(
                self.system.config.upload_bucket, upload_key, archive,
                metadata={"username": self.username, "team": self.team or "",
                          "kind": kind.value, "job_id": job_id},
                padding_bytes=self.project_padding_bytes, dedup=dedup,
                file_digests=file_digests)
        except StorageError as exc:
            self.system.monitor.incr("client_upload_failures")
            upload_span.end(status="error", message=str(exc))
            return reject(SubmissionRejected(f"project upload failed: {exc}"))
        upload_span.end()
        if dedup:
            self._last_manifest = manifest
        result.upload_bytes = upload_bytes
        result.upload_bytes_full = full_bytes
        self.system.monitor.incr("bytes_uploaded", upload_bytes)
        self.system.monitor.incr("bytes_uploaded_logical", full_bytes)
        if full_bytes > upload_bytes:
            self.system.monitor.incr("bytes_upload_deduped",
                                     full_bytes - upload_bytes)
        usage = getattr(self.system, "usage", None)
        if usage is not None:
            tenant = self.team or self.username
            usage.record("storage_bytes_uploaded", float(upload_bytes),
                         tenant=tenant)
            if full_bytes > upload_bytes:
                usage.record("storage_bytes_saved_dedup",
                             float(full_bytes - upload_bytes), tenant=tenant)

        # Step 4 — create and sign the job request.
        job = Job(
            id=job_id,
            kind=kind,
            username=self.username,
            team=self.team,
            upload_bucket=self.system.config.upload_bucket,
            upload_key=upload_key,
            spec_yaml=spec_yaml,
            access_key=self.profile.access_key,
            signature="",
            submitted_at=self.sim.now,
            source_digest=manifest.tree_digest() if manifest else None,
        )
        body = job.to_message()
        body.pop("signature")
        job.signature = sign_request(self.profile.secret_key, body,
                                     job.submitted_at)

        # Step 5 — subscribe to the log topic *before* publishing, so not
        # even the first worker message can be missed.
        consumer = Consumer(self.system.broker, f"log_{job_id}/#ch")
        # Sharded deployments route the publish by fair-share key (team,
        # else username) to the key's partition topic; unsharded, this is
        # exactly the legacy "rai" topic.
        task_topic = self.system.task_topic(self.team or self.username)
        publish_span = tracer.start_span("client.publish", parent=span,
                                         kind="client",
                                         attributes={"topic": task_topic})
        try:
            # The publish span's context rides the message headers: the
            # broker's delivery and the worker's whole job chain onto it.
            self.system.broker.publish(task_topic, job.to_message(),
                                       headers=publish_span.headers())
        except BrokerError as exc:
            # The job never reached the queue; release the log subscription
            # (otherwise the ephemeral log topic is pinned forever).
            consumer.close()
            self.system.monitor.incr("client_publish_rejected")
            publish_span.end(status="error", message=str(exc))
            return reject(SubmissionRejected(
                f"job request rejected by the broker: {exc}"))
        publish_span.end()
        result.status = JobStatus.QUEUED
        result.queued_at = self.sim.now
        self.system.monitor.incr("jobs_submitted")
        self.system.monitor.record_submission(self.sim.now, kind)
        events = getattr(self.system, "events", None)
        shards = getattr(self.system, "shards", None)
        if events is not None and shards is not None:
            events.emit("shard.route", span=publish_span, job_id=job_id,
                        team=self.team, username=self.username,
                        topic=task_topic,
                        partition=shards.shard_map.partition(
                            self.team or self.username))
        if events is not None:
            events.emit("job.state_change", span=span, job_id=job_id,
                        team=self.team, status="queued",
                        username=self.username, kind=kind.value)

        if wait_timeout is None:
            wait_timeout = self.system.config.client_wait_timeout_seconds
        wait_deadline = (self.sim.now + wait_timeout
                         if wait_timeout is not None else None)

        # Step 6 — consume messages until End (or the wait deadline).
        try:
            while True:
                get_event = consumer.get()
                if wait_deadline is None:
                    message = yield get_event
                else:
                    remaining = wait_deadline - self.sim.now
                    if remaining > 0:
                        yield self.sim.any_of(
                            [get_event, self.sim.timeout(remaining)])
                    if not get_event.triggered:
                        consumer.cancel(get_event)
                        result.status = JobStatus.TIMEOUT
                        result.error = (
                            f"timed out after {wait_timeout:.0f}s waiting "
                            f"for job completion")
                        result.finished_at = self.sim.now
                        self.system.monitor.incr("client_wait_timeouts")
                        span.add_event("wait.timeout", seconds=wait_timeout)
                        break
                    message = get_event.value
                if message is None:
                    continue
                payload = message.body
                consumer.ack(message)
                mtype = payload.get("type")
                if mtype == "log":
                    result.log.append((payload["t"], payload["stream"],
                                       payload["text"]))
                    self._emit(payload["stream"], payload["text"])
                elif mtype == "command":
                    self._emit("stdout", f"$ {payload['command']}\n")
                elif mtype == "status":
                    if payload.get("status") == "running":
                        result.status = JobStatus.RUNNING
                        result.started_at = payload["t"]
                    result.worker_id = payload.get("worker")
                elif mtype == "build":
                    result.build_url = payload["url"]
                elif mtype == "end":
                    result.status = JobStatus(payload["status"])
                    result.exit_code = payload.get("exit_code")
                    result.finished_at = payload["t"]
                    span.add_event("end.received", status=payload["status"])
                    break
        finally:
            consumer.close()
            span.set_attribute("status", result.status.value)
            if result.status is JobStatus.TIMEOUT:
                tracer.end_subtree(span, status="error",
                                   message=result.error)
            else:
                tracer.end_subtree(span)
            # Queue→End latency, bucketed for the operator report; the
            # trace id pins an exemplar so a slow bucket names its job.
            self.system.metrics.histogram("job_turnaround_seconds").observe(
                (result.finished_at or self.sim.now) - job.submitted_at,
                trace_id=span.trace_id, at=self.sim.now)
            events = getattr(self.system, "events", None)
            if events is not None and result.status in (
                    JobStatus.TIMEOUT, JobStatus.REJECTED):
                events.emit("job.state_change", span=span, job_id=job_id,
                            team=self.team, status=result.status.value,
                            client_final=True)

        # Steps 7/8 — the worker already recorded finals in the ranking DB;
        # surface the team's rank on the result for convenience.
        if kind is JobKind.SUBMIT and result.succeeded and self.team:
            result.rank = self.system.ranking.team_rank(self.team)
        return result

    # -- utilities (§VI) ------------------------------------------------------

    def check_ranking(self, limit: Optional[int] = None) -> List[dict]:
        """The student-facing anonymised leaderboard."""
        return self.system.ranking.anonymized_view(self.team or "", limit)

    def download_build(self, result: JobResult) -> Optional[bytes]:
        """Fetch the job's /build archive through its presigned URL."""
        if result.build_url is None:
            return None
        return self.system.storage.redeem_get(result.build_url).data

    def _emit(self, stream: str, text: str) -> None:
        if self.on_line is not None:
            self.on_line(stream, text)
