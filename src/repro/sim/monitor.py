"""Measurement instruments for simulations.

The paper reports aggregate operational data (submissions/hour, storage
footprint, queue behaviour).  These instruments collect the equivalents:

- :class:`TimeSeries` — (time, value) samples, e.g. queue depth over time;
- :class:`Tally` — order-free statistics over observations, e.g. job
  latencies;
- :class:`Counter` — monotonically increasing named counts;
- :class:`Monitor` — a namespaced bundle of the above attached to a
  simulator.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np


class TimeSeries:
    """Timestamped samples of one quantity."""

    def __init__(self, name: str):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("time must be non-decreasing")
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    def time_average(self) -> float:
        """Time-weighted mean, treating samples as a step function."""
        if len(self.times) < 2:
            return self.values[0] if self.values else math.nan
        t = np.asarray(self.times)
        v = np.asarray(self.values)
        dt = np.diff(t)
        total = t[-1] - t[0]
        if total == 0:
            return float(v[-1])
        return float(np.sum(v[:-1] * dt) / total)

    def maximum(self) -> float:
        return max(self.values) if self.values else math.nan


class Tally:
    """Streaming statistics over unordered observations (Welford)."""

    def __init__(self, name: str, keep_samples: bool = True):
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self.samples: List[float] = [] if keep_samples else None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if self.samples is not None:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self._min if self.count else math.nan

    @property
    def max(self) -> float:
        return self._max if self.count else math.nan

    def percentile(self, q: float) -> float:
        if self.samples is None:
            raise ValueError(f"tally {self.name!r} does not keep samples")
        if not self.samples:
            return math.nan
        return float(np.percentile(np.asarray(self.samples), q))

    def summary(self) -> dict:
        out = {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
        }
        if self.samples:
            out["p50"] = self.percentile(50)
            out["p95"] = self.percentile(95)
            out["p99"] = self.percentile(99)
        return out


class Counter:
    """Named monotonically increasing counts."""

    def __init__(self):
        self._counts: Dict[str, float] = {}

    def incr(self, name: str, amount: float = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> float:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counts)


class Monitor:
    """A bundle of instruments bound to one simulator."""

    def __init__(self, sim):
        self.sim = sim
        self.series: Dict[str, TimeSeries] = {}
        self.tallies: Dict[str, Tally] = {}
        self.counters = Counter()
        #: Structured event log: (time, kind, fields) per :meth:`log` call.
        self.events: List[Tuple[float, str, dict]] = []

    def timeseries(self, name: str) -> TimeSeries:
        ts = self.series.get(name)
        if ts is None:
            ts = self.series[name] = TimeSeries(name)
        return ts

    def tally(self, name: str) -> Tally:
        t = self.tallies.get(name)
        if t is None:
            t = self.tallies[name] = Tally(name)
        return t

    def record(self, name: str, value: float) -> None:
        """Record a timestamped sample at the simulator's current time."""
        self.timeseries(name).record(self.sim.now, value)

    def observe(self, name: str, value: float) -> None:
        self.tally(name).observe(value)

    def incr(self, name: str, amount: float = 1) -> None:
        self.counters.incr(name, amount)

    def log(self, __event_kind: str, **fields) -> None:
        """Append a timestamped structured event (fault injections,
        malformed messages, dead-letterings — anything an operator would
        want in an audit trail).  The first argument is positional-only
        so ``fields`` may itself contain a ``kind`` key."""
        self.events.append((self.sim.now, __event_kind, fields))

    def events_of(self, kind: str) -> List[Tuple[float, dict]]:
        return [(t, fields) for t, k, fields in self.events if k == kind]
