"""Collections and the database front object."""

from __future__ import annotations

import copy
import re
from collections.abc import MutableMapping
from typing import Any, Dict, List, Optional

from repro.docdb.aggregate import run_pipeline
from repro.docdb.cursor import Cursor
from repro.docdb.index import Index, RANGE_OPS, SortedIndex
from repro.docdb.query import match_document, get_path, _MISSING
from repro.docdb.update import apply_update
from repro.errors import DocDbError, DuplicateKeyError
from repro.obs.metrics import MetricsRegistry


class PlannerStats(MutableMapping):
    """Dict-shaped view of one collection's planner counters.

    The numbers live in the shared metrics registry as ``planner_<stat>``
    gauges labelled by collection, so the operator surface (snapshots,
    the telemetry report) sees them alongside everything else; existing
    code keeps reading and writing ``coll.planner_stats`` like the plain
    dict it used to be (including resetting entries to zero — hence
    gauges, not counters).
    """

    KEYS = ("index_hits", "range_hits", "scans", "docs_examined")

    def __init__(self, metrics: MetricsRegistry, collection: str):
        self._metrics = metrics
        self._collection = collection
        for key in self.KEYS:
            self._gauge(key)

    def _gauge(self, key: str):
        if key not in self.KEYS:
            raise KeyError(key)
        return self._metrics.gauge(f"planner_{key}",
                                   collection=self._collection)

    def __getitem__(self, key: str) -> int:
        return int(self._gauge(key).value)

    def __setitem__(self, key: str, value) -> None:
        self._gauge(key).set(value)

    def __delitem__(self, key: str) -> None:
        raise TypeError("planner stats keys are fixed")

    def __iter__(self):
        return iter(self.KEYS)

    def __len__(self) -> int:
        return len(self.KEYS)

    def __repr__(self):
        return f"PlannerStats({dict(self)!r})"


_OID_RE = re.compile(r"^oid-(\d+)$")


class Collection:
    """A named set of documents."""

    def __init__(self, db: "DocumentDB", name: str):
        self.db = db
        self.name = name
        self._docs: Dict[Any, dict] = {}
        self._indexes: Dict[str, Index] = {}
        #: Next auto-generated ``oid-``; a plain int (not itertools.count)
        #: so snapshots can capture it and recovery can advance it.
        self._next_oid = 1
        #: Access-path plan of the most recent find/update/delete/count —
        #: the write-path equivalent of ``Cursor.explain()``.
        self.last_plan: Optional[dict] = None
        #: Cumulative planner activity (index hits vs scans, docs
        #: examined) — a dict-shaped view over registry gauges.
        self.planner_stats = PlannerStats(db.metrics, name)

    # -- indexes ------------------------------------------------------------

    def create_index(self, field: str, unique: bool = False,
                     ordered: bool = False) -> Index:
        """Create (or fetch) an index on ``field``.

        ``ordered=True`` builds a :class:`SortedIndex`, which also serves
        ``$gt/$gte/$lt/$lte`` range predicates; an existing hash index on
        the same field is upgraded in place.
        """
        existing = self._indexes.get(field)
        if existing is not None and (not ordered or existing.supports_range):
            return existing
        index = SortedIndex(field, unique=unique) if ordered \
            else Index(field, unique=unique)
        for doc_id, doc in self._docs.items():
            index.add(doc_id, doc)
        self._indexes[field] = index
        journal = self.db.journal
        if journal is not None:
            journal.docdb_index(self.name, field, unique,
                                index.supports_range)
        return index

    def _index_add(self, doc_id, doc) -> None:
        for index in self._indexes.values():
            index.check_would_conflict(doc_id, doc)
        for index in self._indexes.values():
            index.add(doc_id, doc)

    def _index_remove(self, doc_id, doc) -> None:
        for index in self._indexes.values():
            index.remove(doc_id, doc)

    # -- writes ------------------------------------------------------------

    def insert_one(self, document: dict) -> Any:
        """Insert a document; returns its ``_id`` (generated if absent)."""
        if not isinstance(document, dict):
            raise DocDbError("documents must be dicts")
        doc = copy.deepcopy(document)
        doc_id = doc.get("_id")
        if doc_id is None:
            doc_id = f"oid-{self._next_oid:08d}"
            self._next_oid += 1
            doc["_id"] = doc_id
        else:
            self._note_oid(doc_id)
        if doc_id in self._docs:
            raise DuplicateKeyError(f"_id {doc_id!r} already exists")
        self._index_add(doc_id, doc)
        self._docs[doc_id] = doc
        journal = self.db.journal
        if journal is not None:
            journal.docdb_insert(self.name, doc)
        usage = self.db.usage
        if usage is not None:
            tenant = doc.get("team") or doc.get("username")
            usage.record("docdb_ops", 1.0,
                         tenant=tenant if isinstance(tenant, str) else None)
        return doc_id

    def _note_oid(self, doc_id) -> None:
        """Keep the oid counter ahead of any explicitly supplied oid."""
        match = _OID_RE.match(doc_id) if isinstance(doc_id, str) else None
        if match:
            self._next_oid = max(self._next_oid, int(match.group(1)) + 1)

    def insert_many(self, documents) -> List[Any]:
        return [self.insert_one(d) for d in documents]

    def replace_one(self, filter: dict, replacement: dict,
                    upsert: bool = False) -> int:
        return self._update(filter, replacement, upsert=upsert, many=False)

    def update_one(self, filter: dict, update: dict,
                   upsert: bool = False) -> int:
        """Apply ``update`` to the first match; returns modified count."""
        return self._update(filter, update, upsert=upsert, many=False)

    def update_many(self, filter: dict, update: dict) -> int:
        return self._update(filter, update, upsert=False, many=True)

    def _update(self, filter: dict, update: dict, upsert: bool,
                many: bool) -> int:
        candidate_ids, _ = self._candidates(filter)
        matched_ids = [doc_id for doc_id in candidate_ids
                       if match_document(self._docs[doc_id], filter)]
        if not matched_ids:
            if upsert:
                seed = {k: v for k, v in filter.items()
                        if not k.startswith("$") and not isinstance(v, dict)}
                new_doc = apply_update(seed, update)
                for op_spec in ([update.get("$setOnInsert")] if
                                isinstance(update.get("$setOnInsert"), dict)
                                else []):
                    for path, value in op_spec.items():
                        new_doc.setdefault(path, copy.deepcopy(value))
                self.insert_one(new_doc)
                return 1
            return 0
        if not many:
            matched_ids = matched_ids[:1]
        modified = 0
        journal = self.db.journal
        for doc_id in matched_ids:
            old = self._docs[doc_id]
            new = apply_update(old, update)
            new["_id"] = doc_id
            if new != old:
                self._index_remove(doc_id, old)
                try:
                    self._index_add(doc_id, new)
                except DuplicateKeyError:
                    self._index_add(doc_id, old)  # restore
                    raise
                self._docs[doc_id] = new
                if journal is not None:
                    journal.docdb_update(self.name, new)
                modified += 1
        return modified

    def delete_one(self, filter: dict) -> int:
        return self._delete(filter, many=False)

    def delete_many(self, filter: dict) -> int:
        return self._delete(filter, many=True)

    def _delete(self, filter: dict, many: bool) -> int:
        candidate_ids, _ = self._candidates(filter)
        doomed = [doc_id for doc_id in candidate_ids
                  if match_document(self._docs[doc_id], filter)]
        if not many:
            doomed = doomed[:1]
        journal = self.db.journal
        for doc_id in doomed:
            self._index_remove(doc_id, self._docs[doc_id])
            del self._docs[doc_id]
            if journal is not None:
                journal.docdb_delete(self.name, doc_id)
        return len(doomed)

    # -- reads ------------------------------------------------------------

    def _candidates(self, filter: dict):
        """Plan the access path for ``filter``.

        Returns ``(candidate_ids, plan)``.  The planner tries, in order:
        an equality fast path on an indexed top-level field, a range
        (``$gt/$gte/$lt/$lte``) fast path on a sorted-indexed field, then
        the full collection scan.  Candidates preserve insertion order on
        the equality and scan paths; range candidates come back in key
        order.  All four CRUD verbs route through here, so the fast paths
        cover updates and deletes, not just ``find``.
        """
        ids, plan = self._plan(filter)
        plan["docs_examined"] = len(ids)
        plan["docs_total"] = len(self._docs)
        if plan["path"] == "scan":
            self.planner_stats["scans"] += 1
        elif plan["index_kind"] == "range":
            self.planner_stats["range_hits"] += 1
        else:
            self.planner_stats["index_hits"] += 1
        self.planner_stats["docs_examined"] += len(ids)
        self.last_plan = plan
        usage = self.db.usage
        if usage is not None:
            # Every CRUD verb plans here, so one hook meters them all.
            # Filter values may be operator dicts ({"$gt": ...}) — only
            # a plain string names a tenant.
            tenant = filter.get("team") or filter.get("username")
            usage.record("docdb_ops", 1.0,
                         tenant=tenant if isinstance(tenant, str) else None)
        return ids, plan

    def _plan(self, filter: dict):
        range_choice = None
        for field, condition in filter.items():
            if field.startswith("$"):
                continue
            index = self._indexes.get(field)
            if index is None:
                continue
            if not isinstance(condition, (list, dict)):
                ids = [i for i in index.lookup(condition) if i in self._docs]
                return ids, {"collection": self.name, "path": "index",
                             "index": field, "index_kind": "equality"}
            if range_choice is None and index.supports_range \
                    and isinstance(condition, dict):
                ops = {op: operand for op, operand in condition.items()
                       if op in RANGE_OPS}
                if ops:
                    range_choice = (field, index, ops)
        if range_choice is not None:
            field, index, ops = range_choice
            ids = index.range_ids(ops)
            if ids is not None:
                ids = [i for i in ids if i in self._docs]
                return ids, {"collection": self.name, "path": "index",
                             "index": field, "index_kind": "range"}
        return list(self._docs), {"collection": self.name, "path": "scan",
                                  "index": None, "index_kind": None}

    def explain(self, filter: Optional[dict] = None) -> dict:
        """Plan a filter without executing it (planner introspection)."""
        _, plan = self._candidates(filter or {})
        return plan

    def find(self, filter: Optional[dict] = None,
             projection: Optional[dict] = None) -> Cursor:
        filter = filter or {}
        candidate_ids, plan = self._candidates(filter)
        matched = [self._docs[i] for i in candidate_ids
                   if match_document(self._docs[i], filter)]
        plan = dict(plan, docs_matched=len(matched))
        return Cursor(matched, projection=projection, plan=plan)

    def find_one(self, filter: Optional[dict] = None,
                 projection: Optional[dict] = None) -> Optional[dict]:
        return self.find(filter, projection).first()

    def count_documents(self, filter: Optional[dict] = None) -> int:
        filter = filter or {}
        if not filter:
            return len(self._docs)
        candidate_ids, _ = self._candidates(filter)
        return sum(1 for i in candidate_ids
                   if match_document(self._docs[i], filter))

    def distinct(self, field: str, filter: Optional[dict] = None) -> List[Any]:
        seen = []
        for doc in self.find(filter or {}):
            value = get_path(doc, field)
            if value is _MISSING:
                continue
            values = value if isinstance(value, list) else [value]
            for v in values:
                if v not in seen:
                    seen.append(v)
        return seen

    def aggregate(self, pipeline: List[dict]) -> List[dict]:
        docs = [copy.deepcopy(d) for d in self._docs.values()]
        return run_pipeline(docs, pipeline)

    def __len__(self) -> int:
        return len(self._docs)

    def estimated_size_bytes(self) -> int:
        """Rough storage footprint (JSON encoding length)."""
        import json
        return sum(len(json.dumps(d, default=str)) for d in self._docs.values())


class DocumentDB:
    """The database: a namespace of collections (paper's MongoDB role)."""

    def __init__(self, sim=None, name: str = "rai",
                 metrics: Optional[MetricsRegistry] = None):
        self.sim = sim
        self.name = name
        #: Registry backing the planner gauges (private when standalone,
        #: the deployment-wide one when created by :class:`RaiSystem`).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._collections: Dict[str, Collection] = {}
        #: Routing facades by base name: ``collection("submissions")``
        #: returns the facade when that base is sharded, while the
        #: physical ``submissions.pK`` shards stay ordinary collections
        #: in ``_collections`` (journaling and snapshots see partitions,
        #: never the facade).
        self._sharded: Dict[str, Any] = {}
        #: Optional :class:`~repro.durability.DurabilityManager` journal.
        #: When set, every write (insert/update/delete/index/drop) is
        #: appended to the write-ahead log after it is applied.
        self.journal = None
        #: Optional :class:`~repro.obs.usage.UsageMeter`; wired by
        #: RaiSystem so document traffic bills the owning tenant.
        self.usage = None

    def collection(self, name: str):
        sharded = self._sharded.get(name)
        if sharded is not None:
            return sharded
        coll = self._collections.get(name)
        if coll is None:
            coll = self._collections[name] = Collection(self, name)
        return coll

    def shard_collection(self, name: str, shard_map,
                         key_fields=("team", "username")):
        """Register ``name`` as a sharded base routed by ``shard_map``.

        Must happen before any document lands under the plain name — a
        facade cannot adopt an already-populated unsharded collection
        (that is a data migration, not a registration).
        """
        from repro.docdb.sharded import ShardedCollection

        existing = self._collections.get(name)
        if existing is not None and len(existing) > 0:
            raise DocDbError(
                f"cannot shard non-empty collection {name!r}")
        self._collections.pop(name, None)
        sharded = ShardedCollection(self, name, shard_map,
                                    key_fields=key_fields)
        self._sharded[name] = sharded
        return sharded

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def collection_names(self) -> List[str]:
        return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        sharded = self._sharded.pop(name, None)
        if sharded is not None:
            for shard in sharded.shards:
                self.drop_collection(shard.name)
            return
        if self._collections.pop(name, None) is not None \
                and self.journal is not None:
            self.journal.docdb_drop(name)

    def total_documents(self) -> int:
        return sum(len(c) for c in self._collections.values())

    def estimated_size_bytes(self) -> int:
        return sum(c.estimated_size_bytes()
                   for c in self._collections.values())

    def planner_stats(self) -> dict:
        """Aggregated access-path counters across every collection."""
        totals = {"index_hits": 0, "range_hits": 0, "scans": 0,
                  "docs_examined": 0}
        for coll in self._collections.values():
            for key, value in coll.planner_stats.items():
                totals[key] += value
        return totals

    def stats(self) -> dict:
        return {
            "collections": {n: len(c) for n, c in self._collections.items()},
            "total_documents": self.total_documents(),
            "estimated_bytes": self.estimated_size_bytes(),
            "planner": self.planner_stats(),
        }
