"""Kernel workload: determinism golden-trace and throughput smoke.

The golden-trace test is the contract every kernel optimization must
clear: identical seeds produce byte-identical delivery traces.  The perf
smoke puts a (deliberately loose) floor under kernel event throughput so
a catastrophic regression fails tier-1 instead of surfacing weeks later
in a benchmark diff.
"""

import pytest

from repro.workload.kernelbench import (MEDIUM_TIER, SMOKE_TIER,
                                        bench_event_loop,
                                        run_kernel_workload)


@pytest.mark.kernel
def test_smoke_tier_runs_to_completion():
    result = run_kernel_workload(SMOKE_TIER, seed=11)
    assert result.submissions == SMOKE_TIER.n_submissions
    assert result.kernel_events > result.submissions  # >1 event per job
    assert result.docdb_docs == SMOKE_TIER.n_submissions // SMOKE_TIER.docdb_sample
    assert result.events_emitted == SMOKE_TIER.n_submissions
    assert 0 < result.latency_p50 <= result.latency_p95


@pytest.mark.kernel
def test_golden_trace_same_seed_identical_digest():
    """Two same-seed medium runs must produce identical event traces.

    This is the determinism guarantee all benches rest on, asserted at
    the medium tier (100k submissions) where any ordering instability —
    a heap tie broken by identity, an iteration-order dependence, pool
    reuse leaking state — has ample room to surface.
    """
    first = run_kernel_workload(MEDIUM_TIER, seed=408)
    second = run_kernel_workload(MEDIUM_TIER, seed=408)
    assert first.trace_digest == second.trace_digest
    assert first.kernel_events == second.kernel_events
    assert first.sim_duration_s == second.sim_duration_s
    assert first.latency_p95 == second.latency_p95


@pytest.mark.kernel
def test_golden_trace_different_seed_differs():
    a = run_kernel_workload(SMOKE_TIER, seed=1)
    b = run_kernel_workload(SMOKE_TIER, seed=2)
    assert a.trace_digest != b.trace_digest


@pytest.mark.kernel
def test_obs_toggle_does_not_change_event_order():
    """Observability must be free of scheduling side effects."""
    on = run_kernel_workload(SMOKE_TIER, seed=11, obs=True)
    off = run_kernel_workload(SMOKE_TIER, seed=11, obs=False)
    assert on.trace_digest == off.trace_digest
    assert off.events_emitted == 0


@pytest.mark.kernel
@pytest.mark.perf
def test_kernel_event_throughput_floor():
    """Tier-1 canary: pure event-loop throughput must not collapse.

    The floor is ~10x below the measured post-optimization rate (and
    still comfortably below the pre-optimization kernel), so only a
    catastrophic regression — an accidental O(n) scan per event, a
    dropped ``__slots__`` — trips it, not machine noise.
    """
    result = bench_event_loop(n_events=50_000, n_procs=100)
    assert result["events_per_s"] > 80_000, (
        f"kernel event loop at {result['events_per_s']} events/s — "
        "an order of magnitude below expected throughput")
