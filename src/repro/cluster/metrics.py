"""Cost and utilisation accounting for a provisioned fleet."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cluster.provisioner import Provisioner


@dataclass
class CostReport:
    """A snapshot of fleet economics."""

    total_cost_usd: float
    instance_hours: float
    instances_launched: int
    instances_live: int
    mean_utilization: float
    jobs_completed: int

    @staticmethod
    def collect(provisioner: Provisioner) -> "CostReport":
        now = provisioner.sim.now
        hours = 0.0
        utils: List[float] = []
        jobs = 0
        for inst in provisioner.instances:
            end = inst.terminated_at if inst.terminated_at is not None else now
            hours += max(0.0, end - inst.launched_at) / 3600.0
            if inst.worker is not None:
                utils.append(inst.worker.utilization())
                jobs += inst.worker.jobs_completed + inst.worker.jobs_failed
        return CostReport(
            total_cost_usd=provisioner.total_cost(),
            instance_hours=hours,
            instances_launched=len(provisioner.instances),
            instances_live=len(provisioner.live_instances),
            mean_utilization=sum(utils) / len(utils) if utils else 0.0,
            jobs_completed=jobs,
        )

    def render(self) -> str:
        return (f"fleet: {self.instances_launched} launched, "
                f"{self.instances_live} live; "
                f"{self.instance_hours:.1f} instance-hours, "
                f"${self.total_cost_usd:.2f}; "
                f"utilization {self.mean_utilization:.0%}; "
                f"{self.jobs_completed} jobs")
