"""Route parsing: ``topic_name/channel_name`` (paper §V notation)."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import BrokerError

#: Topic/channel names: word characters, dots, dashes; NSQ-style optional
#: ``#ephemeral``-like marker is expressed with a leading ``#`` on channels.
_NAME_RE = re.compile(r"^#?[\w.$-]+$")


@dataclass(frozen=True)
class Route:
    """A parsed ``topic/channel`` pair."""

    topic: str
    channel: str

    def __str__(self):
        return f"{self.topic}/{self.channel}"

    @property
    def channel_is_ephemeral(self) -> bool:
        return self.channel.startswith("#")


def validate_name(name: str, kind: str = "name") -> str:
    if not _NAME_RE.match(name or ""):
        raise BrokerError(f"invalid {kind}: {name!r}")
    return name


def parse_route(route: str) -> Route:
    """Parse ``"topic/channel"``; channel defaults to ``#default``."""
    if "/" in route:
        topic, channel = route.split("/", 1)
    else:
        topic, channel = route, "#default"
    return Route(validate_name(topic, "topic"), validate_name(channel, "channel"))
