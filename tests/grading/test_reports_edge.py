"""Edge cases for grade reports and rubric defaults."""

import pytest

from repro.grading.reports import (
    GradeReport,
    default_code_quality,
    default_report_score,
)
from repro.grading.rubric import GradeBreakdown
from repro.vfs import VirtualFileSystem


def make_submission(files: dict):
    from repro.grading.download import DownloadedSubmission

    fs = VirtualFileSystem()
    fs.import_mapping(files, "/")
    return DownloadedSubmission(
        team="t", job_id="j", username="u", internal_time=1.0,
        instructor_time=1.1, correctness=1.0, fs=fs, archive_bytes=100)


class TestHeuristics:
    def test_code_quality_rewards_structure(self):
        rich = make_submission({
            "submission_code/main.cu":
                "// tuned\n// TILE_WIDTH 32\nint main(){}\n",
            "submission_code/CMakeLists.txt": "project(x)\n",
        })
        poor = make_submission({
            "submission_code/main.cu": "int main(){}",
        })
        assert default_code_quality(rich) > default_code_quality(poor)

    def test_code_quality_empty_submission_zero(self):
        empty = make_submission({"README": "nothing here"})
        assert default_code_quality(empty) == 0.0

    def test_report_score_requires_pdf(self):
        without = make_submission({"submission_code/main.cu": "x"})
        assert default_report_score(without) == 0.0
        with_report = make_submission({
            "submission_code/report.pdf": b"%PDF" + bytes(4096)})
        assert default_report_score(with_report) == 1.0

    def test_small_report_partial_credit(self):
        tiny = make_submission({
            "submission_code/report.pdf": b"%PDF"})
        score = default_report_score(tiny)
        assert 0.4 < score < 0.7


class TestRenderEdges:
    def test_unranked_team_renders(self):
        breakdown = GradeBreakdown(team="t", performance=0.0,
                                   correctness=0.0, code_quality=0.5,
                                   report=0.5, total=0.25, rank=None,
                                   best_time=None)
        report = GradeReport(breakdown=breakdown, evaluation_runs=0,
                             comments=["no successful grading run"])
        text = report.render()
        assert "unranked" in text
        assert "no successful run" in text
        assert "no successful grading run" in text
