"""The container engine a worker drives."""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.container.container import Container
from repro.container.image import Image, ImageRegistry, default_registry
from repro.container.limits import ResourceLimits
from repro.container.volumes import VolumeMount


class ContainerRuntime:
    """Per-worker Docker-engine stand-in.

    Tracks a *layer-addressed* local image cache: the first job needing an
    image pays the registry pull ("if the machine does not have the Docker
    image, then it's pulled from the Docker repository", §V Worker
    Operations step 3) — but only for the layers this engine has never
    seen.  Whitelisted course images share their CUDA base layer, so a
    worker that already pulled one image starts the others after
    transferring just their unique top layers.
    """

    def __init__(self, registry: Optional[ImageRegistry] = None,
                 pull_bandwidth_bps: float = 100e6,
                 clock: Optional[Callable[[], float]] = None):
        self.registry = registry if registry is not None else default_registry()
        self.pull_bandwidth_bps = pull_bandwidth_bps
        self.clock = clock
        self._layer_cache: Set[str] = set()
        self._layer_cache_bytes = 0
        self._pulled_images: Set[str] = set()
        self.containers: List[Container] = []
        self.total_created = 0
        self.total_destroyed = 0
        self.total_bytes_pulled = 0
        self.total_bytes_pull_saved = 0

    def missing_layer_bytes(self, image: Image) -> int:
        """Bytes of ``image`` this engine has not yet pulled."""
        return sum(layer.size_bytes for layer in image.effective_layers()
                   if layer.digest not in self._layer_cache)

    def pull_cost_seconds(self, image_name: str) -> float:
        """Seconds the next ``create_container`` will spend pulling.

        Only missing layer bytes count: shared base layers already held
        (from this or any other whitelisted image) transfer nothing.
        """
        image = self.registry.get(image_name)
        return self.missing_layer_bytes(image) / self.pull_bandwidth_bps

    def _pull(self, image: Image) -> None:
        """Account the pull: cache every layer, tally hit/miss bytes."""
        for layer in image.effective_layers():
            if layer.digest in self._layer_cache:
                self.total_bytes_pull_saved += layer.size_bytes
            else:
                self._layer_cache.add(layer.digest)
                self._layer_cache_bytes += layer.size_bytes
                self.total_bytes_pulled += layer.size_bytes
        self._pulled_images.add(image.name)

    def create_container(self, image_name: str,
                         limits: Optional[ResourceLimits] = None,
                         mounts: Optional[List[VolumeMount]] = None,
                         gpu_device=None,
                         on_output=None) -> Container:
        """Validate against the whitelist, pull if needed, and create.

        Raises :class:`~repro.errors.ImageNotWhitelisted` /
        :class:`~repro.errors.ImageNotFound` before any resources are
        committed.
        """
        image = self.registry.get(image_name)
        self._pull(image)
        container = Container(
            image=image,
            limits=limits or ResourceLimits(),
            mounts=mounts or [],
            gpu_device=gpu_device,
            on_output=on_output,
            clock=self.clock,
        )
        self.containers.append(container)
        self.total_created += 1
        return container

    def destroy_container(self, container: Container) -> None:
        container.destroy()
        if container in self.containers:
            self.containers.remove(container)
        self.total_destroyed += 1

    @property
    def live_count(self) -> int:
        return len(self.containers)

    def stats(self) -> dict:
        return {
            "created": self.total_created,
            "destroyed": self.total_destroyed,
            "live": self.live_count,
            "cached_images": sorted(self._pulled_images),
            "cached_layers": len(self._layer_cache),
            "cached_layer_bytes": self._layer_cache_bytes,
            "bytes_pulled": self.total_bytes_pulled,
            "bytes_pull_saved": self.total_bytes_pull_saved,
        }
