"""Container images, the registry, and the course whitelist.

Students "can choose from a whitelist of base images" (§V); the default
course image ships "the latest CUDA toolkit along with CUDNN and other
neural network frameworks such as Tensorflow and Torch7" plus the project's
HDF5 data baked in (dependencies are provided in the image to speed builds,
§V footnote on Hunter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ImageNotFound, ImageNotWhitelisted
from repro.gpu.cnn import generate_dataset, generate_model_weights
from repro.gpu.hdf5sim import write_h5s
from repro.gpu.kernels import FULL_DATASET_SIZE, SMALL_DATASET_SIZE


@dataclass(frozen=True)
class ImageLayer:
    """One content-addressed slice of an image.

    Layers are the unit of the registry pull: a worker that already holds
    a layer (because another whitelisted image shares it) never transfers
    it again — pull cost is the *missing* layer bytes only.
    """

    digest: str                    # e.g. "sha256:cuda-base"
    size_bytes: int

    def __post_init__(self):
        if self.size_bytes < 0:
            raise ValueError("layer size must be >= 0")


@dataclass
class Image:
    """A container base image."""

    name: str                      # e.g. "webgpu/rai:root"
    size_bytes: int                # governs pull time on a cache miss
    packages: List[str] = field(default_factory=list)
    #: Files materialised into every container created from this image.
    fs_template: Dict[str, bytes] = field(default_factory=dict)
    #: Declared layer manifest.  Empty means "one opaque layer of
    #: ``size_bytes``" (the pre-layer-cache behaviour); declared layers
    #: should sum to ``size_bytes`` so pull accounting stays honest.
    layers: List[ImageLayer] = field(default_factory=list)

    def effective_layers(self) -> List[ImageLayer]:
        """The layer manifest, synthesising a single whole-image layer
        for images that declare none."""
        if self.layers:
            return list(self.layers)
        return [ImageLayer(digest=f"sha256:whole:{self.name}",
                           size_bytes=self.size_bytes)]

    def pull_seconds(self, bandwidth_bps: float = 100e6) -> float:
        return sum(l.size_bytes for l in self.effective_layers()) \
            / bandwidth_bps


class ImageRegistry:
    """The Docker-repository stand-in plus the per-course whitelist."""

    def __init__(self):
        self._images: Dict[str, Image] = {}
        self._whitelist: Optional[List[str]] = None

    def add(self, image: Image, whitelisted: bool = True) -> Image:
        self._images[image.name] = image
        if whitelisted:
            if self._whitelist is None:
                self._whitelist = []
            if image.name not in self._whitelist:
                self._whitelist.append(image.name)
        return image

    def set_whitelist(self, names: List[str]) -> None:
        self._whitelist = list(names)

    @property
    def whitelist(self) -> List[str]:
        return list(self._whitelist or [])

    def get(self, name: str, enforce_whitelist: bool = True) -> Image:
        if enforce_whitelist and self._whitelist is not None and \
                name not in self._whitelist:
            raise ImageNotWhitelisted(
                f"image {name!r} is not on the course whitelist "
                f"{self._whitelist}")
        try:
            return self._images[name]
        except KeyError:
            raise ImageNotFound(name) from None

    def exists(self, name: str) -> bool:
        return name in self._images

    def names(self) -> List[str]:
        return sorted(self._images)


#: Dataset/model blobs are expensive to regenerate; build them once.
_COURSE_DATA_CACHE: Dict[str, bytes] = {}


def course_data_files(full_size: int = FULL_DATASET_SIZE,
                      small_size: int = SMALL_DATASET_SIZE) -> Dict[str, bytes]:
    """The /data files baked into the course image.

    ``testfull.hdf5`` carries only its labels plus a recorded size (not
    10,000 raster images) to keep simulated containers light; the ``ece408``
    guest program understands both representations.
    """
    key = f"{full_size}:{small_size}"
    if key not in _COURSE_DATA_CACHE:
        import numpy as np

        small_images, small_labels = generate_dataset(small_size)
        weights = generate_model_weights()
        full = write_h5s({
            "labels": np.zeros(0, dtype=np.int64),
            "count": np.asarray([full_size], dtype=np.int64),
        })
        small = write_h5s({"images": small_images, "labels": small_labels,
                           "count": np.asarray([small_size], dtype=np.int64)})
        model = write_h5s(weights)
        _COURSE_DATA_CACHE[key] = {
            "data/test10.hdf5": small,
            "data/testfull.hdf5": full,
            "data/model.hdf5": model,
        }
    return dict(_COURSE_DATA_CACHE[key])


#: The CUDA runtime + toolkit base shared by every whitelisted course
#: image.  Declaring it once means a worker that pulled *any* course image
#: pays only the per-image top layers for the others.
CUDA_BASE_LAYER = ImageLayer(digest="sha256:cuda-8.0-base",
                             size_bytes=768 * 1024 ** 2)


def default_registry() -> ImageRegistry:
    """The registry used by the Applied Parallel Programming course."""
    registry = ImageRegistry()
    data = course_data_files()
    registry.add(Image(
        name="webgpu/rai:root",
        size_bytes=4 * 1024 ** 3,
        packages=["cuda-8.0", "cudnn-5.1", "cmake", "make",
                  "libhdf5", "tensorflow", "torch7"],
        fs_template=data,
        layers=[
            CUDA_BASE_LAYER,
            ImageLayer(digest="sha256:rai-frameworks",
                       size_bytes=4 * 1024 ** 3 - CUDA_BASE_LAYER.size_bytes),
        ],
    ))
    registry.add(Image(
        name="webgpu/rai:minimal",
        size_bytes=1 * 1024 ** 3,
        packages=["cuda-8.0", "cmake", "make", "libhdf5"],
        fs_template=data,
        layers=[
            CUDA_BASE_LAYER,
            ImageLayer(digest="sha256:rai-buildtools",
                       size_bytes=1 * 1024 ** 3 - CUDA_BASE_LAYER.size_bytes),
        ],
    ))
    # Present in the repository but NOT whitelisted for the course — used
    # by tests to prove whitelist enforcement.
    registry.add(Image(
        name="sketchy/custom:latest",
        size_bytes=512 * 1024 ** 2,
        packages=["netcat"],
    ), whitelisted=False)
    return registry
