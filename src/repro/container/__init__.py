"""Docker-like sandboxed container runtime.

"All student execution commands, specified within the rai-build.yaml, are
performed within a Docker container" (§V, Container Execution).  The
security contract the paper states — and this runtime enforces — is:

- the base image must come from a **whitelist** chosen by the staff;
- the container gets **no network access**;
- memory is capped (**8 GB** by default);
- the container has a **maximum lifetime of 1 hour**;
- a fresh container is started per job and destroyed afterwards;
- the student project is mounted **read-only at /src**; the working
  directory is a writable **/build**; the CUDA volume exposes the GPU.

Inside the container, commands run under a small POSIX-flavoured guest
shell (:mod:`repro.container.shell`) against the job's virtual filesystem,
with a registry of guest programs (:mod:`repro.container.commands`)
covering the coreutils, the CMake/Make toolchain, ``/usr/bin/time``,
``nvprof``, and the course's ``ece408`` CNN binary.
"""

from repro.container.limits import ResourceLimits
from repro.container.image import (Image, ImageLayer, ImageRegistry,
                                   default_registry)
from repro.container.volumes import VolumeMount, cuda_volume
from repro.container.container import Container, ContainerState, ExecResult
from repro.container.runtime import ContainerRuntime
from repro.container.pool import WarmContainerPool

__all__ = [
    "ResourceLimits",
    "Image",
    "ImageLayer",
    "ImageRegistry",
    "default_registry",
    "VolumeMount",
    "cuda_volume",
    "Container",
    "ContainerState",
    "ExecResult",
    "ContainerRuntime",
    "WarmContainerPool",
]
