"""Durable control plane: write-ahead log, snapshots, and recovery.

The paper's deployment survived a full semester because its state lived
in real MongoDB/RabbitMQ/S3; the in-memory reproduction would lose every
queue and submission record on restart.  This package closes that gap:

- :mod:`repro.durability.wal` — the CRC-framed, torn-tail-tolerant
  write-ahead log every control-plane mutation is appended to.
- :mod:`repro.durability.snapshot` — full-state capture/install (the
  WAL's compaction point).
- :mod:`repro.durability.manager` — the :class:`DurabilityManager` that
  the subsystems journal through, plus checkpointing and the recovery
  sequence (install snapshot → replay WAL → repair soft state).

Entry points live on :class:`~repro.core.system.RaiSystem`:
``attach_durability(path)``, ``checkpoint()``, ``crash_stop()``, and the
``RaiSystem.restore(path)`` classmethod.
"""

from repro.durability.manager import RECOVERY_TIME_BUCKETS, DurabilityManager
from repro.durability.snapshot import (
    SNAPSHOT_VERSION,
    capture,
    install,
    live_manifests,
    load_snapshot,
    write_snapshot,
)
from repro.durability.wal import (
    HEADER,
    WriteAheadLog,
    decode_record,
    encode_record,
)

__all__ = [
    "DurabilityManager",
    "HEADER",
    "RECOVERY_TIME_BUCKETS",
    "SNAPSHOT_VERSION",
    "WriteAheadLog",
    "capture",
    "decode_record",
    "encode_record",
    "install",
    "live_manifests",
    "load_snapshot",
    "write_snapshot",
]
