"""Usage meter and cost books participate in snapshot/restore.

The acceptance bar: after a snapshot → restore into a fresh deployment,
the books still satisfy attributed + idle == the pre-crash fleet total
within 1e-6, and per-team ledgers, budgets, and job exemplars survive.
"""

import pytest

from repro.cluster import Provisioner
from repro.core.config import SystemConfig
from repro.core.job import JobStatus
from repro.core.system import RaiSystem
from repro.durability.snapshot import capture, install

pytestmark = [pytest.mark.durability, pytest.mark.usage]

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\nint main(){}\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


def _metered_run(seed=81, teams=("team-a", "team-b")):
    system = RaiSystem(seed=seed,
                       config=SystemConfig(usage_window_seconds=300.0))
    provisioner = Provisioner(system)
    provisioner.launch_many(2, instance_type="p2.xlarge",
                            max_concurrent_jobs=2, boot_delay=1.0)
    system.run(until=5)
    system.cost_allocator.set_budget("team-a", 42.0)
    for team in teams:
        client = system.new_client(team=team)
        client.stage_project(FILES)
        result = system.run(client.submit())
        assert result.status is JobStatus.SUCCEEDED
    # Retire the fleet and settle every complete window so the books
    # have both settled history and a frozen fleet total.
    provisioner.terminate_all()
    system.cost_allocator.refresh()
    return system, provisioner


class TestUsageSnapshot:
    def test_meter_and_books_round_trip(self):
        system, provisioner = _metered_run()
        fleet_total = provisioner.total_cost()
        usage_before = {t: dict(r) for t, r in system.usage.tenants.items()}
        snap = capture(system)
        assert snap["usage"] is not None
        assert snap["cost"] is not None

        target = RaiSystem(seed=81,
                           config=SystemConfig(usage_window_seconds=300.0))
        counts = install(target, snap)
        assert counts["usage_tenants"] >= 2
        assert {t: dict(r) for t, r in target.usage.tenants.items()} == \
            usage_before
        assert target.cost_allocator.budgets == {"team-a": 42.0}
        # Conservation against the PRE-CRASH fleet total.
        view = target.cost_allocator.preview()
        assert view["attributed_total"] + view["idle_cost"] == \
            pytest.approx(fleet_total, abs=1e-6)

    def test_restored_books_keep_balancing_under_new_load(self):
        system, _ = _metered_run(seed=82)
        snap = capture(system)

        target = RaiSystem(seed=82,
                           config=SystemConfig(usage_window_seconds=300.0))
        install(target, snap)
        target.storage.rebuild_chunk_refcounts()
        target.storage.rebuild_upload_bases()
        restored_base = target.cost_allocator.preview()["fleet_cost"]
        # New fleet, new jobs on the restored deployment: fresh accrual
        # stacks on top of the carried books without double counting.
        provisioner = Provisioner(target)
        provisioner.launch_many(2, instance_type="p2.xlarge",
                                max_concurrent_jobs=2, boot_delay=1.0)
        target.run(until=target.sim.now + 5)
        client = target.new_client(team="team-c")
        client.stage_project(FILES)
        result = target.run(client.submit())
        assert result.status is JobStatus.SUCCEEDED

        view = target.cost_allocator.preview()
        assert view["fleet_cost"] == pytest.approx(
            restored_base + provisioner.total_cost(), abs=1e-6)
        assert view["attributed_total"] + view["idle_cost"] == \
            pytest.approx(view["fleet_cost"], abs=1e-6)
        assert target.usage.tenant_total("team-c", "container_seconds") > 0

    def test_job_exemplars_survive_restore(self):
        system, _ = _metered_run(seed=83, teams=("team-a",))
        top_before = [(j.job_id, j.tenant, j.trace_id)
                      for j in system.usage.top_jobs()]
        assert top_before
        snap = capture(system)
        target = RaiSystem(seed=83)
        install(target, snap)
        top_after = [(j.job_id, j.tenant, j.trace_id)
                     for j in target.usage.top_jobs()]
        assert top_after == top_before

    def test_pre_usage_snapshot_installs_cleanly(self):
        """Snapshots from before metering existed restore to empty books."""
        system, _ = _metered_run(seed=84)
        snap = capture(system)
        del snap["usage"]
        del snap["cost"]
        target = RaiSystem(seed=84)
        install(target, snap)
        assert target.usage.total_records == 0
        assert target.cost_allocator.fleet_cost == 0.0

        snap2 = capture(system)
        snap2["usage"] = None
        snap2["cost"] = None
        target2 = RaiSystem(seed=84)
        install(target2, snap2)
        assert target2.usage.total_records == 0
