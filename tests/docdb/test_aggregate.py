"""Unit tests for the aggregation pipeline."""

import pytest

from repro.docdb import DocumentDB
from repro.errors import InvalidQuery


@pytest.fixture
def coll():
    db = DocumentDB()
    c = db["submissions"]
    c.insert_many([
        {"team": "t1", "kind": "run", "time": 3.0},
        {"team": "t1", "kind": "final", "time": 1.0},
        {"team": "t2", "kind": "run", "time": 5.0},
        {"team": "t2", "kind": "final", "time": 2.0},
        {"team": "t2", "kind": "final", "time": 1.5},
    ])
    return c


class TestStages:
    def test_match(self, coll):
        out = coll.aggregate([{"$match": {"kind": "final"}}])
        assert len(out) == 3

    def test_group_accumulators(self, coll):
        out = coll.aggregate([
            {"$group": {"_id": "$team",
                        "best": {"$min": "$time"},
                        "worst": {"$max": "$time"},
                        "total": {"$sum": "$time"},
                        "mean": {"$avg": "$time"},
                        "n": {"$sum": 1}}},
            {"$sort": {"_id": 1}},
        ])
        t1, t2 = out
        assert t1 == {"_id": "t1", "best": 1.0, "worst": 3.0, "total": 4.0,
                      "mean": 2.0, "n": 2}
        assert t2["n"] == 3 and t2["best"] == 1.5

    def test_group_all_with_null_id(self, coll):
        out = coll.aggregate([
            {"$group": {"_id": None, "n": {"$sum": 1}}}])
        assert out == [{"_id": None, "n": 5}]

    def test_group_push_and_first_last(self, coll):
        out = coll.aggregate([
            {"$match": {"team": "t2"}},
            {"$group": {"_id": "$team", "times": {"$push": "$time"},
                        "first": {"$first": "$time"},
                        "last": {"$last": "$time"}}},
        ])
        assert out[0]["times"] == [5.0, 2.0, 1.5]
        assert out[0]["first"] == 5.0 and out[0]["last"] == 1.5

    def test_sort_skip_limit(self, coll):
        out = coll.aggregate([
            {"$sort": {"time": 1}},
            {"$skip": 1},
            {"$limit": 2},
        ])
        assert [d["time"] for d in out] == [1.5, 2.0]

    def test_project_computed(self, coll):
        out = coll.aggregate([
            {"$match": {"team": "t1", "kind": "final"}},
            {"$project": {"_id": 0, "team": 1,
                          "ms": {"$multiply": ["$time", 1000]}}},
        ])
        assert out == [{"team": "t1", "ms": 1000.0}]

    def test_add_fields(self, coll):
        out = coll.aggregate([
            {"$match": {"time": 3.0}},
            {"$addFields": {"double": {"$add": ["$time", "$time"]}}},
        ])
        assert out[0]["double"] == 6.0
        assert out[0]["team"] == "t1"

    def test_unwind(self):
        db = DocumentDB()
        c = db["c"]
        c.insert_one({"team": "t1", "members": ["a", "b"]})
        c.insert_one({"team": "t2", "members": []})
        out = c.aggregate([{"$unwind": "$members"}])
        assert [(d["team"], d["members"]) for d in out] == \
            [("t1", "a"), ("t1", "b")]

    def test_count(self, coll):
        assert coll.aggregate([
            {"$match": {"kind": "final"}},
            {"$count": "finals"},
        ]) == [{"finals": 3}]

    def test_pipeline_composition_ranking(self, coll):
        """The actual ranking recompute: best final time per team."""
        out = coll.aggregate([
            {"$match": {"kind": "final"}},
            {"$group": {"_id": "$team", "best": {"$min": "$time"}}},
            {"$sort": {"best": 1}},
        ])
        assert [d["_id"] for d in out] == ["t1", "t2"]


class TestErrors:
    def test_group_requires_id(self, coll):
        with pytest.raises(InvalidQuery):
            coll.aggregate([{"$group": {"n": {"$sum": 1}}}])

    def test_unknown_stage(self, coll):
        with pytest.raises(InvalidQuery):
            coll.aggregate([{"$teleport": {}}])

    def test_unknown_accumulator(self, coll):
        with pytest.raises(InvalidQuery):
            coll.aggregate([{"$group": {"_id": None,
                                        "x": {"$median": "$time"}}}])

    def test_multi_key_stage_rejected(self, coll):
        with pytest.raises(InvalidQuery):
            coll.aggregate([{"$match": {}, "$limit": 1}])
