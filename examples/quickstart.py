#!/usr/bin/env python
"""Quickstart: submit one job to a RAI deployment and read the results.

This walks the exact flow of the paper's §V: a student stages a project,
the client uploads it to the file server and publishes a job message, a
worker runs the build inside a sandboxed container streaming logs back
through an ephemeral broker topic, and the ``/build`` directory comes back
through a presigned URL.

Run:  python examples/quickstart.py
"""

from repro import RaiSystem
from repro.vfs import VirtualFileSystem, unpack_tree


def main() -> None:
    # A deployment: broker + file server + database + 2 GPU workers,
    # all on one deterministic simulation kernel.
    system = RaiSystem.standard(num_workers=2, seed=7)

    # A student (credentials are issued through the real key store).
    client = system.new_client(
        team="gpu-wizards",
        on_line=lambda stream, text: print(text, end=""),
    )

    # Their project directory.  The @rai-sim marker stands in for code we
    # cannot compile offline (see DESIGN.md): quality 0.9 ≈ a well-tuned
    # GPU kernel; impl=im2col means the real NumPy CNN actually runs on
    # the small dataset, so the accuracy check is genuine.
    client.stage_project({
        "main.cu": (
            "// @rai-sim quality=0.9 impl=im2col\n"
            "#define TILE_WIDTH 16\n"
            "__global__ void forward_kernel(float *y, const float *x) "
            "{ /* ... */ }\n"
        ),
        "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
    })

    # No rai-build.yml staged → the Listing 1 default is used: cmake,
    # make, run on test10, profile under nvprof.
    print("=== submitting (watch the worker's log stream) ===")
    result = system.run(client.submit())

    print("\n=== result ===")
    print(f"status:          {result.status.value}")
    print(f"queue wait:      {result.queue_wait:.1f}s "
          f"(includes the worker's one-time image pull)")
    print(f"turnaround:      {result.turnaround:.1f}s")
    print(f"internal timer:  {result.internal_time:.4f}s")
    print(f"correctness:     {result.correctness:.4f}")

    # Fetch the /build archive the worker uploaded.
    blob = client.download_build(result)
    fs = VirtualFileSystem()
    unpack_tree(blob, fs, "/")
    print(f"build artifacts: {sorted(fs.export_mapping('/'))}")
    print("(timeline.nvprof is the nvprof export students open in nvvp)")


if __name__ == "__main__":
    main()
