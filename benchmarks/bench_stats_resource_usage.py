"""§VII/§VIII headline statistics — resource usage of the whole course.

Paper: "176 students formed 58 teams", "over 40,000 project submissions",
"30,782 submissions [in the] last 2 weeks", "the file server held 100GB of
data for 176 students", "25GB of logs and meta-data".

This bench regenerates the aggregates from the shared course replay.
Byte totals scale with the declared project size (~2.5 MB mean, the
paper's 100 GB / 40 k submissions); see DESIGN.md's padding substitution.
"""

from benchmarks.conftest import print_banner
from repro.analysis import format_bytes


def test_stats_course_resource_usage(benchmark, course_result):
    simulation, result = course_result

    totals = benchmark.pedantic(result.totals, rounds=1, iterations=1)
    config = result.config

    print_banner("§VII/§VIII — course resource usage")
    paper = {
        "students": 176,
        "teams": 58,
        "submissions": "> 40,000 (30,782 in last 2 weeks)",
        "file server": "100 GB",
        "logs/metadata": "25 GB",
    }
    last2 = len(result.last_two_weeks())
    rows = [
        ("students", totals["students"], paper["students"]),
        ("teams", totals["teams"], paper["teams"]),
        ("total submissions", totals["submissions"],
         paper["submissions"]),
        ("last-2-weeks submissions", last2, "30,782"),
        ("data uploaded", format_bytes(totals["uploaded_bytes"]), "~100 GB"),
        ("file server holding", format_bytes(totals["file_server_bytes"]),
         "100 GB"),
        ("file server objects", totals["file_server_objects"], "-"),
        ("db log/metadata", format_bytes(totals["log_metadata_bytes"]),
         "25 GB (full logs; ours keeps 2 KB tails)"),
        ("ranking rows", totals["rankings"], 58),
        ("fleet cost", f"${totals['cost_usd']:.0f}", "(not reported)"),
    ]
    width = max(len(r[0]) for r in rows)
    print(f"{'metric':<{width}} | measured | paper")
    for name, measured, expected in rows:
        print(f"{name:<{width}} | {measured} | {expected}")

    # --- shape assertions (scaled to the configured class size) ----------
    scale = config.n_teams / 58.0
    assert totals["students"] == config.n_students
    assert totals["teams"] == config.n_teams
    assert totals["submissions"] > 25_000 * scale
    assert last2 > 15_000 * scale
    assert last2 / totals["submissions"] > 0.5   # last 2 weeks dominate
    # ~100 GB at full scale; proportionally less at smaller scales.
    assert totals["file_server_bytes"] > 40e9 * scale * \
        (config.duration_days / 35.0)
    assert totals["rankings"] == config.n_teams
    assert totals["jobs_recorded"] == totals["submissions"]
