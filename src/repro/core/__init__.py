"""The RAI submission system proper: client, worker, protocol, ranking.

This package is the paper's primary contribution — everything else in
``repro`` is substrate.  See :class:`repro.core.system.RaiSystem` for the
fully wired deployment and :mod:`repro.core.client` /
:mod:`repro.core.worker` for the two sides of the submission protocol
(§V's numbered client and worker steps are implemented literally).
"""

from repro.core.job import Job, JobKind, JobResult, JobStatus
from repro.core.config import WorkerConfig, SystemConfig
from repro.core.ratelimit import RateLimiter
from repro.core.ranking import RankingService
from repro.core.client import RaiClient
from repro.core.worker import RaiWorker
from repro.core.system import RaiSystem
from repro.core.cli import RaiCLI
from repro.core.interactive import InteractiveSession

__all__ = [
    "Job",
    "JobKind",
    "JobResult",
    "JobStatus",
    "WorkerConfig",
    "SystemConfig",
    "RateLimiter",
    "RankingService",
    "RaiClient",
    "RaiWorker",
    "RaiSystem",
    "RaiCLI",
    "InteractiveSession",
]
