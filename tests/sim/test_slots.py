"""Hot types must stay ``__dict__``-free.

Per-instance dicts on the kernel's high-churn objects cost ~100 bytes and
a hashing indirection per attribute access; this suite pins every type on
an allocation-heavy path to ``__slots__`` so a refactor can't silently
reintroduce dicts.
"""

import pytest

from repro.broker.message import Message
from repro.broker.topic import Channel, Topic
from repro.obs.context import TraceContext
from repro.obs.events import Event as ObsEvent
from repro.obs.span import Span
from repro.sim.events import AllOf, AnyOf, Condition, Event, Timeout
from repro.sim.kernel import Process, Simulator
from repro.sim.pool import FreeList
from repro.sim.resources import (Container, Resource, Store, StoreGet,
                                 StorePut)

#: Every type allocated per-event, per-message, or per-span at bench
#: scale.  Adding a class here is the price of making it hot.
HOT_TYPES = [
    Event, Timeout, Condition, AllOf, AnyOf, Process, Simulator,
    Store, StorePut, StoreGet, Resource, Container,
    Channel, Topic, Message, FreeList,
    TraceContext, Span, ObsEvent,
]


def _has_instance_dict(cls) -> bool:
    """True if instances of ``cls`` carry a ``__dict__``.

    Checks the whole MRO: a slotted subclass of an unslotted base still
    pays for the dict, so asserting ``"__slots__" in cls.__dict__`` alone
    would pass a broken hierarchy.
    """
    return any("__dict__" in base.__dict__ for base in cls.__mro__
               if base is not object)


@pytest.mark.kernel
@pytest.mark.parametrize("cls", HOT_TYPES, ids=lambda c: c.__name__)
def test_hot_type_defines_slots(cls):
    assert "__slots__" in cls.__dict__ or "__slots__" in vars(cls), \
        f"{cls.__name__} must define __slots__"
    assert not _has_instance_dict(cls), \
        f"{cls.__name__} instances still get a __dict__ (unslotted base?)"


@pytest.mark.kernel
def test_slotted_event_rejects_adhoc_attributes(sim):
    evt = Event(sim)
    with pytest.raises(AttributeError):
        evt.scratch = 1  # noqa: attribute must not exist
