"""Failure injection: worker crashes and at-least-once job delivery.

§V: "Since RAI is a distributed architecture, these operations need to
happen in order and be robust to failures."  A worker that dies mid-job
never acks its message; the broker caretaker requeues it and another
worker finishes the job — the client, still subscribed to the log topic,
gets its End.
"""

import pytest

from repro.core.config import WorkerConfig
from repro.core.job import JobStatus
from repro.core.system import RaiSystem

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


class TestBrokerRedelivery:
    def test_stale_in_flight_requeued(self, sim):
        from repro.broker import Consumer, MessageBroker

        broker = MessageBroker(sim)
        consumer = Consumer(broker, "rai/tasks")
        broker.publish("rai", {"n": 1})

        def dead_consumer(sim):
            msg = yield consumer.get()
            # ...and never acks (crash).
            return msg.id

        proc = sim.process(dead_consumer(sim))
        sim.run(until=proc)
        assert len(consumer.channel.in_flight) == 1

        def advance(sim):
            yield sim.timeout(100.0)

        sim.process(advance(sim))
        sim.run()
        assert broker.requeue_stale(in_flight_timeout=50.0) == 1
        assert consumer.channel.depth == 1
        assert not consumer.channel.in_flight

    def test_fresh_in_flight_untouched(self, sim):
        from repro.broker import Consumer, MessageBroker

        broker = MessageBroker(sim)
        consumer = Consumer(broker, "rai/tasks")
        broker.publish("rai", {"n": 1})

        def holder(sim):
            msg = yield consumer.get()
            assert broker.requeue_stale(in_flight_timeout=1000.0) == 0
            consumer.ack(msg)

        sim.run(until=sim.process(holder(sim)))

    def test_caretaker_process_sweeps(self, sim):
        from repro.broker import Consumer, MessageBroker

        broker = MessageBroker(sim)
        consumer = Consumer(broker, "rai/tasks")
        broker.publish("rai", {"n": 1})

        def dead(sim):
            yield consumer.get()

        sim.run(until=sim.process(dead(sim)))
        sim.process(broker.caretaker(interval=10.0,
                                     in_flight_timeout=30.0))
        sim.run(until=100.0)
        assert consumer.channel.depth == 1
        assert broker.counters.get("stale_requeued") == 1


class TestWorkerCrashRecovery:
    def test_job_survives_worker_crash(self):
        """The headline at-least-once path, end to end."""
        system = RaiSystem.standard(num_workers=1, seed=66)
        system.start_caretaker(interval=30.0, in_flight_timeout=600.0)
        victim = system.workers[0]

        client = system.new_client(team="resilient-team")
        client.stage_project(FILES)
        job_proc = system.sim.process(client.submit())

        def chaos(sim):
            # Let the worker take the job, then kill it mid-flight.
            yield sim.timeout(5.0)
            assert victim.active_jobs == 1
            victim.crash()
            # Replacement capacity arrives a minute later.
            yield sim.timeout(60.0)
            system.add_worker()

        system.sim.process(chaos(system.sim))
        result = system.run(job_proc)
        assert result.status is JobStatus.SUCCEEDED
        # The job ran on the replacement worker.
        assert result.worker_id != victim.id
        # The message went around twice.
        submissions = system.db.collection("submissions")
        assert submissions.count_documents(
            {"job_id": result.job_id, "status": "succeeded"}) == 1

    def test_crash_without_caretaker_leaves_job_stuck(self):
        """Negative control: no caretaker → the client waits forever."""
        system = RaiSystem.standard(num_workers=1, seed=66)
        victim = system.workers[0]
        client = system.new_client(team="t")
        client.stage_project(FILES)
        job_proc = system.sim.process(client.submit())

        def chaos(sim):
            yield sim.timeout(5.0)
            victim.crash()
            yield sim.timeout(60.0)
            system.add_worker()

        system.sim.process(chaos(system.sim))
        system.run(until=system.sim.now + 7200.0)
        assert job_proc.is_alive   # still waiting: message never requeued

    def test_graceful_stop_still_acks(self):
        """stop() (scale-in) does NOT cause redelivery."""
        system = RaiSystem.standard(num_workers=1, seed=66)
        system.start_caretaker(interval=30.0, in_flight_timeout=600.0)
        victim = system.workers[0]
        client = system.new_client(team="t")
        client.stage_project(FILES)
        job_proc = system.sim.process(client.submit())

        def scale_in(sim):
            yield sim.timeout(5.0)
            victim.stop()
            yield sim.timeout(60.0)
            system.add_worker()

        system.sim.process(scale_in(system.sim))
        result = system.run(job_proc)
        # Gracefully stopped worker reported failure itself; no retry.
        assert result.status is JobStatus.FAILED
        assert "shutting down" in result.stderr_text()

    def test_crash_during_interactive_session_ends_it(self):
        from repro.core.interactive import InteractiveSession

        system = RaiSystem(seed=66)
        worker = system.add_worker(WorkerConfig(enable_interactive=True))
        client = system.new_client(team="t")
        client.stage_project(FILES)
        session = InteractiveSession(client)

        def student(sim):
            yield from session.start()
            out = yield from session.run("pwd")
            return out

        proc = system.sim.process(student(system.sim))
        result = system.run(proc)
        assert result.exit_code == 0
        worker.crash()
        assert not worker.is_running
