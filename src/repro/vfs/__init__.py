"""In-memory POSIX-style virtual filesystem.

Student projects, container images, and job sandboxes all live in
:class:`VirtualFileSystem` instances.  The worker mounts the student's
project at ``/src`` (read-only) and gives the job a writable ``/build``
directory, exactly as the paper's Docker workers do (§V, "Worker
Operations").  Archives use real ``tar`` + ``bz2`` encoding over in-memory
buffers so the ``.tar.bz2`` artifacts exchanged with the file server are
genuine.
"""

from repro.vfs.path import normalize, join, parent_of, basename, split_parts
from repro.vfs.node import FileNode, DirNode
from repro.vfs.filesystem import (
    AccessTrace,
    VirtualFileSystem,
    file_digest,
    tree_signature,
)
from repro.vfs.archive import pack_tree, unpack_tree, archive_member_names

__all__ = [
    "normalize",
    "join",
    "parent_of",
    "basename",
    "split_parts",
    "FileNode",
    "DirNode",
    "AccessTrace",
    "VirtualFileSystem",
    "file_digest",
    "tree_signature",
    "pack_tree",
    "unpack_tree",
    "archive_member_names",
]
