"""The download page (Figure 3) and the commit-bisection helper."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import ReleaseError
from repro.release.buildmatrix import BUILD_MATRIX
from repro.release.ci import Commit, ContinuousBuilder


class DownloadPage:
    """The project-website table: one row per OS/arch, with stable
    (master) and development (devel) links, "continuously updated" as CI
    publishes new builds."""

    def __init__(self, builder: ContinuousBuilder):
        self.builder = builder

    def rows(self) -> List[dict]:
        out = []
        for target in self.builder.targets:
            row = {"os": target.os, "arch": target.arch}
            for column, branch in (("stable", "master"),
                                   ("development", "devel")):
                try:
                    artifact = self.builder.latest(branch, target.key)
                    row[column] = artifact.url
                    row[f"{column}_commit"] = artifact.commit
                except ReleaseError:
                    row[column] = None
                    row[f"{column}_commit"] = None
            out.append(row)
        return out

    def render(self) -> str:
        header = (f"{'Operating System':<18} {'Architecture':<12} "
                  f"{'Stable':<8} {'Development':<12}")
        lines = [header, "-" * len(header)]
        for row in self.rows():
            stable = "URL" if row["stable"] else "-"
            devel = "URL" if row["development"] else "-"
            lines.append(f"{row['os']:<18} {row['arch']:<12} "
                         f"{stable:<8} {devel:<12}")
        return "\n".join(lines)


def find_regression(commits: List[Commit],
                    is_bad: Callable[[Commit], bool]) -> Optional[Commit]:
    """Bisect for the first bad commit.

    The embedded commit info in bug reports gave staff a known-bad build;
    bisection against the commit history "allowed us to narrow which
    commit introduced the regression" (§VII).  Assumes the classic
    monotone good→bad property.
    """
    if not commits:
        return None
    if not is_bad(commits[-1]):
        return None   # tip is good: no regression to find
    lo, hi = 0, len(commits) - 1
    if is_bad(commits[0]):
        return commits[0]
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if is_bad(commits[mid]):
            hi = mid
        else:
            lo = mid
    return commits[hi]
