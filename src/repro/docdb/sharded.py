"""Hash-sharded collections behind a planner-aware routing layer.

A :class:`ShardedCollection` is a facade over N physical
:class:`~repro.docdb.database.Collection` shards (``{base}.p0`` ..
``{base}.p{N-1}``), registered on the database so every existing call
site — the worker's dedup probe, the scheduler's history seed, dead-letter
drains, durability fencing — keeps calling ``db.collection("submissions")``
and transparently gets routed storage.  The physical shards are ordinary
collections living in ``db._collections``, so journaling (each WAL record
carries its ``{base}.p{K}`` name, i.e. its partition id) and snapshots
work unchanged.

Routing invariants:

- A document lives on ``partition(key_of(doc))`` where ``key_of`` is the
  first truthy of the key fields (``team`` then ``username`` — the same
  precedence the broker router and fair-share scheduler use).
- A query takes the **single-shard fast path** only when every matching
  document's routing key is pinned by the filter: each key field is
  constrained by a plain equality, walking the same first-truthy
  precedence.  ``{"team": T}`` routes; ``{"username": U}`` alone does
  not (a team-routed document can still match it) and scatters.
- Everything else **scatter/gathers**: the filter runs on every shard
  (each shard's own planner picks index vs scan) and the facade merges.
  Sort/limit push down — each shard pre-sorts and truncates to
  ``skip + limit`` before the merge, so a top-K over a semester of
  submissions materializes K documents per shard, not the table.

Mongo-style caveats (documented, deliberate): ``_id`` uniqueness and
``unique=True`` indexes are per-shard guarantees unless the constrained
field is the shard key, and scatter results interleave shards in
partition order rather than global insertion order (sorted queries are
order-identical to an unsharded collection up to cross-shard ties).
"""

from __future__ import annotations

import copy
from typing import Any, List, Optional, Tuple

from repro.docdb.aggregate import run_pipeline
from repro.docdb.cursor import Cursor, _SortKey
from repro.docdb.query import get_path
from repro.errors import DocDbError


class ShardedCursor(Cursor):
    """A merged cursor over per-shard result chunks.

    Inherits the full sort/skip/limit/projection surface; materialization
    first collapses the chunks — with per-shard sort + ``skip+limit``
    truncation pushed down when a sorted, limited read asks for it — and
    then runs the ordinary cursor pipeline over the merged list, so the
    final ordering uses exactly the unsharded comparator.
    """

    def __init__(self, chunks: List[List[dict]],
                 projection: Optional[dict] = None,
                 plan: Optional[dict] = None):
        super().__init__([], projection=projection, plan=plan)
        self._chunks = chunks

    def _materialize(self) -> List[dict]:
        if self._sort:
            # Push the sort (and any skip+limit cap) down to each shard:
            # a document outside its own shard's first skip+limit can
            # never make the merged first skip+limit.
            cap = None if self._limit is None else self._skip + self._limit
            merged: List[dict] = []
            for chunk in self._chunks:
                docs = list(chunk)
                for field, direction in reversed(self._sort):
                    docs.sort(key=lambda d: _SortKey(get_path(d, field)),
                              reverse=(direction == -1))
                merged.extend(docs if cap is None else docs[:cap])
            self._docs = merged
        else:
            self._docs = [doc for chunk in self._chunks for doc in chunk]
        return super()._materialize()


class ShardedCollection:
    """Routing facade over N physical collection shards."""

    def __init__(self, db, name: str, shard_map,
                 key_fields: Tuple[str, ...] = ("team", "username")):
        if not key_fields:
            raise DocDbError("sharded collections need at least one key field")
        self.db = db
        self.name = name
        self.shard_map = shard_map
        self.key_fields = tuple(key_fields)
        self.shards = [db.collection(shard_map.collection(name, p))
                       for p in shard_map.partitions()]
        self.last_plan: Optional[dict] = None

    # -- routing ------------------------------------------------------------

    def shard_key(self, doc: dict):
        for field in self.key_fields:
            value = doc.get(field)
            if value:
                return value
        return ""

    def partition_of(self, doc: dict) -> int:
        return self.shard_map.partition(self.shard_key(doc))

    def shard_for(self, doc: dict):
        """The physical shard that owns ``doc``."""
        return self.shards[self.partition_of(doc)]

    def _filter_partition(self, filter: dict) -> Optional[int]:
        """The single partition a filter pins, or None (scatter).

        Sound only when the routing key of *every* possible match is
        determined: walking key-field precedence, each field must appear
        as a plain equality; a truthy value decides the key, a pinned
        falsy value defers to the next field (exactly how documents
        route), and an absent or operator-valued field leaves the key
        open — scatter.
        """
        if not filter:
            return None
        for field in self.key_fields:
            if field not in filter:
                return None
            value = filter[field]
            if isinstance(value, (dict, list, tuple)):
                return None
            if value:
                return self.shard_map.partition(value)
        return self.shard_map.partition("")

    # -- indexes ------------------------------------------------------------

    def create_index(self, field: str, unique: bool = False,
                     ordered: bool = False) -> list:
        """Create the index on every shard (returns the per-shard indexes).

        ``unique=True`` is enforced per shard; it is a global guarantee
        only when ``field`` is the shard key (same-key documents share a
        shard).
        """
        return [shard.create_index(field, unique=unique, ordered=ordered)
                for shard in self.shards]

    # -- writes ------------------------------------------------------------

    def insert_one(self, document: dict) -> Any:
        if not isinstance(document, dict):
            raise DocDbError("documents must be dicts")
        return self.shard_for(document).insert_one(document)

    def insert_many(self, documents) -> List[Any]:
        return [self.insert_one(doc) for doc in documents]

    def update_one(self, filter: dict, update: dict,
                   upsert: bool = False) -> int:
        return self._targeted_write(
            filter, lambda shard, up: shard.update_one(filter, update,
                                                       upsert=up), upsert)

    def replace_one(self, filter: dict, replacement: dict,
                    upsert: bool = False) -> int:
        return self._targeted_write(
            filter, lambda shard, up: shard.replace_one(filter, replacement,
                                                        upsert=up), upsert)

    def _targeted_write(self, filter: dict, op, upsert: bool) -> int:
        partition = self._filter_partition(filter or {})
        if partition is not None:
            return op(self.shards[partition], upsert)
        for shard in self.shards:
            if op(shard, False):
                return 1
        if upsert:
            # An upsert seeded from a filter that cannot pin a partition
            # has no well-defined home shard.
            raise DocDbError(
                f"upsert on sharded collection {self.name!r} requires "
                f"the shard key ({'/'.join(self.key_fields)}) in the filter")
        return 0

    def update_many(self, filter: dict, update: dict) -> int:
        partition = self._filter_partition(filter or {})
        if partition is not None:
            return self.shards[partition].update_many(filter, update)
        return sum(shard.update_many(filter, update)
                   for shard in self.shards)

    def delete_one(self, filter: dict) -> int:
        partition = self._filter_partition(filter or {})
        if partition is not None:
            return self.shards[partition].delete_one(filter)
        for shard in self.shards:
            if shard.delete_one(filter):
                return 1
        return 0

    def delete_many(self, filter: dict) -> int:
        partition = self._filter_partition(filter or {})
        if partition is not None:
            return self.shards[partition].delete_many(filter)
        return sum(shard.delete_many(filter) for shard in self.shards)

    # -- reads ------------------------------------------------------------

    def find(self, filter: Optional[dict] = None,
             projection: Optional[dict] = None) -> Cursor:
        filter = filter or {}
        partition = self._filter_partition(filter)
        if partition is not None:
            cursor = self.shards[partition].find(filter, projection)
            cursor._plan = dict(cursor._plan or {}, sharded=True,
                                shard=partition)
            self.last_plan = dict(cursor._plan)
            return cursor
        chunks, shard_plans = [], []
        examined = total = matched = 0
        for shard in self.shards:
            cursor = shard.find(filter)
            chunks.append(cursor._docs)
            plan = cursor.explain()
            shard_plans.append(plan)
            examined += plan.get("docs_examined", 0)
            total += plan.get("docs_total", 0)
            matched += plan.get("docs_matched", 0)
        plan = {"collection": self.name, "path": "scatter", "sharded": True,
                "index": None, "index_kind": None, "shards": shard_plans,
                "docs_examined": examined, "docs_total": total,
                "docs_matched": matched}
        self.last_plan = dict(plan)
        return ShardedCursor(chunks, projection=projection, plan=plan)

    def find_one(self, filter: Optional[dict] = None,
                 projection: Optional[dict] = None) -> Optional[dict]:
        return self.find(filter, projection).first()

    def explain(self, filter: Optional[dict] = None) -> dict:
        filter = filter or {}
        partition = self._filter_partition(filter)
        if partition is not None:
            return dict(self.shards[partition].explain(filter),
                        sharded=True, shard=partition)
        return {"collection": self.name, "path": "scatter", "sharded": True,
                "index": None, "index_kind": None,
                "shards": [shard.explain(filter) for shard in self.shards]}

    def count_documents(self, filter: Optional[dict] = None) -> int:
        filter = filter or {}
        if not filter:
            return len(self)
        partition = self._filter_partition(filter)
        if partition is not None:
            return self.shards[partition].count_documents(filter)
        return sum(shard.count_documents(filter) for shard in self.shards)

    def distinct(self, field: str,
                 filter: Optional[dict] = None) -> List[Any]:
        seen: List[Any] = []
        for shard in self.shards:
            for value in shard.distinct(field, filter):
                if value not in seen:
                    seen.append(value)
        return seen

    def aggregate(self, pipeline: List[dict]) -> List[dict]:
        docs = [copy.deepcopy(doc) for shard in self.shards
                for doc in shard._docs.values()]
        return run_pipeline(docs, pipeline)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def estimated_size_bytes(self) -> int:
        return sum(shard.estimated_size_bytes() for shard in self.shards)

    @property
    def planner_stats(self) -> dict:
        """Planner counters summed across the physical shards."""
        totals = {key: 0 for key in
                  ("index_hits", "range_hits", "scans", "docs_examined")}
        for shard in self.shards:
            for key, value in shard.planner_stats.items():
                totals[key] += value
        return totals

    def placement(self) -> dict:
        """Document counts per partition (skew introspection)."""
        return {shard.name: len(shard) for shard in self.shards}

    def __repr__(self):
        return (f"ShardedCollection({self.name!r}, "
                f"n_partitions={self.shard_map.n_partitions})")
