"""Figure 2 — histogram of the top-30 team final runtimes.

Paper: "The histogram plots the distribution of the top 30 team runtimes.
Each bin in the histogram is 0.1 second interval.  For example, 5 teams
had a runtime between 0.4 and 0.5 seconds.  Most teams fell within the 1
second runtime.  The slowest submission took 2 minutes to complete."

Shape expectations asserted: the top-30 mass sits under ~1 s, the mode
bins lie between 0.2 and 1.0 s, and the slowest *final submission in the
class* reaches minutes while the fastest cluster is a few tenths of a
second.
"""

from benchmarks.conftest import print_banner
from repro.analysis import ascii_histogram, runtime_histogram


def test_fig2_top30_runtime_histogram(benchmark, course_result):
    simulation, result = course_result

    def regenerate():
        times = result.top_runtimes(30)
        return times, runtime_histogram(times, bin_width=0.1)

    times, rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    print_banner("Figure 2 — top-30 team final runtimes "
                 "(0.1 s bins)")
    print(ascii_histogram(times, bin_width=0.1, collapse_after=2.0))
    print("\nbins (lo, hi, teams):")
    for row in rows[:15]:
        print(f"  {row['lo']:5.1f}-{row['hi']:4.1f}s : {row['teams']}")

    all_finals = simulation.system.ranking.top_runtimes(10 ** 6)
    print(f"\ntop-30 range: {min(times):.2f}s .. {max(times):.2f}s")
    print(f"class slowest final: {max(all_finals):.1f}s "
          f"(paper: ~120 s)")
    under_1s = sum(1 for t in times if t < 1.0)
    print(f"top-30 under 1 s: {under_1s}/30 (paper: 'most teams')")

    # --- shape assertions -------------------------------------------------
    assert len(times) == 30
    assert under_1s >= 15                      # "most teams within 1 second"
    assert min(times) >= 0.1                   # physical floor
    assert min(times) < 0.6                    # a fast leading cluster
    assert max(all_finals) > 30.0              # a slow tail exists
    assert max(all_finals) < 30 * 60.0         # ...but everyone beat the
    #                                            serial baseline
