"""Integration tests for download → re-run-min → grade report (§VI/§VII)."""

import pytest

from repro.core.job import JobKind
from repro.core.system import RaiSystem
from repro.grading import (
    GradingEvaluator,
    SubmissionDownloader,
    generate_grade_reports,
)


@pytest.fixture(scope="module")
def graded_system():
    """A system with two teams' final submissions in it."""
    system = RaiSystem.standard(num_workers=2, seed=31)
    specs = {"fast-team": 0.92, "slow-team": 0.30}
    for team, quality in specs.items():
        client = system.new_client(team=team)
        client.stage_project({
            "main.cu": f"// @rai-sim quality={quality} impl=analytic "
                       "correctness=0.97\n// TILE_WIDTH tuning\n",
            "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
            "USAGE": "cmake && make && ./ece408",
            "report.pdf": b"%PDF-1.4" + bytes(3000),
        })
        result = system.run(client.submit(JobKind.SUBMIT))
        assert result.succeeded
    return system


class TestDownloader:
    def test_downloads_every_final(self, graded_system):
        downloader = SubmissionDownloader(graded_system)
        subs = downloader.download_all()
        assert {s.team for s in subs} == {"fast-team", "slow-team"}
        for sub in subs:
            assert sub.has_required_files()
            assert "main.cu" in sub.source_files()
            assert sub.internal_time is not None

    def test_clean_removes_intermediates(self, graded_system):
        downloader = SubmissionDownloader(graded_system)
        dirty = downloader.download_all(clean=False)[0]
        clean = downloader.download_all(clean=True)[0]
        assert dirty.fs.isfile("/Makefile")
        assert not clean.fs.exists("/Makefile")
        assert not any(p.endswith(".nvprof")
                       for p in clean.fs.iter_files("/"))
        # sources survive cleaning
        assert clean.fs.isfile("/submission_code/main.cu")


class TestEvaluator:
    def test_rerun_takes_min(self, graded_system):
        downloader = SubmissionDownloader(graded_system)
        sub = [s for s in downloader.download_all()
               if s.team == "fast-team"][0]
        evaluator = GradingEvaluator(measurement_noise=0.2)
        result = evaluator.evaluate(sub, repetitions=5)
        assert len(result.runs) == 5
        assert result.successful_runs == 5
        times = [r.elapsed for r in result.runs]
        assert result.best_time == min(times)
        assert max(times) > min(times)   # noise exists → min matters

    def test_faster_team_evaluates_faster(self, graded_system):
        downloader = SubmissionDownloader(graded_system)
        evaluator = GradingEvaluator()
        by_team = {s.team: evaluator.evaluate(s, repetitions=2)
                   for s in downloader.download_all()}
        assert by_team["fast-team"].best_time < \
            by_team["slow-team"].best_time

    def test_accuracy_recovered(self, graded_system):
        downloader = SubmissionDownloader(graded_system)
        sub = downloader.download_all()[0]
        result = GradingEvaluator().evaluate(sub, repetitions=1)
        assert result.accuracy == pytest.approx(0.97)


class TestGradeReports:
    def test_reports_combine_auto_and_manual(self, graded_system):
        downloader = SubmissionDownloader(graded_system)
        subs = downloader.download_all()
        evaluator = GradingEvaluator()
        evaluations = {s.team: evaluator.evaluate(s, repetitions=3)
                       for s in subs}
        ranks = {row["team"]: row["rank"]
                 for row in graded_system.ranking.leaderboard()}
        reports = generate_grade_reports(subs, evaluations, ranks)
        assert len(reports) == 2
        by_team = {r.breakdown.team: r for r in reports}
        fast = by_team["fast-team"].breakdown
        slow = by_team["slow-team"].breakdown
        assert fast.performance > slow.performance
        assert fast.total > slow.total
        assert fast.rank == 1
        rendered = by_team["fast-team"].render()
        assert "TOTAL:" in rendered
        assert "performance (30%)" in rendered

    def test_missing_evaluation_gives_zero_perf(self, graded_system):
        downloader = SubmissionDownloader(graded_system)
        subs = downloader.download_all()
        reports = generate_grade_reports(subs, evaluations={}, ranks={})
        assert all(r.breakdown.performance == 0.0 for r in reports)
