"""Git-delta submission ingest: base negotiation + manifest file maps."""

import pytest

from repro.core.system import RaiSystem
from repro.storage.chunkstore import Manifest, digest_file_map

pytestmark = pytest.mark.buildcache

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n" + "x\n" * 400,
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
    "zz_tuning.cfg": "#define BLOCK_DIM 8\n",
}


def _submit(system, client):
    return system.run(client.submit())


def _submit_after_gap(system, client):
    gap = system.config.rate_limit_seconds + 1.0

    def driver():
        yield system.sim.timeout(gap)
        result = yield from client.submit()
        return result

    return system.run(driver())


class TestManifestFileMap:
    def test_delta_doc_encodes_shared_chunks_by_index(self):
        blocks = [bytes([i]) * 100 for i in range(10)]
        base = Manifest.from_bytes(b"".join(blocks), 100)
        new = Manifest.from_bytes(b"".join(blocks[:9]) + b"z" * 100, 100)
        doc = new.delta_doc(base)
        assert doc["base"] == base.digest
        # Nine shared chunks → back-reference integers; last one literal.
        kinds = [type(c) for c in doc["chunks"]]
        assert kinds[:9] == [int] * 9 and kinds[9] is not int
        assert new.delta_wire_size(base) < new.delta_wire_size(None)

    def test_tree_digest_stable_under_file_order(self):
        a = digest_file_map({"/a": "1", "/b": "2"})
        b = digest_file_map({"/b": "2", "/a": "1"})
        assert a == b
        assert a != digest_file_map({"/a": "1", "/b": "3"})

    def test_manifest_doc_round_trips_file_map(self):
        m = Manifest.from_bytes(b"payload", 4,
                                files={"/main.cu": "d" * 64})
        again = Manifest.from_doc(m.to_doc())
        assert again.files == m.files
        assert again.tree_digest() == m.tree_digest()


class TestBaseNegotiation:
    def test_fresh_client_instance_still_ships_delta(self):
        """A brand-new client object (no _last_manifest) negotiates the
        server-side base registered by the user's previous upload and
        uploads a delta, not the full archive."""
        system = RaiSystem.standard(num_workers=1, seed=31)
        first = system.new_client(username="alice")
        first.stage_project(FILES)
        r1 = _submit(system, first)
        # First upload carries every chunk plus manifest overhead.
        assert r1.upload_bytes >= r1.upload_bytes_full * 0.8

        fresh = system.new_client(username="alice")
        fresh.stage_project(dict(FILES,
                                 **{"zz_tuning.cfg": "#define BLOCK_DIM 9\n"}))
        assert fresh._last_manifest is None
        r2 = _submit_after_gap(system, fresh)
        assert r2.upload_bytes < r2.upload_bytes_full / 2

    def test_negotiate_base_returns_latest_upload(self):
        system = RaiSystem.standard(num_workers=1, seed=32)
        client = system.new_client(username="bob")
        client.stage_project(FILES)
        _submit(system, client)
        base = system.storage.negotiate_base(
            system.config.upload_bucket, "bob")
        assert base is not None
        assert base.files  # per-file digests rode along with the upload
        assert system.storage.negotiate_base(
            system.config.upload_bucket, "nobody") is None

    def test_rebuild_upload_bases_recomputes_registry(self):
        system = RaiSystem.standard(num_workers=1, seed=33)
        client = system.new_client(username="carol")
        client.stage_project(FILES)
        _submit(system, client)
        bucket = system.config.upload_bucket
        before = system.storage.negotiate_base(bucket, "carol")
        system.storage._upload_bases.clear()
        assert system.storage.negotiate_base(bucket, "carol") is None
        rebuilt = system.storage.rebuild_upload_bases()
        assert rebuilt >= 1
        after = system.storage.negotiate_base(bucket, "carol")
        assert after is not None and after.digest == before.digest


class TestChunkSizeMismatch:
    def test_stale_base_invalidated_on_chunk_size_change(self):
        """A manifest chunked at the old size is a bogus delta base; the
        client must drop it and re-upload full."""
        system = RaiSystem.standard(num_workers=1, seed=34)
        client = system.new_client(username="dave")
        client.stage_project(FILES)
        _submit(system, client)
        old = client._last_manifest
        assert old is not None
        system.storage.chunk_store.chunk_size = old.chunk_size * 2
        negotiations = []
        orig = system.storage.negotiate_base

        def spying(*args):
            negotiations.append(args)
            return orig(*args)

        system.storage.negotiate_base = spying
        r2 = _submit_after_gap(system, client)
        # The stale local manifest was dropped — the client fell back to
        # server negotiation (whose base is also at the old size and is
        # likewise rejected), so the upload carried every chunk.
        assert negotiations
        new_manifest = client._last_manifest
        assert new_manifest.chunk_size == old.chunk_size * 2
        # The content-bearing chunk re-shipped in full; only genuinely
        # content-identical chunks (the zero-padding tail, whose bytes
        # are the same at any chunk size) may still dedup.
        assert r2.upload_bytes >= max(c.size for c in new_manifest.chunks)
