"""Table I — feature matrix of submission systems.

Paper row (§III, Table I): RAI is the only system with all five of
configurability, isolation, scalability, accessibility, and testing
uniformity; each baseline misses at least one.

Measured here by running behavioural probes against working
mini-implementations of all six systems (see ``repro.baselines``) — the
matrix is derived, not transcribed.
"""

from benchmarks.conftest import print_banner
from repro.baselines import (
    JenkinsCI,
    QwikLabsSystem,
    RaiFacade,
    StudentProvidedSystem,
    TorqueCluster,
    WebGPUSystem,
    feature_matrix,
)
from repro.baselines.features import PAPER_TABLE_1, render_matrix
from repro.sim import Simulator


def build_systems():
    sim = Simulator()
    return [StudentProvidedSystem(), TorqueCluster(sim), WebGPUSystem(),
            JenkinsCI(), QwikLabsSystem(), RaiFacade()]


def test_table1_feature_matrix(benchmark):
    matrix = benchmark.pedantic(
        lambda: feature_matrix(build_systems()), rounds=1, iterations=1)

    print_banner("Table I — probed feature matrix "
                 "(✓/✗ per system per axis)")
    print(render_matrix(matrix))

    mismatches = [
        (system, feature)
        for system, row in matrix.items()
        for feature, value in row.items()
        if PAPER_TABLE_1[system][feature] != value
    ]
    print(f"\npaper-vs-measured mismatches: {mismatches or 'none'}")
    assert matrix == PAPER_TABLE_1
    only_full_row = [name for name, row in matrix.items()
                     if all(row.values())]
    assert only_full_row == ["RAI"]
