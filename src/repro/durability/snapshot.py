"""Snapshot capture/install: the control plane's full state as JSON.

A snapshot is the compaction point of the write-ahead log: everything a
cold-started :class:`~repro.core.system.RaiSystem` needs to continue the
semester — docdb collections with their indexes and id counters, durable
broker topics with queued/in-flight/dead-lettered messages, the object
store (buckets, lifecycle rules, objects, unique chunks), the build
artifact cache (entries + blobs; refcounts rebuild on install), issued
credentials, id watermarks, the event-log ring, and the simulation
clock.  Deliberately *not* captured: soft state that rebuilds itself —
chunk refcounts (recomputed from live manifests), upload-base
negotiation registry (recomputed from live objects), scheduler
fair-share ledgers (re-seeded from submission history), worker pools
and fetch caches, rate-limiter windows.

Writes are atomic (temp file + rename) so a crash during checkpoint
leaves the previous snapshot intact.
"""

from __future__ import annotations

import base64
import copy
import json
import os
from collections import deque
from dataclasses import asdict
from typing import List, Optional

from repro.broker.message import Message, message_id_watermark
from repro.core.job import job_id_watermark
from repro.obs.events import Event
from repro.storage.chunkstore import ChunkedObject, Manifest
from repro.storage.lifecycle import LifecycleRule
from repro.storage.objects import StoredObject

SNAPSHOT_VERSION = 1


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


# -- messages ---------------------------------------------------------------


def message_to_doc(msg: Message) -> dict:
    return {
        "id": msg.id,
        "topic": msg.topic,
        "body": msg.body,
        "timestamp": msg.timestamp,
        "attempts": msg.attempts,
        "delivered_at": msg.delivered_at,
        "headers": msg.headers,
    }


def message_from_doc(doc: dict) -> Message:
    msg = Message(doc["topic"], doc["body"], doc["timestamp"],
                  message_id=doc["id"], headers=doc.get("headers"))
    msg.attempts = int(doc.get("attempts", 0))
    msg.delivered_at = doc.get("delivered_at")
    return msg


# -- capture ----------------------------------------------------------------


def capture(system) -> dict:
    """Serialise the durable state of a live deployment."""
    return {
        "version": SNAPSHOT_VERSION,
        "now": system.sim.now,
        "config": dict(vars(system.config)),
        "watermarks": {"message": message_id_watermark(),
                       "job": job_id_watermark()},
        "db": _capture_db(system.db),
        "broker": _capture_broker(system.broker),
        "storage": _capture_storage(system.storage),
        "keystore": [asdict(cred) for cred in system.keystore.credentials()],
        "events": _capture_events(system.events),
        "buildcache": (system.build_cache.to_snapshot()
                       if getattr(system, "build_cache", None) is not None
                       else None),
        "usage": (system.usage.to_snapshot()
                  if getattr(system, "usage", None) is not None
                  else None),
        "cost": (system.cost_allocator.to_snapshot()
                 if getattr(system, "cost_allocator", None) is not None
                 else None),
    }


def _capture_db(db) -> dict:
    out = {}
    for name, coll in db._collections.items():
        out[name] = {
            "next_oid": coll._next_oid,
            "indexes": [{"field": field, "unique": index.unique,
                         "ordered": index.supports_range}
                        for field, index in coll._indexes.items()],
            "docs": [copy.deepcopy(doc) for doc in coll._docs.values()],
        }
    return out


def _capture_channel(channel) -> dict:
    return {
        "name": channel.name,
        "max_attempts": channel.max_attempts,
        "items": [message_to_doc(m) for m in channel.items],
        "in_flight": [message_to_doc(m) for m in channel.in_flight.values()],
        "dead_letters": [message_to_doc(m) for m in channel.dead_letters],
        "totals": {
            "delivered": channel.total_delivered,
            "acked": channel.total_acked,
            "requeued": channel.total_requeued,
            "dead_lettered": channel.total_dead_lettered,
            "prefetched": channel.total_prefetched,
        },
    }


def _capture_broker(broker) -> dict:
    topics = []
    for topic in broker.topics.values():
        if topic.ephemeral:
            continue  # log_* streams die with the process by design
        topics.append({
            "name": topic.name,
            "total_published": topic.total_published,
            "max_attempts": topic.max_attempts,
            "backlog": [message_to_doc(m) for m in topic.backlog],
            "channels": [_capture_channel(c)
                         for c in topic.channels.values()],
        })
    return {"topics": topics}


def _object_to_doc(obj) -> dict:
    doc = {
        "key": obj.key,
        "etag": obj.etag,
        "metadata": dict(obj.metadata),
        "created_at": obj.created_at,
        "last_used_at": obj.last_used_at,
        "padding_bytes": obj.padding_bytes,
    }
    if isinstance(obj, ChunkedObject):
        doc["kind"] = "chunked"
        doc["manifest"] = obj.manifest.to_doc()
    else:
        doc["kind"] = "plain"
        doc["data"] = _b64(obj.data)
    return doc


def _capture_storage(storage) -> dict:
    chunk_store = storage.chunk_store
    return {
        "chunk_size": chunk_store.chunk_size,
        "chunks": {digest: _b64(blob)
                   for digest, blob in chunk_store._chunks.items()},
        "chunk_totals": {
            "ingested": chunk_store.total_ingested_bytes,
            "deduped": chunk_store.total_deduped_bytes,
        },
        "buckets": [{
            "name": bucket.name,
            "rules": [{"prefix": rule.prefix,
                       "expire_after": rule.expire_after,
                       "since": rule.since}
                      for rule in bucket.lifecycle_rules],
            "objects": [_object_to_doc(o) for o in bucket.objects.values()],
        } for bucket in storage.buckets.values()],
    }


def _capture_events(events) -> dict:
    return {
        "records": [event.to_dict() for event in events],
        "counts": dict(events.counts),
        "total_emitted": events.total_emitted,
    }


# -- install ----------------------------------------------------------------


def install(system, snap: dict) -> dict:
    """Load a captured snapshot into a freshly constructed system.

    Returns a count summary for the recovery report.  The caller is
    responsible for suppressing journaling while this runs and for
    rebuilding chunk refcounts afterwards.
    """
    version = snap.get("version")
    if version != SNAPSHOT_VERSION:
        from repro.errors import DurabilityError

        raise DurabilityError(f"unsupported snapshot version {version!r}")
    counts = {"documents": 0, "messages": 0, "objects": 0}
    counts["documents"] = _install_db(system.db, snap.get("db", {}))
    counts["messages"] = _install_broker(system.broker,
                                         snap.get("broker", {}))
    counts["objects"] = _install_storage(system.storage,
                                         snap.get("storage", {}))
    for cred_doc in snap.get("keystore", []):
        system.keystore.restore_credential(cred_doc)
    counts["credentials"] = len(snap.get("keystore", []))
    counts["events"] = _install_events(system.events,
                                       snap.get("events", {}))
    # Build cache: refcounts rebuild from entry blob lists on install;
    # torn entries (missing blobs) are dropped, never half-restored.
    # A snapshot from a cache-disabled config (None) or from before the
    # cache existed (key absent) restores to an empty cache.
    bc_snap = snap.get("buildcache")
    if bc_snap is not None and getattr(system, "build_cache", None) is not None:
        counts["buildcache"] = system.build_cache.install_snapshot(bc_snap)
    # Usage meter + cost books: accrued per-tenant usage and settled
    # attribution survive the crash; pre-crash snapshots (key absent)
    # restore to empty books.
    usage_snap = snap.get("usage")
    if usage_snap is not None and getattr(system, "usage", None) is not None:
        counts["usage_tenants"] = system.usage.install_snapshot(usage_snap)
    cost_snap = snap.get("cost")
    if cost_snap is not None and \
            getattr(system, "cost_allocator", None) is not None:
        system.cost_allocator.install_snapshot(cost_snap)
    watermarks = snap.get("watermarks", {})
    from repro.broker.message import advance_message_ids
    from repro.core.job import advance_job_ids

    advance_message_ids(int(watermarks.get("message", 1)))
    advance_job_ids(int(watermarks.get("job", 1)))
    counts["collections"] = len(snap.get("db", {}))
    counts["topics"] = len(snap.get("broker", {}).get("topics", []))
    return counts


def _install_db(db, db_snap: dict) -> int:
    documents = 0
    for name, coll_snap in db_snap.items():
        coll = db.collection(name)
        coll._docs.clear()
        coll._indexes.clear()
        for spec in coll_snap.get("indexes", []):
            coll.create_index(spec["field"], unique=spec.get("unique", False),
                              ordered=spec.get("ordered", False))
        for doc in coll_snap.get("docs", []):
            doc_id = doc["_id"]
            coll._index_add(doc_id, doc)
            coll._docs[doc_id] = doc
            documents += 1
        coll._next_oid = int(coll_snap.get("next_oid", 1))
    return documents


def _install_broker(broker, broker_snap: dict) -> int:
    messages = 0
    for topic_snap in broker_snap.get("topics", []):
        topic = broker.topic(topic_snap["name"], ephemeral=False)
        topic.total_published = int(topic_snap.get("total_published", 0))
        topic.max_attempts = int(topic_snap.get("max_attempts",
                                                topic.max_attempts))
        for chan_snap in topic_snap.get("channels", []):
            channel = topic.channel(chan_snap["name"])
            channel.max_attempts = int(chan_snap.get("max_attempts",
                                                     channel.max_attempts))
            channel.items.clear()
            channel.items.extend(message_from_doc(d)
                                 for d in chan_snap.get("items", []))
            channel.in_flight.clear()
            for doc in chan_snap.get("in_flight", []):
                msg = message_from_doc(doc)
                msg._channel = channel
                channel.in_flight[msg.id] = msg
            channel.dead_letters[:] = [message_from_doc(d)
                                       for d in chan_snap.get("dead_letters",
                                                              [])]
            totals = chan_snap.get("totals", {})
            channel.total_delivered = int(totals.get("delivered", 0))
            channel.total_acked = int(totals.get("acked", 0))
            channel.total_requeued = int(totals.get("requeued", 0))
            channel.total_dead_lettered = int(totals.get("dead_lettered", 0))
            channel.total_prefetched = int(totals.get("prefetched", 0))
            messages += (len(channel.items) + len(channel.in_flight)
                         + len(channel.dead_letters))
        # Backlog last: creating the first channel above would otherwise
        # flush a just-restored backlog into it.
        topic.backlog = deque(message_from_doc(d)
                              for d in topic_snap.get("backlog", []))
        messages += len(topic.backlog)
    return messages


def _install_storage(storage, storage_snap: dict) -> int:
    chunk_store = storage.chunk_store
    chunk_store._chunks = {digest: _unb64(blob) for digest, blob
                           in storage_snap.get("chunks", {}).items()}
    chunk_store._refs = {}  # rebuilt from live manifests by the caller
    chunk_totals = storage_snap.get("chunk_totals", {})
    chunk_store.total_ingested_bytes = int(chunk_totals.get("ingested", 0))
    chunk_store.total_deduped_bytes = int(chunk_totals.get("deduped", 0))
    objects = 0
    for bucket_snap in storage_snap.get("buckets", []):
        bucket = storage.create_bucket(bucket_snap["name"], exist_ok=True)
        bucket.lifecycle_rules = [
            LifecycleRule(prefix=r.get("prefix", ""),
                          expire_after=r["expire_after"],
                          since=r.get("since", "creation"))
            for r in bucket_snap.get("rules", [])]
        bucket.objects.clear()
        for doc in bucket_snap.get("objects", []):
            if doc["kind"] == "chunked":
                obj = ChunkedObject(doc["key"],
                                    Manifest.from_doc(doc["manifest"]),
                                    chunk_store,
                                    created_at=doc["created_at"],
                                    metadata=doc.get("metadata"),
                                    etag=doc.get("etag"),
                                    padding_bytes=doc.get("padding_bytes", 0))
            else:
                obj = StoredObject(doc["key"], _unb64(doc["data"]),
                                   created_at=doc["created_at"],
                                   metadata=doc.get("metadata"),
                                   etag=doc.get("etag"),
                                   padding_bytes=doc.get("padding_bytes", 0))
            obj.last_used_at = float(doc.get("last_used_at",
                                             doc["created_at"]))
            bucket.objects[obj.key] = obj
            objects += 1
    return objects


def _install_events(events, events_snap: dict) -> int:
    records = events_snap.get("records", [])
    for doc in records:
        events._events.append(Event(doc["t"], doc["type"],
                                    trace_id=doc.get("trace_id"),
                                    span_id=doc.get("span_id"),
                                    fields=dict(doc.get("fields", {}))))
    events.total_emitted = int(events_snap.get("total_emitted",
                                               len(records)))
    events.counts.update(events_snap.get("counts", {}))
    return len(records)


# -- files ------------------------------------------------------------------


def write_snapshot(path: str, snap: dict) -> int:
    """Atomically write ``snap`` to ``path``; returns bytes written."""
    text = json.dumps(snap, separators=(",", ":"))
    tmp_path = path + ".tmp"
    with open(tmp_path, "w") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, path)
    return len(text)


def load_snapshot(path: str) -> Optional[dict]:
    """Read a snapshot file; None when no checkpoint was ever taken."""
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def live_manifests(storage) -> List[Manifest]:
    """Every manifest still referenced by a bucket object (the ground
    truth chunk refcounts are rebuilt from)."""
    return [obj.manifest
            for bucket in storage.buckets.values()
            for obj in bucket.objects.values()
            if isinstance(obj, ChunkedObject)]
