"""Unit tests for named random streams."""

import numpy as np

from repro.sim import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        a = RandomStreams(7).stream("x").random(5)
        b = RandomStreams(7).stream("x").random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random(5)
        b = RandomStreams(2).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_streams_are_independent_of_creation_order(self):
        s1 = RandomStreams(3)
        _ = s1.stream("first").random(100)  # consume from another stream
        a = s1.stream("target").random(5)

        s2 = RandomStreams(3)
        b = s2.stream("target").random(5)
        assert np.array_equal(a, b)

    def test_named_streams_differ(self):
        s = RandomStreams(0)
        assert not np.array_equal(s.stream("a").random(5),
                                  s.stream("b").random(5))

    def test_stream_is_cached(self):
        s = RandomStreams(0)
        assert s.stream("x") is s.stream("x")
        assert s["x"] is s.stream("x")

    def test_convenience_draws_in_range(self):
        s = RandomStreams(0)
        assert 2.0 <= s.uniform("u", 2.0, 3.0) < 3.0
        assert s.exponential("e", 1.0) >= 0
        assert 0 <= s.integers("i", 0, 10) < 10

    def test_choice_and_shuffle(self):
        s = RandomStreams(0)
        options = ["a", "b", "c"]
        assert s.choice("c", options) in options
        shuffled = s.shuffled("s", options)
        assert sorted(shuffled) == options
        assert options == ["a", "b", "c"]  # input untouched
