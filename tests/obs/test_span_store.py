"""Unit tests for spans, context propagation, the tracer, and the store."""

import pytest

from repro.obs.context import TraceContext
from repro.obs.span import NOOP_SPAN, SpanStatus
from repro.obs.store import TraceStore
from repro.obs.tracer import Tracer

pytestmark = pytest.mark.obs


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


class TestContextPropagation:
    def test_headers_round_trip(self, tracer, clock):
        span = tracer.start_span("a")
        headers = span.headers()
        ctx = TraceContext.from_headers(headers)
        assert ctx.trace_id == span.trace_id
        assert ctx.span_id == span.span_id

    def test_missing_headers_yield_no_context(self):
        assert TraceContext.from_headers(None) is None
        assert TraceContext.from_headers({}) is None
        assert TraceContext.from_headers({"unrelated": "x"}) is None

    def test_parent_via_headers_joins_trace(self, tracer):
        parent = tracer.start_span("publish")
        child = tracer.start_span("deliver", parent=parent.headers())
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id

    def test_parent_via_span_and_context(self, tracer):
        parent = tracer.start_span("a")
        via_span = tracer.start_span("b", parent=parent)
        via_ctx = tracer.start_span("c", parent=parent.context)
        assert via_span.parent_id == parent.span_id
        assert via_ctx.parent_id == parent.span_id
        assert via_span.trace_id == via_ctx.trace_id == parent.trace_id

    def test_bad_parent_type_raises(self, tracer):
        with pytest.raises(TypeError):
            tracer.start_span("x", parent=42)


class TestSpanLifecycle:
    def test_end_is_idempotent(self, tracer, clock):
        span = tracer.start_span("a")
        clock.now = 5.0
        span.end()
        clock.now = 9.0
        span.end(status="error")
        assert span.end_time == 5.0
        assert span.status == SpanStatus.OK

    def test_backdated_start(self, tracer, clock):
        clock.now = 10.0
        span = tracer.start_span("deliver", start_time=4.0)
        span.end()
        assert span.start_time == 4.0
        assert span.duration == pytest.approx(6.0)

    def test_events_are_timestamped(self, tracer, clock):
        span = tracer.start_span("a")
        clock.now = 3.0
        span.add_event("retry", attempt=1)
        assert span.events == [(3.0, "retry", {"attempt": 1})]

    def test_context_manager_marks_errors(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.start_span("a") as span:
                raise RuntimeError("boom")
        assert span.status == SpanStatus.ERROR
        assert "boom" in span.status_message

    def test_disabled_tracer_returns_noop(self, clock):
        tracer = Tracer(clock=clock, enabled=False)
        span = tracer.start_span("a")
        assert span is NOOP_SPAN
        assert span.headers() is None
        # The full surface is callable without effect.
        span.set_attribute("k", "v").add_event("e")
        span.end()
        assert len(tracer.store) == 0

    def test_end_subtree_closes_descendants(self, tracer, clock):
        root = tracer.start_span("root")
        child = tracer.start_span("child", parent=root)
        grandchild = tracer.start_span("grand", parent=child)
        clock.now = 7.0
        tracer.end_subtree(root, status="error", message="crash")
        for span in (root, child, grandchild):
            assert not span.is_open
            assert span.status == SpanStatus.ERROR
        assert not tracer.store.trace(root.trace_id).is_live


class TestTraceStore:
    def test_job_binding_via_attribute(self, tracer):
        span = tracer.start_span("a")
        span.set_attribute("job_id", "job-42")
        trace = tracer.trace_for_job("job-42")
        assert trace is not None
        assert trace.trace_id == span.trace_id
        assert trace.job_ids == ["job-42"]

    def test_ring_evicts_oldest_finished(self, clock):
        tracer = Tracer(clock=clock, store=TraceStore(max_traces=2))
        first = tracer.start_span("t1", job_id="j1")
        first.end()
        second = tracer.start_span("t2", job_id="j2")
        second.end()
        third = tracer.start_span("t3", job_id="j3")
        third.end()
        store = tracer.store
        assert len(store) == 2
        assert store.trace(first.trace_id) is None
        assert store.trace_for_job("j1") is None  # index cleaned up
        assert store.trace_for_job("j3") is not None
        assert store.total_evicted == 1

    def test_ring_never_evicts_live_traces(self, clock):
        tracer = Tracer(clock=clock, store=TraceStore(max_traces=2))
        live = tracer.start_span("live", job_id="j-live")  # stays open
        for i in range(5):
            tracer.start_span(f"t{i}", job_id=f"j{i}").end()
        store = tracer.store
        assert store.trace(live.trace_id) is not None
        assert store.trace_for_job("j-live") is not None
        assert store.trace_for_job("j-live").is_live
        # Capacity holds for the finished traces around the live one.
        assert len(store) <= 3

    def test_all_live_overflows_capacity(self, clock):
        tracer = Tracer(clock=clock, store=TraceStore(max_traces=2))
        spans = [tracer.start_span(f"t{i}") for i in range(4)]
        assert len(tracer.store) == 4  # nothing evictable
        for s in spans:
            s.end()
        tracer.start_span("t5").end()
        assert len(tracer.store) == 2  # drains back under capacity

    def test_stats(self, tracer):
        tracer.start_span("a").end()
        open_span = tracer.start_span("b")
        stats = tracer.stats()
        assert stats["enabled"] is True
        assert stats["traces"] == 2
        assert stats["live_traces"] == 1
        assert stats["spans_total"] == 2
        open_span.end()

    def test_eviction_cleans_every_job_binding(self, clock):
        """A trace bound to several job ids drops ALL of them on evict.

        Redelivered jobs (and batch traces) can bind one trace to more
        than one id; eviction must leave no dangling index entries, or a
        later ``trace_for_job`` would return a reaped trace.
        """
        tracer = Tracer(clock=clock, store=TraceStore(max_traces=1))
        multi = tracer.start_span("multi", job_id="j-a")
        tracer.store.bind_job("j-b", multi.trace_id)
        multi.end()
        store = tracer.store
        assert store.trace_for_job("j-a") is not None
        assert store.trace_for_job("j-b") is not None
        tracer.start_span("next", job_id="j-c").end()  # evicts `multi`
        assert store.trace(multi.trace_id) is None
        assert store.trace_for_job("j-a") is None
        assert store.trace_for_job("j-b") is None
        assert store.trace_for_job("j-c") is not None
        assert store.job_ids() == ["j-c"]

    def test_export_spans_jsonl_empty_store(self, tmp_path):
        from repro.obs.export import export_spans_jsonl

        store = TraceStore()
        assert export_spans_jsonl(store) == ""
        path = tmp_path / "spans.jsonl"
        export_spans_jsonl(store, str(path))
        assert path.read_text() == ""

    def test_export_spans_jsonl_empty_trace_and_list(self):
        from repro.obs.export import export_spans_jsonl
        from repro.obs.store import Trace

        assert export_spans_jsonl([]) == ""
        assert export_spans_jsonl(Trace("deadbeef")) == ""
