"""Unit tests for cursors, sort keys, and projections."""

import pytest

from repro.docdb import DocumentDB
from repro.docdb.cursor import Cursor, _SortKey, apply_projection


@pytest.fixture
def coll():
    db = DocumentDB()
    c = db["c"]
    c.insert_many([
        {"n": 3, "tag": "c"},
        {"n": 1, "tag": "a"},
        {"n": 2, "tag": "b"},
        {"tag": "missing-n"},
        {"n": None, "tag": "null-n"},
        {"n": "text", "tag": "string-n"},
    ])
    return c


class TestSortKeyTotalOrder:
    def test_missing_before_null_before_numbers_before_strings(self, coll):
        tags = [d["tag"] for d in coll.find().sort([("n", 1)])]
        assert tags == ["missing-n", "null-n", "a", "b", "c", "string-n"]

    def test_descending_reverses_within_rank(self, coll):
        tags = [d["tag"] for d in coll.find().sort([("n", -1)])]
        assert tags.index("c") < tags.index("a")

    def test_sortkey_equality(self):
        assert _SortKey(1) == _SortKey(1)
        assert _SortKey(None) == _SortKey(None)
        assert not (_SortKey(1) == _SortKey(2))
        assert _SortKey(None) < _SortKey(0)

    def test_multi_key_sort(self):
        db = DocumentDB()
        c = db["c"]
        c.insert_many([
            {"a": 1, "b": 2}, {"a": 1, "b": 1}, {"a": 0, "b": 9},
        ])
        rows = c.find().sort([("a", 1), ("b", -1)]).to_list()
        assert [(r["a"], r["b"]) for r in rows] == [(0, 9), (1, 2), (1, 1)]

    def test_bad_direction(self, coll):
        with pytest.raises(ValueError):
            coll.find().sort([("n", 2)])

    def test_string_sort_spec(self, coll):
        first = coll.find().sort("n").first()
        assert first["tag"] == "missing-n"


class TestSkipLimit:
    def test_negative_rejected(self, coll):
        with pytest.raises(ValueError):
            coll.find().skip(-1)
        with pytest.raises(ValueError):
            coll.find().limit(-1)

    def test_chaining_order_is_sort_skip_limit(self, coll):
        rows = coll.find({"n": {"$exists": True}}) \
            .sort([("tag", 1)]).skip(1).limit(2).to_list()
        assert [r["tag"] for r in rows] == ["b", "c"]

    def test_first_on_empty(self, coll):
        assert coll.find({"tag": "ghost"}).first() is None

    def test_iteration(self, coll):
        count = sum(1 for _ in coll.find())
        assert count == 6


class TestProjection:
    def test_mixing_include_exclude_rejected(self):
        with pytest.raises(ValueError):
            apply_projection({"a": 1, "b": 2}, {"a": 1, "b": 0})

    def test_id_exclusion_allowed_with_includes(self):
        doc = {"_id": 1, "a": 2, "b": 3}
        assert apply_projection(doc, {"a": 1, "_id": 0}) == {"a": 2}

    def test_dotted_include(self):
        doc = {"_id": 1, "meta": {"x": 1, "y": 2}}
        out = apply_projection(doc, {"meta.x": 1, "_id": 0})
        assert out == {"meta": {"x": 1}}

    def test_dotted_exclude(self):
        doc = {"_id": 1, "meta": {"x": 1, "y": 2}}
        out = apply_projection(doc, {"meta.x": 0})
        assert out == {"_id": 1, "meta": {"y": 2}}

    def test_cursor_materializes_fresh_copies(self, coll):
        cursor = Cursor(coll.find().to_list())
        a = cursor.to_list()
        b = cursor.to_list()
        a[0]["mutated"] = True
        assert "mutated" not in b[0]
