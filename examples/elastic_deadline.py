#!/usr/bin/env python
"""Elastic provisioning through a deadline burst (§VII, Resource Usage).

A compressed version of the course's provisioning story: light load on a
couple of cheap G2 instances, then a deadline burst absorbed by the
reactive autoscaler launching single-job P2 instances — with queue depth,
fleet size, and cost traced hour by hour.

Run:  python examples/elastic_deadline.py
"""

from repro.cluster import Autoscaler, AutoscalerPolicy, CostReport, Provisioner
from repro.core.job import JobStatus
from repro.core.system import RaiSystem

HOUR = 3600.0

#: Mid-project teams benchmarking against the FULL dataset — the heavy
#: jobs (tens of seconds each) that actually pressure the fleet.
BENCH_BUILD_FILE = """\
rai:
  version: 0.1
  image: webgpu/rai:root
commands:
  build:
    - cmake /src
    - make
    - ./ece408 /data/testfull.hdf5 /data/model.hdf5 10000
"""


def files_for(quality: float) -> dict:
    return {
        "main.cu": f"// @rai-sim quality={quality:.2f} impl=analytic\n",
        "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
        "rai-build.yml": BENCH_BUILD_FILE,
    }


def main() -> None:
    system = RaiSystem(seed=99)
    provisioner = Provisioner(system)
    policy = AutoscalerPolicy(min_instances=2, max_instances=16, step=3,
                              check_interval=120.0,
                              scale_out_per_worker=1.5,
                              scale_in_cooldown=1800.0)
    autoscaler = Autoscaler(system, provisioner, policy)
    system.sim.process(autoscaler.run())

    results = []

    def team_process(sim, i, quality, submit_times):
        client = system.new_client(team=f"team-{i:02d}")
        client.stage_project(files_for(quality))
        for at in submit_times:
            yield sim.timeout(max(0.0, at - sim.now))
            result = yield from client.submit()
            results.append(result)
            yield sim.timeout(35.0)   # stay above the 30 s rate limit

    # 30 teams; 2 quiet submissions early, then everyone piles in during
    # a 20-minute pre-deadline window, benchmarking the full dataset
    # (~60-120 s per job) — far beyond what 2 workers can absorb.
    rng = system.rng.stream("example")
    for i in range(30):
        quality = float(rng.uniform(0.08, 0.35))
        quiet = sorted(rng.uniform(0, 3 * HOUR, size=2))
        burst = sorted(rng.uniform(4 * HOUR, 4 * HOUR + 1200.0, size=6))
        system.sim.process(
            team_process(system.sim, i, quality,
                         list(quiet) + list(burst)))

    def reporter(sim):
        print(f"{'hour':>4} {'queue':>6} {'fleet':>6} {'done':>6} "
              f"{'cost':>9}")
        while sim.now < 7 * HOUR:
            yield sim.timeout(0.5 * HOUR)
            done = sum(1 for r in results if r.finished_at is not None)
            print(f"{sim.now / HOUR:4.1f} {system.queue_depth():6d} "
                  f"{len(provisioner.live_instances):6d} {done:6d} "
                  f"${provisioner.total_cost():8.2f}")

    system.sim.process(reporter(system.sim))
    system.run(until=8 * HOUR)

    ok = sum(1 for r in results if r.status is JobStatus.SUCCEEDED)
    waits = [r.queue_wait for r in results if r.queue_wait is not None]
    print(f"\nsubmissions served: {ok}/{len(results)}")
    print(f"median queue wait:  {sorted(waits)[len(waits) // 2]:.1f}s; "
          f"max: {max(waits):.1f}s")
    print(CostReport.collect(provisioner).render())
    print(f"autoscaler decisions: "
          f"{[(d['action'], round(d['t'] / HOUR, 1)) for d in autoscaler.decisions]}")


if __name__ == "__main__":
    main()
