"""Message envelopes."""

from __future__ import annotations

import itertools
import json
from typing import Any, Optional

_id_counter = itertools.count(1)


def new_message_id() -> str:
    """Process-unique, deterministic message ids (``msg-000001`` ...)."""
    return f"msg-{next(_id_counter):06d}"


def reset_message_ids() -> None:
    """Restart the id sequence (test isolation helper)."""
    global _id_counter
    _id_counter = itertools.count(1)


class Message:
    """A broker message.

    ``body`` must be JSON-serialisable — the broker enforces this at publish
    time so that the simulated system cannot accidentally depend on sharing
    live Python objects between "machines", which a real deployment could
    never do.
    """

    __slots__ = ("id", "topic", "body", "timestamp", "attempts",
                 "delivered_at", "_channel")

    def __init__(self, topic: str, body: Any, timestamp: float,
                 message_id: Optional[str] = None):
        self.id = message_id or new_message_id()
        self.topic = topic
        self.body = body
        self.timestamp = float(timestamp)
        self.attempts = 0
        #: Simulated time of the most recent delivery (None before first).
        self.delivered_at: Optional[float] = None
        self._channel = None  # set on delivery; used by ack/requeue

    def encoded_size(self) -> int:
        """Size of the JSON encoding in bytes (for size limits and stats)."""
        return len(json.dumps(self.body).encode("utf-8"))

    def copy_for_channel(self) -> "Message":
        """Per-channel copy (topics fan out; channels own delivery state)."""
        clone = Message(self.topic, self.body, self.timestamp, self.id)
        return clone

    def __repr__(self):
        return f"<Message {self.id} topic={self.topic!r} attempts={self.attempts}>"
