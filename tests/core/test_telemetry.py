"""Tests for the telemetry sampler and health report."""

import pytest

from repro.core.system import RaiSystem
from repro.core.telemetry import TelemetrySampler, health_report

FILES = {
    "main.cu": "// @rai-sim quality=0.7 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


@pytest.fixture
def system():
    return RaiSystem.standard(num_workers=2, seed=12)


class TestSampler:
    def test_samples_signals_over_time(self, system):
        sampler = TelemetrySampler(system, interval=10.0)
        system.sim.process(sampler.run())
        clients = []
        for i in range(4):
            c = system.new_client(team=f"t{i}")
            c.stage_project(FILES)
            clients.append(c)
        procs = [system.sim.process(c.submit()) for c in clients]
        system.sim.run(until=system.sim.all_of(procs))
        for signal in ("queue_depth", "workers_running", "jobs_active",
                       "storage_bytes", "in_flight"):
            assert len(system.monitor.series[signal]) > 0
        assert sampler.peak("workers_running") == 2
        assert sampler.peak("jobs_active") >= 1
        assert sampler.peak("storage_bytes") > 0

    def test_stop_halts_sampling(self, system):
        sampler = TelemetrySampler(system, interval=5.0)
        system.sim.process(sampler.run())
        system.run(until=20.0)
        sampler.stop()
        count = len(system.monitor.series["queue_depth"])
        system.run(until=100.0)
        assert len(system.monitor.series["queue_depth"]) <= count + 1

    def test_peak_of_unsampled_signal_is_nan(self, system):
        import math

        sampler = TelemetrySampler(system)
        assert math.isnan(sampler.peak("never_sampled"))


class TestHealthReport:
    def test_snapshot_without_sampler(self, system):
        client = system.new_client(team="t")
        client.stage_project(FILES)
        system.run(client.submit())
        report = health_report(system)
        assert "jobs completed" in report
        assert "file server" in report
        assert "2/2" in report

    def test_with_sampler_includes_averages(self, system):
        sampler = TelemetrySampler(system, interval=5.0)
        system.sim.process(sampler.run())
        system.run(until=30.0)
        report = health_report(system, sampler)
        assert "queue_depth (avg)" in report
        assert "workers_running (peak)" in report
