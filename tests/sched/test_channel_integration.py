"""Scheduler-aware dequeue and prefetch on the broker channel."""

import pytest

from repro.broker import Consumer, MessageBroker
from repro.sched import JobScheduler

pytestmark = pytest.mark.sched


@pytest.fixture
def broker(sim):
    return MessageBroker(sim)


@pytest.fixture
def channel(sim, broker):
    channel = broker.channel("rai/tasks")
    channel.scheduler = JobScheduler(lambda: sim.now)
    return channel


def publish(broker, team: str) -> None:
    broker.publish("rai", {"team": team})


class TestScheduledDequeue:
    def test_select_reorders_the_queue(self, sim, broker, channel):
        for _ in range(5):
            publish(broker, "storm")
        publish(broker, "quiet")
        consumer = Consumer(broker, "rai/tasks")

        claimed = []

        def worker(sim):
            for _ in range(3):
                msg = yield consumer.get()
                claimed.append(msg.body["team"])
                consumer.ack(msg)

        sim.run(until=sim.process(worker(sim)))
        # The quiet team's single job jumps most of the storm.
        assert "quiet" in claimed

    def test_dispatch_observed_per_claim(self, sim, broker, channel):
        publish(broker, "a")
        publish(broker, "b")
        consumer = Consumer(broker, "rai/tasks")

        def worker(sim):
            for _ in range(2):
                msg = yield consumer.get()
                consumer.ack(msg)

        sim.run(until=sim.process(worker(sim)))
        assert channel.scheduler.total_dispatched == 2

    def test_fifo_without_scheduler(self, sim, broker):
        channel = broker.channel("rai/tasks")
        assert channel.scheduler is None
        for team in ("first", "second"):
            broker.publish("rai", {"team": team})
        consumer = Consumer(broker, "rai/tasks")

        def worker(sim):
            msg = yield consumer.get()
            consumer.ack(msg)
            return msg.body["team"]

        proc = sim.process(worker(sim))
        sim.run(until=proc)
        assert proc.value == "first"


class TestPrefetch:
    def test_try_get_claims_without_blocking(self, sim, broker, channel):
        publish(broker, "a")
        consumer = Consumer(broker, "rai/tasks")
        msg = consumer.try_get()
        assert msg is not None and msg.body["team"] == "a"
        assert channel.total_prefetched == 1
        assert msg.id in channel.in_flight
        consumer.ack(msg)
        assert channel.total_acked == 1

    def test_try_get_empty_returns_none(self, broker, channel):
        consumer = Consumer(broker, "rai/tasks")
        assert consumer.try_get() is None

    def test_prefetch_never_steals_from_blocked_get(self, sim, broker,
                                                    channel):
        blocked = Consumer(broker, "rai/tasks")
        eager = Consumer(broker, "rai/tasks")
        got = []

        def sleeper(sim):
            msg = yield blocked.get()
            got.append(msg)
            blocked.ack(msg)

        sim.process(sleeper(sim))

        def late_publish(sim):
            yield sim.timeout(1.0)
            publish(broker, "a")
            # The message must go to the blocked get, not the prefetcher.
            assert eager.try_get() is None

        sim.run(until=sim.process(late_publish(sim)))
        sim.run()
        assert len(got) == 1

    def test_ready_count_tracks_depth(self, broker, channel):
        assert channel.ready_count == 0
        publish(broker, "a")
        publish(broker, "b")
        consumer = Consumer(broker, "rai/tasks")
        assert consumer.ready_count == 2
        consumer.try_get()
        assert consumer.ready_count == 1

    def test_stats_count_prefetches(self, broker, channel):
        publish(broker, "a")
        Consumer(broker, "rai/tasks").try_get()
        assert channel.stats()["prefetched"] == 1
