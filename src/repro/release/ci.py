"""The continuous builder over master/devel branches."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReleaseError
from repro.release.buildmatrix import BUILD_MATRIX, Artifact, BuildTarget


@dataclass(frozen=True)
class Commit:
    """A source revision."""

    sha: str
    message: str
    author: str = "staff"
    #: Behavioural flag used by regression-bisection tests/examples.
    introduces_bug: bool = False


@dataclass
class Branch:
    """A named line of development."""

    name: str
    commits: List[Commit] = field(default_factory=list)

    @property
    def head(self) -> Optional[Commit]:
        return self.commits[-1] if self.commits else None

    def commit(self, message: str, author: str = "staff",
               introduces_bug: bool = False) -> Commit:
        payload = f"{self.name}:{len(self.commits)}:{message}"
        sha = hashlib.sha1(payload.encode()).hexdigest()[:7]
        c = Commit(sha=sha, message=message, author=author,
                   introduces_bug=introduces_bug)
        self.commits.append(c)
        return c

    def merge_from(self, other: "Branch") -> List[Commit]:
        """Fast-forward style merge: adopt commits not yet present.

        "The devel branch was merged into master as the changes were
        deemed to be stable." (§VII)
        """
        known = {c.sha for c in self.commits}
        merged = [c for c in other.commits if c.sha not in known]
        self.commits.extend(merged)
        return merged


class ContinuousBuilder:
    """Builds both branches across the matrix and publishes to storage.

    "Since we automated the build and delivery process, code changes to
    fix bugs or address features were automatically made available to
    students without further action from us." (§VII)
    """

    RELEASE_BUCKET = "rai-releases"

    def __init__(self, storage=None, version: str = "0.2.0",
                 targets=BUILD_MATRIX):
        #: Optional ObjectStore; without one, URLs are synthesised.
        self.storage = storage
        if self.storage is not None:
            self.storage.create_bucket(self.RELEASE_BUCKET, exist_ok=True)
        self.version = version
        self.targets = tuple(targets)
        self.master = Branch("master")
        self.devel = Branch("devel")
        #: branch name → target key → artifact (latest build).
        self.published: Dict[str, Dict[str, Artifact]] = {}
        self.build_log: List[dict] = []

    def branch(self, name: str) -> Branch:
        if name == "master":
            return self.master
        if name == "devel":
            return self.devel
        raise ReleaseError(f"unknown branch {name!r}")

    def build_branch(self, name: str,
                     build_date: str = "2016-11-01T00:00:00Z"
                     ) -> List[Artifact]:
        """Cross-compile the branch head for every matrix target."""
        branch = self.branch(name)
        head = branch.head
        if head is None:
            raise ReleaseError(f"branch {name!r} has no commits to build")
        artifacts = []
        for target in self.targets:
            artifact = self._build_one(branch, head, target, build_date)
            artifacts.append(artifact)
            self.published.setdefault(name, {})[target.key] = artifact
        self.build_log.append({
            "branch": name, "commit": head.sha,
            "targets": len(artifacts), "date": build_date,
        })
        return artifacts

    def build_all(self, build_date: str = "2016-11-01T00:00:00Z"):
        """What the CI does on every push: both branches, all targets."""
        return {name: self.build_branch(name, build_date)
                for name in ("master", "devel") if self.branch(name).head}

    def _build_one(self, branch: Branch, head: Commit, target: BuildTarget,
                   build_date: str) -> Artifact:
        # A deterministic stand-in binary with the metadata embedded —
        # the same mechanism the real Go builds used (ldflags stamping).
        blob = (
            f"RAI-CLIENT\x00os={target.os}\x00arch={target.arch}\x00"
            f"version={self.version}\x00branch={branch.name}\x00"
            f"commit={head.sha}\x00date={build_date}\x00"
            f"buggy={int(head.introduces_bug)}\x00"
        ).encode() + bytes(1024)
        key = f"{branch.name}/{head.sha}/{target.binary_name}"
        if self.storage is not None:
            self.storage.put_object(self.RELEASE_BUCKET, key, blob,
                                    metadata={"branch": branch.name,
                                              "commit": head.sha})
            url = self.storage.presign_get(self.RELEASE_BUCKET, key,
                                           expires_in=365 * 24 * 3600.0)
        else:
            url = f"https://files.rai-project.com/{key}"
        return Artifact(
            target=target, branch=branch.name, commit=head.sha,
            version=self.version, build_date=build_date, url=url,
            size_bytes=len(blob),
        )

    def latest(self, branch: str, target_key: str) -> Artifact:
        try:
            return self.published[branch][target_key]
        except KeyError:
            raise ReleaseError(
                f"no published build for {branch}/{target_key}") from None
