"""The tracer: span factory bound to a clock and a store.

Parents are passed explicitly (a :class:`Span`, a :class:`TraceContext`,
or raw message headers) — there is no ambient "current span", because
simulation processes interleave arbitrarily on one thread and an
implicit context would silently mis-parent spans across jobs.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Union

from repro.obs.context import TraceContext, new_trace_id
from repro.obs.span import NOOP_SPAN, Span, SpanStatus
from repro.obs.store import TraceStore

ParentLike = Union[Span, TraceContext, Mapping, None]


class Tracer:
    """Creates spans stamped with the simulated clock."""

    def __init__(self, clock: Callable[[], float],
                 store: Optional[TraceStore] = None,
                 enabled: bool = True,
                 metrics=None):
        self.clock = clock
        # Explicit None check: an *empty* TraceStore is falsy (__len__).
        self.store = store if store is not None else TraceStore()
        self.enabled = enabled
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry`; when set,
        #: span/trace creation counts land beside the system's metrics so
        #: the operator report and traces share one data source.
        self.metrics = metrics
        # Resolved once: start_span runs per simulated operation, and a
        # registry lookup per span is measurable at benchmark scale.
        self._span_counter = (metrics.counter("obs_spans_started")
                              if metrics is not None else None)
        self._trace_counter = (metrics.counter("obs_traces_started")
                               if metrics is not None else None)

    def start_span(self, name: str, parent: ParentLike = None,
                   kind: str = "internal",
                   start_time: Optional[float] = None,
                   attributes: Optional[dict] = None,
                   job_id=None):
        """Open a span; returns ``NOOP_SPAN`` when tracing is disabled.

        ``parent`` may be a live :class:`Span`, a :class:`TraceContext`,
        or a message-headers mapping; ``None`` starts a new trace.
        ``start_time`` backdates the span (used by the broker to span
        publish → delivery after the fact).
        """
        if not self.enabled:
            return NOOP_SPAN
        trace_id, parent_id = self._resolve_parent(parent)
        new_trace = trace_id is None
        if new_trace:
            trace_id = new_trace_id()
        span = Span(name, trace_id=trace_id, parent_id=parent_id, kind=kind,
                    start_time=self.clock() if start_time is None
                    else start_time,
                    attributes=attributes, tracer=self)
        self.store.add_span(span)
        if job_id is not None:
            span.set_attribute("job_id", job_id)
        if self._span_counter is not None:
            self._span_counter.inc()
            if new_trace:
                self._trace_counter.inc()
        return span

    @staticmethod
    def _resolve_parent(parent: ParentLike):
        if parent is None:
            return None, None
        if isinstance(parent, Span):
            return parent.trace_id, parent.span_id
        if isinstance(parent, TraceContext):
            return parent.trace_id, parent.span_id
        if isinstance(parent, Mapping):
            ctx = TraceContext.from_headers(parent)
            if ctx is None:
                return None, None
            return ctx.trace_id, ctx.span_id
        if parent is NOOP_SPAN:  # pragma: no cover - Mapping check first
            return None, None
        raise TypeError(f"cannot parent a span on {type(parent).__name__}")

    def end_subtree(self, span, status: Optional[str] = None,
                    message: Optional[str] = None) -> None:
        """End ``span`` and any of its still-open descendants.

        The safety net for exceptional exits (deadline blown mid-command,
        worker crash): whatever child spans the unwinding skipped are
        closed with the same status, so no trace is pinned live forever.
        """
        if span is NOOP_SPAN or not self.enabled:
            span.end(status=status, message=message)
            return
        trace = self.store.trace(span.trace_id)
        if trace is not None:
            subtree = {span.span_id}
            descendants = []
            # Spans are stored in creation order, so one forward pass
            # sees every parent before its children.
            for s in trace.spans:
                if s.parent_id in subtree:
                    subtree.add(s.span_id)
                    descendants.append(s)
            for child in reversed(descendants):
                if child.is_open:
                    child.end(status=status, message=message)
        span.end(status=status, message=message)

    # -- convenience queries -------------------------------------------------

    def trace_for_job(self, job_id):
        return self.store.trace_for_job(job_id)

    def stats(self) -> dict:
        return {"enabled": self.enabled, **self.store.stats()}


__all__ = ["Tracer", "SpanStatus"]
