"""Baseline submission systems and the Table I feature probes.

Table I compares RAI with five alternatives along five axes:
configurability, isolation, scalability, accessibility, and testing
uniformity.  Rather than hard-coding the table, each system here is a
small working model exposing the behaviours the axes measure, and
:mod:`repro.baselines.features` derives the matrix by *probing* those
behaviours.  The Torque/PBS model doubles as the fixed-cluster baseline in
the elasticity benchmark.
"""

from repro.baselines.base import (
    BaselineJob,
    SubmissionOutcome,
    SubmissionSystem,
)
from repro.baselines.student_provided import StudentProvidedSystem
from repro.baselines.torque import TorqueCluster, TorqueJob
from repro.baselines.webgpu import WebGPUSystem
from repro.baselines.jenkins import JenkinsCI
from repro.baselines.qwiklabs import QwikLabsSystem
from repro.baselines.rai_facade import RaiFacade
from repro.baselines.features import FEATURES, evaluate_system, feature_matrix

__all__ = [
    "BaselineJob",
    "SubmissionOutcome",
    "SubmissionSystem",
    "StudentProvidedSystem",
    "TorqueCluster",
    "TorqueJob",
    "WebGPUSystem",
    "JenkinsCI",
    "QwikLabsSystem",
    "RaiFacade",
    "FEATURES",
    "evaluate_system",
    "feature_matrix",
]
