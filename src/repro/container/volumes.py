"""Volume mounts.

The worker "mounts the nvidia-docker CUDA volume onto the container",
mounts the downloaded project at ``/src``, and "creates a /build directory
and sets it to be the user's working directory" (§V, Worker Operations).
Mounts here are copy-in (and the read-only flag is enforced by the
container filesystem), which preserves the isolation property: nothing a
job does can reach back out of its sandbox.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.vfs import VirtualFileSystem


@dataclass
class VolumeMount:
    """A host tree projected into the container."""

    container_path: str
    read_only: bool = False
    #: Either a whole VFS to graft, or a flat mapping of files.
    source_fs: Optional[VirtualFileSystem] = None
    source_path: str = "/"
    source_files: Optional[Dict[str, bytes]] = None
    #: Marks the nvidia-docker CUDA volume: grants the container a GPU.
    is_cuda: bool = False

    def materialize(self, fs: VirtualFileSystem) -> None:
        """Copy the mount's content into the container filesystem."""
        fs.makedirs(self.container_path)
        if self.source_fs is not None:
            fs.graft(self.source_fs, self.source_path, self.container_path)
        elif self.source_files is not None:
            fs.import_mapping(self.source_files, self.container_path)
        if self.read_only:
            fs.set_readonly(self.container_path)


def cuda_volume() -> VolumeMount:
    """The nvidia-docker volume: CUDA libraries + the device node marker."""
    return VolumeMount(
        container_path="/usr/local/nvidia",
        read_only=True,
        source_files={
            "lib64/libcuda.so": b"\x7fELF-cuda-stub",
            "lib64/libcudart.so": b"\x7fELF-cudart-stub",
            "bin/nvidia-smi": b"#!rai-exec nvidia-smi\n{}",
        },
        is_cuda=True,
    )
