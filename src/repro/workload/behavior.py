"""Submission-timing behaviour: circadian rhythm × deadline pressure.

Figure 4's caption: submissions "followed their circadian rhythm", and the
final week dwarfs the one before it.  The model is a non-homogeneous
Poisson-ish process per team: think times between submissions are
exponential with a rate that is the product of a base rate, an
hour-of-day weight, and a deadline boost.
"""

from __future__ import annotations

import math

import numpy as np

HOUR = 3600.0
DAY = 24 * HOUR

#: Relative submission intensity by local hour of day.  Quiet 03:00-07:00,
#: ramps through the afternoon, peaks in the evening (students), with a
#: secondary late-night shoulder.
CIRCADIAN_WEIGHTS = np.array([
    0.30, 0.18, 0.10, 0.06, 0.05, 0.06, 0.10, 0.20,   # 00-07
    0.35, 0.55, 0.70, 0.80, 0.85, 0.90, 1.00, 1.05,   # 08-15
    1.10, 1.15, 1.20, 1.25, 1.30, 1.20, 0.90, 0.55,   # 16-23
])
_MEAN_CIRCADIAN = float(CIRCADIAN_WEIGHTS.mean())


def circadian_weight(sim_time: float) -> float:
    """Intensity multiplier for the local hour at ``sim_time``.

    ``sim_time=0`` is midnight of day 0.  Normalised to mean 1 over a day.
    """
    hour = int((sim_time % DAY) // HOUR)
    return float(CIRCADIAN_WEIGHTS[hour] / _MEAN_CIRCADIAN)


def deadline_boost(sim_time: float, deadline: float,
                   tau: float = 4.0 * DAY, max_boost: float = 6.0) -> float:
    """Exponential ramp approaching the deadline.

    Roughly doubles every ``tau·ln2`` seconds; saturates at ``max_boost``
    (students cannot iterate faster than their build/run cycle).  After the
    deadline the boost collapses.
    """
    if sim_time > deadline:
        return 0.05
    remaining = deadline - sim_time
    return min(max_boost, math.exp(-remaining / tau) * max_boost + 0.35)


def submission_rate(sim_time: float, deadline: float,
                    base_rate_per_hour: float = 0.55,
                    team_activity: float = 1.0) -> float:
    """Submissions/hour for one team at this instant."""
    return (base_rate_per_hour * team_activity *
            circadian_weight(sim_time) * deadline_boost(sim_time, deadline))


def sample_think_time(rng: np.random.Generator, sim_time: float,
                      deadline: float,
                      base_rate_per_hour: float = 0.55,
                      team_activity: float = 1.0,
                      minimum: float = 35.0,
                      maximum: float = 8.0 * HOUR) -> float:
    """Seconds until the team's next submission attempt.

    The minimum sits just above the 30-second rate limit; the maximum
    keeps idle teams checking in at least a couple of times a day.
    """
    rate = submission_rate(sim_time, deadline, base_rate_per_hour,
                           team_activity)
    if rate <= 1e-9:
        return maximum
    think = float(rng.exponential(HOUR / rate))
    return float(min(max(think, minimum), maximum))
