"""Multipart uploads.

Large ``.tar.bz2`` archives (the course stored 100 GB of them) are uploaded
in parts so a dropped client connection only costs the part in flight, not
the whole archive.  Parts may arrive in any order; ``complete`` assembles
them by part number.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict, Optional

from repro.errors import StorageError, UploadNotFound

_upload_counter = itertools.count(1)


class MultipartUpload:
    """A staged, resumable object upload."""

    def __init__(self, store, bucket_name: str, key: str,
                 metadata: Optional[dict] = None):
        self.store = store
        self.bucket_name = bucket_name
        self.key = key
        self.metadata = dict(metadata or {})
        self.upload_id = f"upload-{next(_upload_counter):06d}"
        self.parts: Dict[int, bytes] = {}
        self._done = False

    def upload_part(self, part_number: int, data: bytes) -> str:
        """Stage one part; returns the part's etag. Re-uploads replace."""
        if self._done:
            raise UploadNotFound(self.upload_id)
        if part_number < 1:
            raise StorageError("part numbers start at 1")
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError("part data must be bytes")
        self.parts[part_number] = bytes(data)
        return hashlib.md5(data).hexdigest()

    @property
    def staged_bytes(self) -> int:
        return sum(len(p) for p in self.parts.values())

    def complete(self):
        """Assemble parts in order into the final object."""
        if self._done:
            raise UploadNotFound(self.upload_id)
        if not self.parts:
            raise StorageError("cannot complete an upload with no parts")
        numbers = sorted(self.parts)
        if numbers != list(range(1, len(numbers) + 1)):
            raise StorageError(f"non-contiguous part numbers: {numbers}")
        body = b"".join(self.parts[n] for n in numbers)
        # S3-style multipart etag: md5 of concatenated part md5s, "-N".
        digest = hashlib.md5(
            b"".join(hashlib.md5(self.parts[n]).digest() for n in numbers)
        ).hexdigest()
        etag = f"{digest}-{len(numbers)}"
        obj = self.store.put_object(self.bucket_name, self.key, body,
                                    metadata=self.metadata)
        obj.etag = etag
        self._done = True
        self.store._finish_multipart(self)
        return obj

    def abort(self) -> None:
        if not self._done:
            self._done = True
            self.parts.clear()
            self.store._finish_multipart(self)
