"""Unit tests for Resource / PriorityResource / Store / Container."""

import pytest

from repro.sim import Container, PriorityResource, Resource, Store


class TestResource:
    def test_capacity_validated(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_grants_up_to_capacity(self, sim):
        res = Resource(sim, capacity=2)
        grabbed = []

        def proc(sim, i):
            with res.request() as req:
                yield req
                grabbed.append((sim.now, i))
                yield sim.timeout(1)

        for i in range(4):
            sim.process(proc(sim, i))
        sim.run()
        assert grabbed == [(0.0, 0), (0.0, 1), (1.0, 2), (1.0, 3)]

    def test_queue_length_reflects_waiters(self, sim):
        res = Resource(sim, capacity=1)

        def holder(sim):
            with res.request() as req:
                yield req
                yield sim.timeout(10)

        def waiter(sim):
            with res.request() as req:
                yield req

        sim.process(holder(sim))
        sim.process(waiter(sim))
        sim.run(until=1.0)
        assert res.count == 1
        assert res.queue_length == 1

    def test_release_is_idempotent(self, sim):
        res = Resource(sim)
        req = res.request()
        sim.run()
        res.release(req)
        res.release(req)   # no error
        assert res.count == 0

    def test_cancel_pending_request(self, sim):
        res = Resource(sim, capacity=1)
        first = res.request()
        second = res.request()
        second.cancel()
        res.release(first)
        assert res.count == 0  # cancelled request never granted


class TestPriorityResource:
    def test_lower_priority_value_wins(self, sim):
        res = PriorityResource(sim, capacity=1)
        order = []

        def proc(sim, name, priority, delay):
            yield sim.timeout(delay)
            with res.request(priority=priority) as req:
                yield req
                order.append(name)
                yield sim.timeout(5)

        sim.process(proc(sim, "holder", 0, 0))
        sim.process(proc(sim, "low", 5, 1))
        sim.process(proc(sim, "high", 1, 2))
        sim.run()
        assert order == ["holder", "high", "low"]


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("a")

        def getter(sim):
            item = yield store.get()
            return item

        assert sim.run(until=sim.process(getter(sim))) == "a"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def getter(sim):
            item = yield store.get()
            return (sim.now, item)

        def putter(sim):
            yield sim.timeout(3)
            yield store.put("late")

        p = sim.process(getter(sim))
        sim.process(putter(sim))
        assert sim.run(until=p) == (3.0, "late")

    def test_fifo_ordering(self, sim):
        store = Store(sim)
        for i in range(5):
            store.put(i)
        out = []

        def getter(sim):
            for _ in range(5):
                out.append((yield store.get()))

        sim.run(until=sim.process(getter(sim)))
        assert out == [0, 1, 2, 3, 4]

    def test_filtered_get_skips_nonmatching(self, sim):
        store = Store(sim)
        for i in range(5):
            store.put(i)

        def getter(sim):
            item = yield store.get(filter=lambda x: x % 2 == 1)
            return item

        assert sim.run(until=sim.process(getter(sim))) == 1
        assert store.peek_all() == [0, 2, 3, 4]

    def test_bounded_capacity_blocks_put(self, sim):
        store = Store(sim, capacity=1)
        events = []

        def putter(sim):
            yield store.put("a")
            events.append(("put-a", sim.now))
            yield store.put("b")
            events.append(("put-b", sim.now))

        def getter(sim):
            yield sim.timeout(5)
            item = yield store.get()
            events.append(("got", item, sim.now))

        sim.process(putter(sim))
        sim.process(getter(sim))
        sim.run()
        assert events == [("put-a", 0.0), ("got", "a", 5.0),
                          ("put-b", 5.0)]

    def test_none_is_a_valid_item(self, sim):
        store = Store(sim)
        store.put(None)

        def getter(sim):
            item = yield store.get()
            return ("got", item)

        assert sim.run(until=sim.process(getter(sim))) == ("got", None)

    def test_capacity_validated(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)


class TestContainer:
    def test_init_level(self, sim):
        c = Container(sim, capacity=10, init=4)
        assert c.level == 4

    def test_get_blocks_until_level(self, sim):
        c = Container(sim, capacity=100)

        def consumer(sim):
            yield c.get(5)
            return sim.now

        def producer(sim):
            yield sim.timeout(2)
            yield c.put(10)

        p = sim.process(consumer(sim))
        sim.process(producer(sim))
        assert sim.run(until=p) == 2.0
        assert c.level == 5

    def test_put_blocks_at_capacity(self, sim):
        c = Container(sim, capacity=10, init=8)
        done = []

        def producer(sim):
            yield c.put(5)
            done.append(sim.now)

        def consumer(sim):
            yield sim.timeout(4)
            yield c.get(6)

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert done == [4.0]

    def test_invalid_amounts_rejected(self, sim):
        c = Container(sim)
        with pytest.raises(ValueError):
            c.put(0)
        with pytest.raises(ValueError):
            c.get(-1)

    def test_invalid_init_rejected(self, sim):
        with pytest.raises(ValueError):
            Container(sim, capacity=5, init=6)
