"""Guest command/program base classes and the student-code marker parser."""

from __future__ import annotations

import re
from typing import Dict, List


class GuestCommand:
    """A named command invocable from the guest shell."""

    name: str = ""

    def run(self, ctx, args: List[str]) -> int:
        raise NotImplementedError


class GuestProgram:
    """An executable produced inside the container (``#!rai-exec`` files).

    ``config`` is the JSON payload embedded in the executable by whatever
    built it (for ``ece408``: the characteristics ``make`` extracted from
    the student sources).
    """

    name: str = ""

    def run(self, ctx, args: List[str], config: dict) -> int:
        raise NotImplementedError


# --------------------------------------------------------------------------
# Student-source markers
# --------------------------------------------------------------------------
#
# Real student CUDA cannot execute here, so a project's behavioural
# characteristics are declared in its sources with a marker comment:
#
#     // @rai-sim quality=0.85 impl=analytic correctness=1.0
#
# Recognised keys:
#   quality      float [0,1] — optimisation level (DESIGN.md substitution)
#   impl         "analytic" | "reference" | "im2col"
#   correctness  float [0,1] — achieved accuracy fraction on the dataset
#   compile      "ok" | "error"
#   runtime      "ok" | "crash" | "hang"
#   mem_gb       float — peak device+host memory the program touches
#   net          "none" | "phone-home" — whether it attempts network access

_MARKER_RE = re.compile(r"@rai-sim\s+([^\n]*)")
_KV_RE = re.compile(r"(\w+)=([^\s]+)")

DEFAULT_PROFILE = {
    "quality": 0.0,
    "impl": "analytic",
    "correctness": 1.0,
    "compile": "ok",
    "runtime": "ok",
    "mem_gb": 2.0,
    "net": "none",
}

_FLOAT_KEYS = {"quality", "correctness", "mem_gb"}


def parse_source_markers(sources: Dict[str, str]) -> dict:
    """Merge ``@rai-sim`` markers from all sources over the defaults."""
    profile = dict(DEFAULT_PROFILE)
    for _path in sorted(sources):
        text = sources[_path]
        for match in _MARKER_RE.finditer(text):
            for key, value in _KV_RE.findall(match.group(1)):
                if key not in profile:
                    continue
                if key in _FLOAT_KEYS:
                    try:
                        profile[key] = float(value)
                    except ValueError:
                        pass
                else:
                    profile[key] = value
    profile["quality"] = max(0.0, min(1.0, profile["quality"]))
    profile["correctness"] = max(0.0, min(1.0, profile["correctness"]))
    return profile


def make_executable_blob(program: str, config: dict) -> bytes:
    """Content of a ``#!rai-exec`` executable file."""
    import json

    return (f"#!rai-exec {program}\n" + json.dumps(config, sort_keys=True)
            ).encode("utf-8")
