"""Unit tests for the grading rubric."""

import pytest

from repro.grading import Rubric, RubricWeights


class TestWeights:
    def test_paper_defaults(self):
        weights = RubricWeights()
        assert weights.performance == 0.30
        assert weights.correctness == 0.20
        assert weights.code_quality == 0.10
        assert weights.report == 0.40

    def test_must_sum_to_one(self):
        with pytest.raises(ValueError):
            RubricWeights(performance=0.5, correctness=0.5,
                          code_quality=0.5, report=0.5)


class TestPerformanceScore:
    def test_endpoints(self):
        rubric = Rubric(best_time=0.25, baseline_time=1800.0)
        assert rubric.performance_score(0.25) == pytest.approx(1.0)
        assert rubric.performance_score(1800.0) == pytest.approx(0.0)
        assert rubric.performance_score(None) == 0.0

    def test_log_scale_midpoint(self):
        rubric = Rubric(best_time=0.25, baseline_time=1800.0)
        import math

        geo_mean = math.sqrt(0.25 * 1800.0)
        assert rubric.performance_score(geo_mean) == pytest.approx(0.5)

    def test_each_10x_worth_similar_credit(self):
        rubric = Rubric(best_time=0.1, baseline_time=1000.0)
        delta1 = rubric.performance_score(1.0) - rubric.performance_score(10.0)
        delta2 = rubric.performance_score(10.0) - rubric.performance_score(100.0)
        assert delta1 == pytest.approx(delta2)

    def test_faster_than_best_clamped(self):
        rubric = Rubric(best_time=0.25)
        assert rubric.performance_score(0.01) == 1.0


class TestCorrectnessScore:
    def test_at_target_full_credit(self):
        rubric = Rubric(accuracy_target=0.8)
        assert rubric.correctness_score(0.8) == 1.0
        assert rubric.correctness_score(0.95) == 1.0

    def test_below_target_linear(self):
        rubric = Rubric(accuracy_target=0.8)
        assert rubric.correctness_score(0.4) == pytest.approx(0.5)
        assert rubric.correctness_score(None) == 0.0


class TestGrade:
    def test_weighted_total(self):
        rubric = Rubric(best_time=0.25, baseline_time=1800.0)
        grade = rubric.grade("t", best_time=0.25, accuracy=1.0,
                             code_quality=1.0, report=1.0, rank=1)
        assert grade.total == pytest.approx(1.0)
        assert grade.rank == 1

    def test_report_dominates_per_rubric(self):
        """40% report weight: a perfect report beats perfect performance."""
        rubric = Rubric()
        report_only = rubric.grade("a", None, None, 0.0, 1.0)
        perf_only = rubric.grade("b", rubric.best_time, None, 0.0, 0.0)
        assert report_only.total > perf_only.total

    def test_component_clamping(self):
        grade = Rubric().grade("t", 1.0, 1.0, code_quality=2.0, report=-1.0)
        assert grade.code_quality == 1.0
        assert grade.report == 0.0
