"""Build cache participation in snapshot/restore."""

import pytest

from repro.core.job import JobStatus
from repro.core.system import RaiSystem
from repro.durability.snapshot import capture, install

pytestmark = [pytest.mark.durability, pytest.mark.buildcache]

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\nint main(){}\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


def _populate(system, team="t"):
    client = system.new_client(team=team)
    client.stage_project(FILES)
    result = system.run(client.submit())
    assert result.status is JobStatus.SUCCEEDED
    return client


class TestSnapshotCodec:
    def test_capture_install_round_trips_cache(self):
        system = RaiSystem.standard(num_workers=1, seed=71)
        _populate(system)
        before = system.build_cache.stats()
        assert before["entries"] == 2  # cmake + make
        snap = capture(system)

        target = RaiSystem(seed=71)
        install(target, snap)
        after = target.build_cache.stats()
        assert after["entries"] == before["entries"]
        assert after["blobs"] == before["blobs"]          # no duplicates
        assert after["blob_bytes"] == before["blob_bytes"]
        assert target.build_cache.verify() == []          # refcounts intact

    def test_pre_cache_snapshot_installs_cleanly(self):
        """A snapshot taken before the build cache existed (no key, or
        None from a disabled deployment) restores to an empty cache."""
        system = RaiSystem.standard(num_workers=1, seed=72)
        _populate(system)
        snap = capture(system)
        del snap["buildcache"]
        target = RaiSystem(seed=72)
        install(target, snap)
        assert target.build_cache.entry_count == 0

        snap2 = capture(system)
        snap2["buildcache"] = None
        target2 = RaiSystem(seed=72)
        install(target2, snap2)
        assert target2.build_cache.entry_count == 0


class TestFullRestore:
    def test_restore_round_trips_cache_and_replays(self, tmp_path):
        system = RaiSystem.standard(num_workers=1, seed=73)
        system.attach_durability(str(tmp_path))
        client = _populate(system)
        before = system.build_cache.stats()
        system.checkpoint()
        system.crash_stop()

        restored = RaiSystem.restore(str(tmp_path), num_workers=1)
        cache = restored.build_cache
        assert cache.stats()["entries"] == before["entries"]
        assert cache.stats()["blobs"] == before["blobs"]
        assert cache.verify() == []
        # A resubmission of the same project on the revived deployment
        # replays from the restored cache.
        revived = restored.new_client(team="t")
        revived.stage_project(FILES)
        gap = restored.config.rate_limit_seconds + 1.0

        def resubmit():
            yield restored.sim.timeout(gap)
            result = yield from revived.submit()
            return result

        r2 = restored.run(resubmit())
        assert r2.status is JobStatus.SUCCEEDED
        hits = {e.fields["command"]
                for e in restored.events.query(type="buildcache.hit")
                if e.fields.get("job_id") == r2.job_id}
        assert hits == {"cmake /src", "make"}
        assert cache.verify() == []

    def test_restore_rebuilds_upload_bases_for_delta_ingest(self, tmp_path):
        """Base negotiation survives restore: a fresh client on the
        revived deployment still gets delta uploads."""
        system = RaiSystem.standard(num_workers=1, seed=74)
        system.attach_durability(str(tmp_path))
        client = system.new_client(username="erin")
        client.stage_project(FILES)
        assert system.run(client.submit()).status is JobStatus.SUCCEEDED
        system.checkpoint()
        system.crash_stop()

        restored = RaiSystem.restore(str(tmp_path), num_workers=1)
        base = restored.storage.negotiate_base(
            restored.config.upload_bucket, "erin")
        assert base is not None
        fresh = restored.new_client(username="erin")
        fresh.stage_project(FILES)
        gap = restored.config.rate_limit_seconds + 1.0

        def resubmit():
            yield restored.sim.timeout(gap)
            result = yield from fresh.submit()
            return result

        r2 = restored.run(resubmit())
        assert r2.upload_bytes < r2.upload_bytes_full / 2
