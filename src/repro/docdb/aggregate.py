"""Aggregation pipeline.

Implements the stages the grading and ranking tools use, with MongoDB
semantics: each stage transforms the full document stream.

Supported stages: ``$match``, ``$group``, ``$sort``, ``$skip``, ``$limit``,
``$project``, ``$unwind``, ``$count``, ``$addFields``.

Group accumulators: ``$sum``, ``$avg``, ``$min``, ``$max``, ``$push``,
``$addToSet``, ``$first``, ``$last``, ``$count``.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List

from repro.docdb.cursor import Cursor, apply_projection, normalize_sort
from repro.docdb.query import get_path, match_document, _MISSING
from repro.errors import InvalidQuery


def _evaluate(expr: Any, doc: dict) -> Any:
    """Evaluate an aggregation expression against a document.

    Supports ``"$field"`` references, literals, and a few arithmetic
    operators (``$add $subtract $multiply $divide``).
    """
    if isinstance(expr, str) and expr.startswith("$"):
        value = get_path(doc, expr[1:])
        return None if value is _MISSING else value
    if isinstance(expr, dict):
        if len(expr) == 1:
            op, args = next(iter(expr.items()))
            if op in ("$add", "$subtract", "$multiply", "$divide"):
                values = [_evaluate(a, doc) for a in args]
                if any(v is None for v in values):
                    return None
                if op == "$add":
                    return sum(values)
                if op == "$subtract":
                    return values[0] - values[1]
                if op == "$multiply":
                    result = 1
                    for v in values:
                        result *= v
                    return result
                return values[0] / values[1] if values[1] else None
        return {k: _evaluate(v, doc) for k, v in expr.items()}
    return expr


def _stage_group(docs: List[dict], spec: dict) -> List[dict]:
    if "_id" not in spec:
        raise InvalidQuery("$group requires an _id expression")
    groups: Dict[Any, dict] = {}
    order: List[Any] = []
    # accumulator state
    state: Dict[Any, Dict[str, Any]] = {}

    for doc in docs:
        key = _evaluate(spec["_id"], doc)
        hashable = _hashable(key)
        if hashable not in groups:
            groups[hashable] = {"_id": key}
            state[hashable] = {}
            order.append(hashable)
        out = groups[hashable]
        st = state[hashable]
        for field, acc in spec.items():
            if field == "_id":
                continue
            if not isinstance(acc, dict) or len(acc) != 1:
                raise InvalidQuery(f"bad accumulator for {field!r}")
            op, expr = next(iter(acc.items()))
            value = _evaluate(expr, doc)
            if op == "$sum":
                out[field] = out.get(field, 0) + (
                    value if isinstance(value, (int, float)) else 0)
            elif op == "$avg":
                cell = st.setdefault(field, [0.0, 0])
                if isinstance(value, (int, float)):
                    cell[0] += value
                    cell[1] += 1
                out[field] = cell[0] / cell[1] if cell[1] else None
            elif op == "$min":
                if value is not None and (field not in out or
                                          out[field] is None or
                                          value < out[field]):
                    out[field] = value
                out.setdefault(field, None)
            elif op == "$max":
                if value is not None and (field not in out or
                                          out[field] is None or
                                          value > out[field]):
                    out[field] = value
                out.setdefault(field, None)
            elif op == "$push":
                out.setdefault(field, []).append(value)
            elif op == "$addToSet":
                bucket = out.setdefault(field, [])
                if value not in bucket:
                    bucket.append(value)
            elif op == "$first":
                if field not in out:
                    out[field] = value
            elif op == "$last":
                out[field] = value
            elif op == "$count":
                out[field] = out.get(field, 0) + 1
            else:
                raise InvalidQuery(f"unsupported accumulator {op!r}")
    return [groups[h] for h in order]


def _hashable(value: Any):
    if isinstance(value, list):
        return ("__list__", tuple(_hashable(v) for v in value))
    if isinstance(value, dict):
        return ("__dict__",
                tuple(sorted((k, _hashable(v)) for k, v in value.items())))
    return value


def _stage_unwind(docs: List[dict], spec) -> List[dict]:
    path = spec["path"] if isinstance(spec, dict) else spec
    if not path.startswith("$"):
        raise InvalidQuery("$unwind path must start with '$'")
    field = path[1:]
    out = []
    for doc in docs:
        value = get_path(doc, field)
        if value is _MISSING or value is None:
            continue
        if not isinstance(value, list):
            out.append(doc)
            continue
        for item in value:
            clone = copy.deepcopy(doc)
            _set_top(clone, field, item)
            out.append(clone)
    return out


def _set_top(doc: dict, path: str, value) -> None:
    parts = path.split(".")
    current = doc
    for part in parts[:-1]:
        current = current.setdefault(part, {})
    current[parts[-1]] = value


def run_pipeline(docs: List[dict], pipeline: List[dict]) -> List[dict]:
    """Run a pipeline over ``docs`` and return the resulting documents."""
    current = docs
    for stage in pipeline:
        if not isinstance(stage, dict) or len(stage) != 1:
            raise InvalidQuery(f"each stage must be a single-key dict: {stage!r}")
        op, spec = next(iter(stage.items()))
        if op == "$match":
            current = [d for d in current if match_document(d, spec)]
        elif op == "$group":
            current = _stage_group(current, spec)
        elif op == "$sort":
            cursor = Cursor(current)
            cursor.sort([(k, v) for k, v in spec.items()]
                        if isinstance(spec, dict) else spec)
            current = cursor.to_list()
        elif op == "$skip":
            current = current[spec:]
        elif op == "$limit":
            current = current[:spec]
        elif op == "$project":
            # 0/1/bool values are include/exclude flags; anything else
            # (a "$field" reference or operator dict) is a computed field.
            simple = {k: v for k, v in spec.items()
                      if isinstance(v, bool) or v in (0, 1)}
            computed = {k: v for k, v in spec.items() if k not in simple}
            result = []
            for doc in current:
                base = apply_projection(doc, simple) if simple else dict(doc)
                for field, expr in computed.items():
                    base[field] = _evaluate(expr, doc)
                result.append(base)
            current = result
        elif op == "$addFields":
            result = []
            for doc in current:
                clone = copy.deepcopy(doc)
                for field, expr in spec.items():
                    _set_top(clone, field, _evaluate(expr, doc))
                result.append(clone)
            current = result
        elif op == "$unwind":
            current = _stage_unwind(current, spec)
        elif op == "$count":
            current = [{spec: len(current)}]
        else:
            raise InvalidQuery(f"unsupported pipeline stage {op!r}")
    return current
