"""Property-based tests for kernel ordering and resource invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator

delays = st.lists(st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False), min_size=1, max_size=30)


class TestEventOrdering:
    @given(ds=delays)
    def test_callbacks_fire_in_time_order(self, ds):
        sim = Simulator()
        fired = []
        for d in ds:
            evt = sim.timeout(d)
            evt.callbacks.append(lambda e, d=d: fired.append(d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(ds)

    @given(ds=delays)
    def test_clock_never_goes_backwards(self, ds):
        sim = Simulator()
        stamps = []

        def proc(sim, d):
            yield sim.timeout(d)
            stamps.append(sim.now)

        for d in ds:
            sim.process(proc(sim, d))
        sim.run()
        assert stamps == sorted(stamps)
        assert sim.now == max(ds)

    @given(ds=delays)
    def test_run_twice_identical(self, ds):
        def trace(ds):
            sim = Simulator()
            log = []

            def proc(sim, i, d):
                yield sim.timeout(d)
                log.append((sim.now, i))

            for i, d in enumerate(ds):
                sim.process(proc(sim, i, d))
            sim.run()
            return log

        assert trace(ds) == trace(ds)


class TestResourceInvariants:
    @settings(max_examples=30, deadline=None)
    @given(capacity=st.integers(1, 5),
           holds=st.lists(st.floats(min_value=0.1, max_value=10.0,
                                    allow_nan=False),
                          min_size=1, max_size=20))
    def test_capacity_never_exceeded_and_all_served(self, capacity, holds):
        sim = Simulator()
        res = Resource(sim, capacity=capacity)
        active = [0]
        peak = [0]
        served = [0]

        def proc(sim, hold):
            with res.request() as req:
                yield req
                active[0] += 1
                peak[0] = max(peak[0], active[0])
                yield sim.timeout(hold)
                active[0] -= 1
                served[0] += 1

        for hold in holds:
            sim.process(proc(sim, hold))
        sim.run()
        assert peak[0] <= capacity
        assert served[0] == len(holds)
        assert res.count == 0
        assert res.queue_length == 0

    @settings(max_examples=30, deadline=None)
    @given(holds=st.lists(st.floats(min_value=0.1, max_value=5.0,
                                    allow_nan=False),
                          min_size=2, max_size=15))
    def test_unit_resource_serialises_fifo(self, holds):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def proc(sim, i, hold):
            with res.request() as req:
                yield req
                order.append(i)
                yield sim.timeout(hold)

        for i, hold in enumerate(holds):
            sim.process(proc(sim, i, hold))
        sim.run()
        assert order == list(range(len(holds)))
