"""Shared infrastructure for the benchmark harness.

Every paper artifact (table/figure) has one ``bench_*`` file.  Benches
print the regenerated rows/series in the paper's shape — run with ``-s``
to see them — and assert the *shape-level* expectations recorded in
EXPERIMENTS.md (who wins, rough factors, where distributions fall).

The flagship five-week course replay is expensive (~2-4 minutes), so it
runs once per session and is shared by the Figure 2 / Figure 4 / §VII
benches.  Set ``REPRO_COURSE_SCALE=small`` for a reduced replay during
development.
"""

import os

import pytest

from repro.workload.course import CourseConfig, CourseSimulation

_COURSE_CACHE = {}


def course_config() -> CourseConfig:
    scale = os.environ.get("REPRO_COURSE_SCALE", "full")
    if scale == "small":
        return CourseConfig(n_students=36, n_teams=12, duration_days=10.0,
                            seed=408, final_week_instances=8)
    return CourseConfig(seed=408)   # the paper's 176 students / 58 teams


@pytest.fixture(scope="session")
def course_result():
    """The shared course replay (run once, reused by several benches)."""
    key = os.environ.get("REPRO_COURSE_SCALE", "full")
    if key not in _COURSE_CACHE:
        simulation = CourseSimulation(course_config())
        _COURSE_CACHE[key] = (simulation, simulation.run())
    return _COURSE_CACHE[key]


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
