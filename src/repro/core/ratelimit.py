"""Per-principal submission rate limiting.

"To limit denial of service attacks and to maintain fairness, each student
can only submit a job every 30 seconds" (§V, Container Execution).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import RateLimited

DEFAULT_WINDOW_SECONDS = 30.0


class RateLimiter:
    """A fixed-interval limiter keyed by principal (user or team)."""

    def __init__(self, clock: Callable[[], float],
                 window_seconds: float = DEFAULT_WINDOW_SECONDS):
        if window_seconds < 0:
            raise ValueError("window must be >= 0")
        self.clock = clock
        self.window_seconds = window_seconds
        self._last_accepted: Dict[str, float] = {}
        self.total_accepted = 0
        self.total_rejected = 0

    def check(self, principal: str) -> None:
        """Accept or raise :class:`RateLimited` (with ``retry_after``)."""
        now = self.clock()
        last = self._last_accepted.get(principal)
        if last is not None:
            elapsed = now - last
            if elapsed < self.window_seconds:
                self.total_rejected += 1
                raise RateLimited(retry_after=self.window_seconds - elapsed)
        self._last_accepted[principal] = now
        self.total_accepted += 1

    def retry_after(self, principal: str) -> float:
        """Seconds until the next submission would be accepted (0 if now)."""
        last = self._last_accepted.get(principal)
        if last is None:
            return 0.0
        return max(0.0, self.window_seconds - (self.clock() - last))

    def reset(self, principal: str = None) -> None:
        if principal is None:
            self._last_accepted.clear()
        else:
            self._last_accepted.pop(principal, None)
