"""Simulation-kernel throughput — event loop, broker churn, obs plane.

Not a paper figure: this bench tracks the *kernel's* performance so the
simulator itself never becomes the bottleneck at semester scale (ISSUE 7
— the Ray observation that serving millions of tasks is a fight against
per-task overhead).  It runs the per-subsystem sub-benches, drives the
tier ladder through the real student → broker → worker → docdb path,
prices the observability plane at the giant tier (10,000 students,
1,000,000 submissions), prints an attribution table against the embedded
pre-PR baseline, asserts the acceptance floors, and writes
``BENCH_kernel.json`` at the repository root.

Methodology notes:

- The baseline numbers were captured at commit ``fd7f2fb`` (the commit
  before the kernel optimizations) with *this same harness* copied into
  a worktree, so old and new kernels ran identical driver code.
- The two giant-tier runs execute in fresh interpreters (one subprocess
  per configuration).  Long runs inside a shared interpreter inherit
  allocator fragmentation from whatever ran before them — back-to-back
  in-process measurements of the same configuration drift by 20%+ —
  and a fresh heap per measured config removes that order dependence.

Run: ``pytest benchmarks/bench_kernel.py -s``
"""

import json
import os
import subprocess
import sys

from benchmarks.conftest import print_banner
from repro.workload.kernelbench import (
    LADDER,
    bench_broker,
    bench_docdb,
    bench_event_loop,
    bench_obs,
    run_kernel_workload,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_PATH = os.path.join(_REPO_ROOT, "BENCH_kernel.json")

#: Pre-PR kernel, captured at fd7f2fb with this harness (see module
#: docstring).  Tier numbers are obs-on, the configuration the ladder
#: reports; ``giant_obs_on`` is the acceptance reference point.
_BASELINE = {
    "commit": "fd7f2fb",
    "event_loop_events_per_s": 491_013,
    "broker_messages_per_s": 44_673,
    "obs_ns": {
        "counter_inc": 91,
        "counter_group_incr": 1022,
        "histogram_observe": 769,
        "event_emit": 818,
        "event_emit_disabled": 178,
    },
    "docdb": {"inserts_per_s": 199_431, "probes_per_s": 63_889},
    "tiers_obs_on": {
        "small": {"wall_s": 0.823, "events_per_s": 98_383,
                  "submissions_per_s": 24_287},
        "medium": {"wall_s": 5.046, "events_per_s": 80_070,
                   "submissions_per_s": 19_818},
        "large": {"wall_s": 18.348, "events_per_s": 65_951,
                  "submissions_per_s": 16_351},
        "giant": {"wall_s": 85.369, "events_per_s": 47_091,
                  "submissions_per_s": 11_714,
                  "kernel_events": 4_020_130},
    },
    "giant_trace_digest":
        "b7ec8b0bf5a1e295891fd8a62059900c277229ca73579c6075db57b16783e10b",
}

_GIANT_SNIPPET = (
    "import json, sys\n"
    "from repro.workload.kernelbench import run_kernel_workload, GIANT_TIER\n"
    "r = run_kernel_workload(GIANT_TIER, obs=bool(int(sys.argv[1])))\n"
    "print(json.dumps(r.to_dict()))\n"
)


def _run_giant(obs: bool) -> dict:
    """One giant-tier run in a fresh interpreter (see module docstring)."""
    env = dict(os.environ)
    src = os.path.join(_REPO_ROOT, "src")
    prev = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + prev if prev else "")
    proc = subprocess.run(
        [sys.executable, "-c", _GIANT_SNIPPET, "1" if obs else "0"],
        capture_output=True, text=True, env=env, check=True)
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _best_giant_pair(reps: int = 3):
    """Best-of-``reps`` giant walls per config, interleaved on/off.

    Single 25-second runs still jitter by 10%+ on a shared machine —
    enough to swamp a sub-10% overhead ratio — so each configuration
    keeps its fastest wall.  Interleaving spreads any slow patch of the
    machine across both configurations instead of biasing one.
    """
    best_on, best_off = None, None
    for _ in range(reps):
        on = _run_giant(obs=True)
        off = _run_giant(obs=False)
        if best_on is None or on["wall_s"] < best_on["wall_s"]:
            best_on = on
        if best_off is None or off["wall_s"] < best_off["wall_s"]:
            best_off = off
    return best_on, best_off


def test_kernel_throughput(benchmark):
    def run_all():
        subsystems = {
            "event_loop": bench_event_loop(),
            "broker": bench_broker(),
            "obs": bench_obs(),
            "docdb": bench_docdb(),
        }
        ladder = [run_kernel_workload(scale).to_dict() for scale in LADDER]
        giant_on, giant_off = _best_giant_pair()
        return subsystems, ladder, giant_on, giant_off

    subsystems, ladder, giant_on, giant_off = benchmark.pedantic(
        run_all, rounds=1, iterations=1)

    base_tiers = _BASELINE["tiers_obs_on"]
    obs_overhead = giant_on["wall_s"] / giant_off["wall_s"] - 1.0

    print_banner("Simulation kernel — event loop / broker / obs / docdb")
    print(f"{'subsystem':<22}{'baseline':>14}{'current':>14}{'speedup':>9}")
    rows = [
        ("event loop (ev/s)", _BASELINE["event_loop_events_per_s"],
         subsystems["event_loop"]["events_per_s"]),
        ("broker (msg/s)", _BASELINE["broker_messages_per_s"],
         subsystems["broker"]["messages_per_s"]),
        ("hist observe (ns)", _BASELINE["obs_ns"]["histogram_observe"],
         subsystems["obs"]["histogram_observe_ns"]),
        ("event emit (ns)", _BASELINE["obs_ns"]["event_emit"],
         subsystems["obs"]["event_emit_ns"]),
        ("group incr (ns)", _BASELINE["obs_ns"]["counter_group_incr"],
         subsystems["obs"]["counter_group_incr_ns"]),
        ("docdb insert (1/s)", _BASELINE["docdb"]["inserts_per_s"],
         subsystems["docdb"]["inserts_per_s"]),
    ]
    for name, base, cur in rows:
        ratio = (base / cur) if name.endswith("(ns)") else (cur / base)
        print(f"{name:<22}{base:>14,}{cur:>14,}{ratio:>8.2f}x")

    print(f"\n{'tier':<9}{'subs':>10}{'wall s':>9}{'events/s':>11}"
          f"{'subs/s':>9}{'vs base':>9}")
    for tier in ladder + [giant_on]:
        name = tier["scale"]["name"]
        ratio = tier["events_per_s"] / base_tiers[name]["events_per_s"]
        print(f"{name:<9}{tier['submissions']:>10,}{tier['wall_s']:>9.2f}"
              f"{tier['events_per_s']:>11,}{tier['submissions_per_s']:>9,}"
              f"{ratio:>8.2f}x")
    print(f"\ngiant obs overhead: {obs_overhead * 100:.1f}% "
          f"(on {giant_on['wall_s']:.2f}s / off {giant_off['wall_s']:.2f}s)")
    print(f"giant message pool: {giant_on['message_pool']}")

    # --- acceptance floors (ISSUE 7) -------------------------------------
    # >= 2x kernel event throughput at the largest common scale (giant).
    giant_speedup = (giant_on["events_per_s"]
                     / base_tiers["giant"]["events_per_s"])
    assert giant_speedup >= 2.0, giant_speedup
    # The giant tier (10k students, 1M submissions) completes in minutes.
    assert giant_on["submissions"] == 1_000_000
    assert giant_on["wall_s"] < 240.0
    # Observability priced at that volume: < 10% wall-clock overhead.
    assert obs_overhead < 0.10, obs_overhead
    # Determinism: the obs plane must not perturb delivery order, and the
    # optimized kernel reproduces the pre-PR kernel's delivery order for
    # the same seed, byte for byte.
    assert giant_on["trace_digest"] == giant_off["trace_digest"]
    assert giant_on["trace_digest"] == _BASELINE["giant_trace_digest"]

    payload = {
        "bench": "kernel",
        "source": "benchmarks/bench_kernel.py",
        "baseline": _BASELINE,
        "current": {
            "subsystems": subsystems,
            "tiers_obs_on": ladder + [giant_on],
            "giant_obs_off": giant_off,
        },
        "speedup": {
            "event_loop": round(subsystems["event_loop"]["events_per_s"]
                                / _BASELINE["event_loop_events_per_s"], 2),
            "broker": round(subsystems["broker"]["messages_per_s"]
                            / _BASELINE["broker_messages_per_s"], 2),
            "giant_events_per_s": round(giant_speedup, 2),
            "giant_submissions_per_s": round(
                giant_on["submissions_per_s"]
                / base_tiers["giant"]["submissions_per_s"], 2),
        },
        "giant_obs_overhead": round(obs_overhead, 4),
    }
    with open(_OUT_PATH, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"\nwrote {_OUT_PATH}")
