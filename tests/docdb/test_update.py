"""Unit tests for update operators."""

import pytest

from repro.docdb import apply_update
from repro.errors import InvalidUpdate


@pytest.fixture
def doc():
    return {"_id": 1, "team": "t1", "time": 2.0,
            "stats": {"runs": 3}, "tags": ["a"]}


class TestReplacement:
    def test_full_replacement(self, doc):
        out = apply_update(doc, {"team": "t2"})
        assert out == {"_id": 1, "team": "t2"}

    def test_mixing_rejected(self, doc):
        with pytest.raises(InvalidUpdate):
            apply_update(doc, {"$set": {"a": 1}, "b": 2})

    def test_original_untouched(self, doc):
        apply_update(doc, {"$set": {"team": "t9"}})
        assert doc["team"] == "t1"


class TestSetUnset:
    def test_set_simple(self, doc):
        assert apply_update(doc, {"$set": {"team": "t2"}})["team"] == "t2"

    def test_set_dotted_creates_path(self, doc):
        out = apply_update(doc, {"$set": {"a.b.c": 5}})
        assert out["a"]["b"]["c"] == 5

    def test_set_nested_existing(self, doc):
        out = apply_update(doc, {"$set": {"stats.runs": 9}})
        assert out["stats"]["runs"] == 9

    def test_unset(self, doc):
        out = apply_update(doc, {"$unset": {"team": ""}})
        assert "team" not in out

    def test_unset_missing_is_noop(self, doc):
        apply_update(doc, {"$unset": {"ghost.deep": ""}})

    def test_id_immutable(self, doc):
        with pytest.raises(InvalidUpdate):
            apply_update(doc, {"$set": {"_id": 99}})


class TestNumeric:
    def test_inc(self, doc):
        assert apply_update(doc, {"$inc": {"time": 0.5}})["time"] == 2.5

    def test_inc_missing_starts_at_zero(self, doc):
        assert apply_update(doc, {"$inc": {"count": 3}})["count"] == 3

    def test_inc_non_numeric_rejected(self, doc):
        with pytest.raises(InvalidUpdate):
            apply_update(doc, {"$inc": {"team": 1}})

    def test_mul(self, doc):
        assert apply_update(doc, {"$mul": {"time": 2}})["time"] == 4.0

    def test_min_takes_smaller(self, doc):
        assert apply_update(doc, {"$min": {"time": 1.0}})["time"] == 1.0
        assert apply_update(doc, {"$min": {"time": 9.0}})["time"] == 2.0

    def test_min_on_missing_sets(self, doc):
        assert apply_update(doc, {"$min": {"best": 5}})["best"] == 5

    def test_max(self, doc):
        assert apply_update(doc, {"$max": {"time": 9.0}})["time"] == 9.0
        assert apply_update(doc, {"$max": {"time": 1.0}})["time"] == 2.0


class TestArrays:
    def test_push(self, doc):
        assert apply_update(doc, {"$push": {"tags": "b"}})["tags"] == \
            ["a", "b"]

    def test_push_each(self, doc):
        out = apply_update(doc, {"$push": {"tags": {"$each": ["b", "c"]}}})
        assert out["tags"] == ["a", "b", "c"]

    def test_push_creates_list(self, doc):
        assert apply_update(doc, {"$push": {"new": 1}})["new"] == [1]

    def test_push_non_list_rejected(self, doc):
        with pytest.raises(InvalidUpdate):
            apply_update(doc, {"$push": {"team": "x"}})

    def test_add_to_set_dedupes(self, doc):
        out = apply_update(doc, {"$addToSet": {"tags": "a"}})
        assert out["tags"] == ["a"]
        out = apply_update(doc, {"$addToSet": {"tags": "b"}})
        assert out["tags"] == ["a", "b"]

    def test_pull_by_value(self, doc):
        doc["tags"] = ["a", "b", "a"]
        assert apply_update(doc, {"$pull": {"tags": "a"}})["tags"] == ["b"]

    def test_pull_by_condition(self, doc):
        doc["nums"] = [1, 5, 10]
        out = apply_update(doc, {"$pull": {"nums": {"$gt": 4}}})
        assert out["nums"] == [1]

    def test_pop(self, doc):
        doc["tags"] = ["a", "b", "c"]
        assert apply_update(doc, {"$pop": {"tags": 1}})["tags"] == ["a", "b"]
        assert apply_update(doc, {"$pop": {"tags": -1}})["tags"] == ["b", "c"]


class TestRename:
    def test_rename(self, doc):
        out = apply_update(doc, {"$rename": {"team": "squad"}})
        assert "team" not in out
        assert out["squad"] == "t1"

    def test_rename_missing_noop(self, doc):
        out = apply_update(doc, {"$rename": {"ghost": "spirit"}})
        assert "spirit" not in out


class TestErrors:
    def test_unknown_operator(self, doc):
        with pytest.raises(InvalidUpdate):
            apply_update(doc, {"$frobnicate": {"x": 1}})

    def test_non_dict_spec(self, doc):
        with pytest.raises(InvalidUpdate):
            apply_update(doc, {"$set": "x"})

    def test_non_dict_update(self, doc):
        with pytest.raises(InvalidUpdate):
            apply_update(doc, ["$set"])
