"""Course-driver variants: autoscaled fleets, tiny classes, scale knobs."""

import pytest

from repro.cluster import Autoscaler, AutoscalerPolicy, Provisioner
from repro.workload.course import CourseConfig, CourseSimulation


class TestAutoscaledCourse:
    def test_course_on_autoscaler_instead_of_manual_schedule(self):
        """The §IV claim that RAI 'can be configured to scale out ... as
        local resources [are] exhausted' — the whole course on reactive
        scaling only."""
        config = CourseConfig(n_students=24, n_teams=8,
                              duration_days=3.0, seed=9,
                              use_manual_schedule=False,
                              # slow teams: full-dataset finals take
                              # minutes, so the deadline builds a queue
                              struggling_fraction=1.0)
        simulation = CourseSimulation(config)
        provisioner = Provisioner(simulation.system)
        simulation.provisioner = provisioner
        simulation.result.provisioner = provisioner
        policy = AutoscalerPolicy(min_instances=1, max_instances=8,
                                  check_interval=60.0,
                                  scale_out_per_worker=0.5)
        scaler = Autoscaler(simulation.system, provisioner, policy)
        simulation.system.sim.process(scaler.run())
        result = simulation.run()

        assert len(result.final_results) == 8
        assert result.totals()["submissions"] > 50
        # The fleet breathed: at least the minimum was kept, and the
        # deadline crunch triggered scale-outs.
        assert len(provisioner.instances) >= 1
        assert any(d["action"] == "scale-out" for d in scaler.decisions)

    def test_bursty_load_survives_scale_in_of_active_worker(self):
        """Scale-in interrupts an in-flight job; the system recovers and
        the team's later submissions still succeed."""
        config = CourseConfig(n_students=6, n_teams=2, duration_days=1.5,
                              seed=4, use_manual_schedule=False)
        simulation = CourseSimulation(config)
        provisioner = Provisioner(simulation.system)
        simulation.provisioner = provisioner
        provisioner.launch_many(3, instance_type="p2.xlarge",
                                boot_delay=0.0)

        def chaos(sim):
            # Kill workers periodically while the course runs.
            for _ in range(4):
                yield sim.timeout(6 * 3600.0)
                provisioner.terminate_count(1)
                provisioner.launch(boot_delay=30.0)

        simulation.system.sim.process(chaos(simulation.system.sim))
        result = simulation.run()
        assert len(result.final_results) == 2


class TestScaleKnobs:
    def test_team_count_scales_submissions(self):
        def total(n_teams, n_students):
            config = CourseConfig(n_students=n_students, n_teams=n_teams,
                                  duration_days=2.0, seed=6,
                                  final_week_instances=4)
            return CourseSimulation(config).run().totals()["submissions"]

        small = total(2, 6)
        large = total(6, 18)
        assert large > 2 * small

    def test_padding_scales_storage(self):
        def stored(mean_bytes):
            config = CourseConfig(n_students=6, n_teams=2,
                                  duration_days=1.0, seed=6,
                                  final_week_instances=2,
                                  mean_project_bytes=mean_bytes)
            return CourseSimulation(config).run().totals()[
                "file_server_bytes"]

        assert stored(5e6) > 3 * stored(1e5)
