"""Worker-level build cache integration: capture, replay, invalidation."""

import pytest

from repro.buildspec import CACHEABLE_PROGRAMS, command_cacheable
from repro.core.job import JobStatus
from repro.core.system import RaiSystem

pytestmark = pytest.mark.buildcache

FILES = {
    "main.cu": "// @rai-sim quality=0.85 impl=analytic\nint main(){}\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
    "zz_tuning.cfg": "#define BLOCK_DIM 8\n",
}


def _course(system, client, stagings):
    """Submit once per staging dict (None = no restage), rate-limit gapped."""
    gap = system.config.rate_limit_seconds + 1.0
    results = []

    def driver():
        for i, staging in enumerate(stagings):
            if i:
                yield system.sim.timeout(gap)
            if staging:
                client.stage_project(staging)
            result = yield from client.submit()
            results.append(result)

    system.run(driver())
    return results


def _cache_events(system, kind):
    return system.events.query(type=f"buildcache.{kind}")


def _build_lines(result):
    """The cmake/make output lines — the part replay must reproduce.

    Run-command output legitimately differs *between jobs* (per-job
    timing noise prints in the measurement line); cache-on vs cache-off
    equivalence of whole courses is asserted by the grading digest.
    """
    return [line for line in result.stdout_text().splitlines()
            if line.startswith(("--", "[nvcc]", "[100%]"))]


class TestCacheability:
    def test_only_build_tools_are_cacheable(self):
        assert CACHEABLE_PROGRAMS == frozenset({"cmake", "make"})
        assert command_cacheable("cmake /src")
        assert command_cacheable("make")
        assert not command_cacheable("./ece408 /data/test10.hdf5")
        assert not command_cacheable("echo hi")
        assert not command_cacheable("make && ./ece408")  # chained run
        assert command_cacheable("cmake /src && make")
        assert not command_cacheable("")

    def test_run_commands_never_cached(self, system, client):
        system.run(client.submit())
        commands = {e.fields.get("command")
                    for kind in ("hit", "miss")
                    for e in _cache_events(system, kind)}
        assert commands <= {"cmake /src", "make"}


class TestReplay:
    def test_identical_resubmission_replays_from_cache(self):
        system = RaiSystem.standard(num_workers=1, seed=41)
        client = system.new_client(team="t")
        client.stage_project(FILES)
        r1, r2 = _course(system, client, [None, None])
        assert r1.status is JobStatus.SUCCEEDED
        assert r2.status is JobStatus.SUCCEEDED
        hits = _cache_events(system, "hit")
        assert {e.fields["job_id"] for e in hits} == {r2.job_id}
        assert {e.fields["command"] for e in hits} == {"cmake /src", "make"}
        # Replayed build output is byte-identical to the recorded run.
        assert _build_lines(r1) == _build_lines(r2)
        assert r1.stderr_text() == r2.stderr_text()
        # And dramatically cheaper than executing.
        d1 = r1.finished_at - r1.queued_at
        d2 = r2.finished_at - r2.queued_at
        assert d2 < d1 / 2

    def test_unread_tuning_edit_still_hits(self):
        system = RaiSystem.standard(num_workers=1, seed=42)
        client = system.new_client(team="t")
        client.stage_project(FILES)
        _, r2 = _course(system, client, [
            None, {"zz_tuning.cfg": "#define BLOCK_DIM 16\n"}])
        hits = _cache_events(system, "hit")
        assert {e.fields["job_id"] for e in hits} == {r2.job_id}

    def test_source_edit_invalidates_make_not_cmake(self):
        system = RaiSystem.standard(num_workers=1, seed=43)
        client = system.new_client(team="t")
        client.stage_project(FILES)
        _, r2 = _course(system, client, [
            None,
            {"main.cu": "// @rai-sim quality=0.9 impl=analytic\n"
                        "int main(){return 0;}\n"}])
        second = {e.fields["command"]: kind
                  for kind in ("hit", "miss")
                  for e in _cache_events(system, kind)
                  if e.fields.get("job_id") == r2.job_id}
        assert second["cmake /src"] == "hit"    # cmake never read main.cu
        assert second["make"] == "miss"

    def test_new_source_file_invalidates_make(self):
        system = RaiSystem.standard(num_workers=1, seed=44)
        client = system.new_client(team="t")
        client.stage_project(FILES)
        _, r2 = _course(system, client, [
            None, {"extra.cu": "// more kernels\n"}])
        second_misses = {e.fields["command"]
                         for e in _cache_events(system, "miss")
                         if e.fields.get("job_id") == r2.job_id}
        assert "make" in second_misses

    def test_compile_error_replays_identically(self):
        system = RaiSystem.standard(num_workers=1, seed=45)
        client = system.new_client(team="t")
        client.stage_project(dict(FILES, **{
            "main.cu": "// broken\nCOMPILE_ERROR\n"}))
        r1, r2 = _course(system, client, [None, None])
        assert r1.status is JobStatus.FAILED
        assert r2.status is JobStatus.FAILED
        assert r1.exit_code == r2.exit_code == 2
        assert r1.stderr_text() == r2.stderr_text()
        hits = _cache_events(system, "hit")
        assert {e.fields["job_id"] for e in hits} == {r2.job_id}

    def test_cache_disabled_in_build_file_skips_lookup(self):
        system = RaiSystem.standard(num_workers=1, seed=46)
        client = system.new_client(team="t")
        client.stage_project(FILES)
        client.set_build_file("""\
rai:
  version: 0.1
  image: webgpu/rai:root
  cache: false
commands:
  build:
    - cmake /src
    - make
""")
        r1, r2 = _course(system, client, [None, None])
        assert r1.status is JobStatus.SUCCEEDED
        assert r2.status is JobStatus.SUCCEEDED
        assert not _cache_events(system, "hit")
        assert not _cache_events(system, "miss")

    def test_cache_disabled_in_config(self):
        from repro.core.config import SystemConfig

        config = SystemConfig()
        config.buildcache_enabled = False
        system = RaiSystem.standard(num_workers=1, seed=47, config=config)
        assert system.build_cache is None
        client = system.new_client(team="t")
        client.stage_project(FILES)
        r1, r2 = _course(system, client, [None, None])
        assert r1.status is JobStatus.SUCCEEDED
        assert r2.status is JobStatus.SUCCEEDED
        assert not _cache_events(system, "miss")

    def test_cross_user_sharing(self):
        """Two students with identical projects share cached builds —
        the cache is content-keyed, not owner-keyed."""
        system = RaiSystem.standard(num_workers=1, seed=48)
        a = system.new_client(team="team-a")
        b = system.new_client(team="team-b")
        a.stage_project(FILES)
        b.stage_project(FILES)
        ra = system.run(a.submit())
        rb = system.run(b.submit())
        hits = _cache_events(system, "hit")
        assert {e.fields["job_id"] for e in hits} == {rb.job_id}
        assert _build_lines(ra) == _build_lines(rb)

    def test_downstream_run_unaffected_by_replay(self):
        """The run/grading command executes for real after a replayed
        build and produces the same measurement stream."""
        system = RaiSystem.standard(num_workers=1, seed=49)
        client = system.new_client(team="t")
        client.stage_project(FILES)
        r1, r2 = _course(system, client, [None, None])
        assert r1.correctness == r2.correctness == 1.0
        assert r1.internal_time is not None
        assert r2.internal_time is not None
