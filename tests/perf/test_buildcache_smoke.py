"""Tier-1 guards for the incremental-build acceptance bars.

The build cache must be (nearly) free when it cannot help — a course of
first-time builds with the cache enabled costs < 5% wall clock over the
cache disabled — and must be *invisible* in results: the grading digest
of a whole course is byte-identical with the cache on and off.
"""

import time

import pytest

from repro.core.config import SystemConfig
from repro.workload.hotpath import (
    HotpathScale,
    SMOKE_SCALE,
    grading_digest,
    run_hotpath,
)

pytestmark = [pytest.mark.perf, pytest.mark.buildcache]

#: First-submissions only: every build is a miss-then-capture, the
#: cache's worst case (tracking + snapshot cost, no replay wins).
#: Big enough that the 5% budget is measured against real work, not
#: interpreter startup noise — 12 students proved too small for a
#: stable ratio on loaded machines (sub-0.2 s runs jitter past 5%
#: on their own), so the measured run is 32.
FIRST_BUILD_SCALE = HotpathScale("firstbuild", n_students=32,
                                 n_resubmissions=0, n_workers=4)


def _run(cache_enabled: bool) -> dict:
    config = SystemConfig()
    config.buildcache_enabled = cache_enabled
    return run_hotpath(FIRST_BUILD_SCALE, config=config)


def _cpu_seconds(cache_enabled: bool) -> float:
    start = time.process_time()
    _run(cache_enabled)
    return time.process_time() - start


def _overhead_ratio() -> float:
    # CPU time, not wall clock: the workload is sub-second, and wall
    # clock picks up scheduler noise that dwarfs a 5% effect.  Eight
    # interleaved pairs, judged by whichever of two fair estimators is
    # smaller — ratio of sums (averages slow machine drift) and ratio
    # of minimums (quiet-window cost) — since on a loaded box either
    # one alone can be unlucky by more than the whole 5% budget.
    samples = [(_cpu_seconds(True), _cpu_seconds(False))
               for _ in range(8)]
    sum_on = sum(s for s, _ in samples)
    sum_off = sum(s for _, s in samples)
    min_on = min(s for s, _ in samples)
    min_off = min(s for _, s in samples)
    if sum_off <= 0 or min_off <= 0:
        return 1.0
    return min(sum_on / sum_off, min_on / min_off)


def test_first_build_overhead_under_five_percent():
    # One warmup pair absorbs allocator/bytecode cold start.  A true
    # regression fails both attempts; a one-off noise spike does not.
    _cpu_seconds(True)
    _cpu_seconds(False)
    ratio = _overhead_ratio()
    if ratio >= 1.05:
        ratio = min(ratio, _overhead_ratio())
    assert ratio < 1.05, (
        f"build-cache first-build overhead {100 * (ratio - 1):.1f}% "
        "exceeds 5% budget")


def test_grading_digest_identical_cache_on_vs_off():
    on = grading_digest(cache_enabled=True)
    off = grading_digest(cache_enabled=False)
    assert on == off


def test_resubmissions_hit_at_smoke_scale():
    metrics = run_hotpath(SMOKE_SCALE)
    bc = metrics["buildcache"]
    assert bc is not None
    assert bc["resubmission_hit_rate"] >= 0.8
    assert metrics["resubmission_latency_s"]["p50"] < 2.0
