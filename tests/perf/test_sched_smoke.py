"""Tier-1 smoke of the warm-start bench: pooled reuse beats cold starts.

``benchmarks/bench_sched.py`` runs the full scale ladder; this replays
the tiny smoke scale every test pass so a regression in the warm pool,
the fair-share scheduler, or their worker wiring fails fast, not only
when someone regenerates ``BENCH_sched.json``.
"""

import pytest

from repro.workload.schedbench import SMOKE_SCALE, run_sched

pytestmark = [pytest.mark.perf, pytest.mark.sched]


@pytest.fixture(scope="module")
def warm_metrics():
    return run_sched(SMOKE_SCALE, warm=True)


@pytest.fixture(scope="module")
def baseline_metrics():
    return run_sched(SMOKE_SCALE, warm=False)


def _mean_acquire_cost(metrics) -> float:
    acquire = metrics["container_acquire_s"]
    total = sum(entry["count"] * entry["mean"]
                for entry in acquire.values())
    count = sum(entry["count"] for entry in acquire.values())
    return total / count


def test_warm_reuse_halves_mean_acquire_cost(warm_metrics,
                                             baseline_metrics):
    """The acceptance floor: warm-pool reuse makes the mean container
    acquisition at least 2x cheaper than the cold-start baseline."""
    warm_cost = _mean_acquire_cost(warm_metrics)
    cold_cost = _mean_acquire_cost(baseline_metrics)
    assert cold_cost >= 2.0 * warm_cost


def test_baseline_never_warms(baseline_metrics):
    assert baseline_metrics["pool"]["hits"] == 0
    assert baseline_metrics["pool"]["hit_rate"] == 0.0
    assert "warm" not in baseline_metrics["container_acquire_s"]


def test_resubmissions_mostly_hit_the_pool(warm_metrics):
    assert warm_metrics["pool"]["resubmission_hit_rate"] >= 0.5


def test_fairness_under_the_storm(warm_metrics):
    """No team's mean queue wait exceeds 2x the global mean even with
    one team flooding the queue."""
    assert warm_metrics["fairness"]["max_over_global"] <= 2.0


def test_same_work_completes_in_both_modes(warm_metrics,
                                           baseline_metrics):
    for key in ("first", "resubmissions", "storm"):
        assert warm_metrics["latency_s"][key]["count"] \
            == baseline_metrics["latency_s"][key]["count"]


def test_prefetch_path_exercised(warm_metrics):
    assert warm_metrics["prefetch_claims"] > 0


def test_shared_base_layer_saves_pull_bytes(warm_metrics):
    """Teams on webgpu/rai:minimal reuse the CUDA base layer pulled for
    webgpu/rai:root (and vice versa): every worker saves bytes."""
    assert warm_metrics["pull"]["bytes_pull_saved"] > 0
