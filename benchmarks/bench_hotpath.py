"""Hot-path performance — dedup uploads, indexed probes, encode-once.

Not a paper figure: this bench records the *reproduction's own* perf
trajectory so later PRs have a baseline to regress against.  It drives
an N-students × M-resubmissions course (the paper's dominant load shape,
§V/Figure 4) at several scales, prints the headline numbers, asserts the
hot-path acceptance floors, and writes ``BENCH_hotpath.json`` at the
repository root.

Run: ``pytest benchmarks/bench_hotpath.py -s``
"""

import json
import os

from benchmarks.conftest import print_banner
from repro.workload.hotpath import DEFAULT_SCALES, grading_digest, run_hotpath

_OUT_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                         "BENCH_hotpath.json")


def test_hotpath_trajectory(benchmark):
    def run_all_scales():
        return [run_hotpath(scale) for scale in DEFAULT_SCALES]

    results = benchmark.pedantic(run_all_scales, rounds=1, iterations=1)

    print_banner("Submission hot path — dedup / planner / build cache")
    print(f"{'scale':<10}{'subs':>6}{'p50 s':>9}{'p95 s':>9}"
          f"{'resub p50':>11}{'resub p95':>11}{'bc hit%':>9}"
          f"{'resub redu':>12}{'wall s':>8}")
    for m in results:
        up = m["upload"]
        bc = m["buildcache"]
        resub = m["resubmission_latency_s"]
        hit_rate = (bc or {}).get("resubmission_hit_rate")
        print(f"{m['scale']['name']:<10}"
              f"{m['submissions_completed']:>6}"
              f"{m['latency_s']['p50']:>9.2f}"
              f"{m['latency_s']['p95']:>9.2f}"
              f"{resub['p50']:>11.2f}"
              f"{resub['p95']:>11.2f}"
              f"{hit_rate * 100 if hit_rate is not None else 0:>9.0f}"
              f"{up['resubmissions']['reduction']:>11.1f}x"
              f"{m['wall_clock_s']:>8.2f}")

    largest = results[-1]
    print(f"\nlargest scale docdb probe: "
          f"{largest['docdb']['job_id_probe']}")
    print(f"planner totals: {largest['docdb']['planner']}")
    print(f"worker fetch bytes saved: "
          f"{largest['worker_fetch']['bytes_saved']}")

    # --- acceptance floors (ISSUE 2) -------------------------------------
    # Resubmission wire bytes at the largest scale: >= 5x cheaper than a
    # full re-upload.
    assert largest["upload"]["resubmissions"]["reduction"] >= 5.0
    # The per-job dedup probe is O(1): served by the submissions.job_id
    # index and examining exactly the matching document, not the
    # collection.
    probe = largest["docdb"]["job_id_probe"]
    assert probe["path"] == "index" and probe["index"] == "job_id"
    assert probe["docs_examined"] == 1
    assert probe["docs_total"] > probe["docs_examined"]
    # The submission pipeline itself never falls back to a collection
    # scan.
    assert largest["docdb"]["planner"]["scans"] == 0

    # --- acceptance floors (ISSUE 9: incremental builds) ------------------
    # Resubmissions replay their builds from the artifact cache: p50
    # under 2 simulated seconds at the medium scale, with the cache
    # hitting on >= 80% of resubmission build commands (their build
    # inputs are identical — only an unread tuning file changed).
    medium = next(m for m in results if m["scale"]["name"] == "medium")
    assert medium["resubmission_latency_s"]["p50"] < 2.0
    assert medium["buildcache"]["resubmission_hit_rate"] >= 0.8
    # Golden digest: grading output is byte-identical with the build
    # cache on and off — replay must never change what grading records.
    digest_on = grading_digest(cache_enabled=True)
    digest_off = grading_digest(cache_enabled=False)
    print(f"\ngrading digest cache-on  {digest_on}")
    print(f"grading digest cache-off {digest_off}")
    assert digest_on == digest_off

    payload = {
        "bench": "hotpath",
        "source": "benchmarks/bench_hotpath.py",
        "scales": results,
        "grading_digest": {"cache_on": digest_on, "cache_off": digest_off},
    }
    with open(_OUT_PATH, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"\nwrote {_OUT_PATH}")
