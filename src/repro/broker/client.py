"""Producer / consumer handles over the broker.

These are the objects RAI clients and workers hold.  A :class:`Consumer`
registers itself on a channel (keeping ephemeral topics alive) and exposes
``get`` / ``ack`` / ``requeue``; a :class:`Producer` pins a topic so the
broker's garbage collector will not reap it mid-stream.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.broker.broker import MessageBroker
from repro.broker.message import Message
from repro.broker.routes import parse_route


class Producer:
    """A publishing handle that pins its topic while open."""

    def __init__(self, broker: MessageBroker, topic_name: str):
        self.broker = broker
        self.topic_name = topic_name
        self._topic = broker.topic(topic_name)
        self._topic.producer_count += 1
        self._closed = False

    def publish(self, body, headers=None) -> Message:
        if self._closed:
            raise RuntimeError("producer is closed")
        return self.broker.publish(self.topic_name, body, headers=headers)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._topic.producer_count -= 1
            self._topic._maybe_reap()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class Consumer:
    """A subscribing handle over one ``topic/channel`` route."""

    def __init__(self, broker: MessageBroker, route: str,
                 filter: Optional[Callable[[Message], bool]] = None):
        self.broker = broker
        self.route = parse_route(route)
        self._channel = broker.channel(route)
        self._channel.subscriber_count += 1
        self._filter = filter
        self._closed = False

    @property
    def channel(self):
        return self._channel

    def get(self):
        """Event that fires with the next message for this consumer.

        Usage inside a process: ``msg = yield consumer.get()``.
        """
        if self._closed:
            raise RuntimeError("consumer is closed")
        if self._filter is None:
            return self._channel.deliver()
        evt = self._channel.get(filter=lambda m: self._filter(m))
        evt.callbacks.insert(0, self._channel._on_deliver)
        return evt

    def try_get(self) -> Optional[Message]:
        """Claim an already-queued message without blocking, or None.

        The worker prefetch path: after finishing a job, a consumer drains
        ``ready_count`` messages synchronously before parking on
        :meth:`get` again.  Filtered consumers always return None (the
        filter needs the event machinery's matching path).
        """
        if self._closed:
            raise RuntimeError("consumer is closed")
        if self._filter is not None:
            return None
        return self._channel.try_deliver()

    @property
    def ready_count(self) -> int:
        """Messages this consumer could claim right now via :meth:`try_get`."""
        return self._channel.ready_count

    def cancel(self, get_event) -> None:
        """Withdraw a pending :meth:`get` safely.

        If no message has been delivered yet the event is resolved with
        ``None`` (the channel's deliver callback tolerates this); if the
        cancel raced an actual delivery, the message is handed straight
        back to the channel so it is not lost.
        """
        if not get_event.triggered:
            get_event.succeed(None)
        else:
            get_event.callbacks.append(
                lambda evt: evt.value is not None and
                self.requeue(evt.value))

    def ack(self, message: Message) -> None:
        self._channel.ack(message)

    def ack_release(self, message: Message) -> None:
        """Ack and recycle the delivery copy (see ``Channel.ack_release``).

        Only for consumers that keep no reference to the message — body,
        headers, or the envelope itself — past this call.
        """
        self._channel.ack_release(message)

    def requeue(self, message: Message) -> bool:
        return self._channel.requeue(message)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._channel.subscriber_count -= 1
            self._channel.topic._maybe_reap()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
