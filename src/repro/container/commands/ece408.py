"""The ``ece408`` guest program: the student's CNN inference binary.

Invocation (Listings 1 & 2)::

    ./ece408 /data/test10.hdf5 /data/model.hdf5 [count]

Behaviour is driven by the build-time profile ``make`` extracted from the
student sources:

- ``impl="reference" | "im2col"`` with a small dataset → the NumPy CNN
  actually runs and the **measured** accuracy is printed (the genuine
  correctness path);
- ``impl="analytic"`` or the full dataset → accuracy comes from the
  profile's ``correctness`` and runtime from the GPU roofline model (the
  DESIGN.md substitution for code we cannot execute);
- ``runtime="crash"`` → simulated segfault; ``runtime="hang"`` → burns
  container lifetime until the 1-hour cap kills it;
- declared ``mem_gb`` is charged against the 8 GB container cap;
- ``net="phone-home"`` attempts network access and is denied by the
  sandbox.

The printed ``Elapsed time: ... s`` line is the project's *internal timer*,
which the paper's ranking records (§V, Student Final Submission).
"""

from __future__ import annotations

from typing import List

from repro.container.commands import register_program
from repro.container.commands.base import GuestProgram
from repro.errors import VfsError
from repro.gpu.cnn import accuracy, generate_model_weights, infer
from repro.gpu.hdf5sim import H5SimError, read_h5s
from repro.gpu.kernels import cnn_job_time
from repro.vfs.path import join as path_join

GIB = 1024 ** 3


class Ece408(GuestProgram):
    name = "ece408"

    def run(self, ctx, args: List[str], config: dict) -> int:
        if len(args) < 2:
            ctx.write_err("Usage: ece408 <dataset.hdf5> <model.hdf5> [count]\n")
            return 64

        if ctx.gpu is None:
            ctx.charge(0.05)
            ctx.write_err("CUDA error: no CUDA-capable device is detected\n")
            return 30

        mem_gb = float(config.get("mem_gb", 2.0))
        ctx.use_memory(mem_gb * GIB)

        if config.get("net", "none") == "phone-home":
            ctx.require_network(purpose="student code attempted to "
                                        "open a socket")

        dataset_path = path_join(ctx.cwd, args[0])
        model_path = path_join(ctx.cwd, args[1])
        try:
            dataset = read_h5s(ctx.fs.read_file(dataset_path))
        except (VfsError, H5SimError) as exc:
            ctx.charge(0.05)
            ctx.write_err(f"ece408: cannot load dataset {args[0]}: {exc}\n")
            return 66
        try:
            weights = read_h5s(ctx.fs.read_file(model_path))
        except (VfsError, H5SimError) as exc:
            ctx.charge(0.05)
            ctx.write_err(f"ece408: cannot load model {args[1]}: {exc}\n")
            return 66

        count = int(dataset.get("count", [len(dataset.get("labels", []))])[0])
        if len(args) >= 3:
            try:
                count = min(count, int(args[2])) if count else int(args[2])
            except ValueError:
                ctx.write_err(f"ece408: bad count {args[2]!r}\n")
                return 64
        count = max(count, 1)

        ctx.write_out(f"Loading fashion-mnist data...done ({count} images)\n")
        ctx.write_out("Loading model...done\n")
        ctx.write_out("New Inference\n")

        runtime_mode = config.get("runtime", "ok")
        quality = float(config.get("quality", 0.0))

        if runtime_mode == "hang":
            # Burn lifetime until the container cap fires (raises
            # ContainerTimeout through ctx.charge).
            remaining = (ctx.container.limits.max_lifetime_seconds
                         - ctx.container.lifetime_used)
            ctx.charge(remaining + 1.0)
            return 124  # unreachable: charge raises first

        elapsed = cnn_job_time(ctx.gpu, count, quality)

        if runtime_mode == "crash":
            # Crash partway through the run.
            ctx.charge(elapsed * 0.3)
            ctx.write_err("Segmentation fault (core dumped)\n")
            return 139

        # The charged (possibly contention-dilated) time is what the
        # program's own internal timer observes and prints.
        elapsed = ctx.charge(elapsed)

        impl = config.get("impl", "analytic")
        images = dataset.get("images")
        if impl in ("reference", "im2col") and images is not None and \
                len(images) <= 100:
            # The genuine numerical path: run the real NumPy CNN.
            run_weights = weights if _has_network_weights(weights) else \
                generate_model_weights()
            logits = infer(images[:count], run_weights, impl=impl)
            acc = accuracy(logits, dataset["labels"][:count])
        else:
            acc = float(config.get("correctness", 1.0))

        ctx.write_out(f"Correctness: {acc:.4f} Model: ece408\n")
        ctx.write_out(f"Elapsed time: {elapsed:.6f} s\n")
        return 0


def _has_network_weights(datasets: dict) -> bool:
    return any(key.endswith(".weight") for key in datasets)


class NvidiaSmi(GuestProgram):
    """The ``nvidia-smi`` stub mounted by the CUDA volume."""

    name = "nvidia-smi"

    def run(self, ctx, args: List[str], config: dict) -> int:
        ctx.charge(0.02)
        if ctx.gpu is None:
            ctx.write_err("NVIDIA-SMI has failed: no devices were found\n")
            return 6
        gpu = ctx.gpu
        ctx.write_out(
            f"+-----------------------------------------------------+\n"
            f"| {gpu.name:<30} {gpu.mem_gb:5.0f}GiB  {gpu.sm_count:3d} SMs |\n"
            f"+-----------------------------------------------------+\n")
        return 0


register_program(Ece408())
register_program(NvidiaSmi())
