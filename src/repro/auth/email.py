"""The authorization-key mailer (§VI, Listing 3).

"We developed a tool to automate the generation and delivery of the keys
... creates an email message based on a predefined template ... then
emails the message to the students."  Mail is delivered into a recorded
:class:`Outbox` (the offline substitute for SMTP) so tests and instructors
can inspect exactly what every student received.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from string import Template
from typing import Dict, List, Optional

from repro.auth.keys import KeyStore
from repro.auth.roster import RosterEntry

#: The body of Listing 3, verbatim in structure.
AUTH_EMAIL_TEMPLATE = Template("""\
Hello $first_name $last_name,

For the Applied Parallel Programming project,
we will not be using WebGPU. The RAI submission
requires authentication tokens to be present
in your $$HOME/.rai.profile (Linux/OSX) or
%HOME%/.rai.profile (Windows) file.

The following are your tokens:

RAI_USER_NAME='$username'
RAI_ACCESS_KEY='$access_key'
RAI_SECRET_KEY='$secret_key'

The RAI client can be downloaded from the project
website; pick the build matching your operating
system and architecture.
""")


@dataclass(frozen=True)
class EmailMessage:
    to: str
    subject: str
    body: str


@dataclass
class Outbox:
    """A recording mail transport."""

    messages: List[EmailMessage] = field(default_factory=list)

    def send(self, message: EmailMessage) -> None:
        if "@" not in message.to:
            raise ValueError(f"invalid recipient address {message.to!r}")
        self.messages.append(message)

    def sent_to(self, address: str) -> List[EmailMessage]:
        return [m for m in self.messages if m.to == address]

    def __len__(self) -> int:
        return len(self.messages)


class KeyMailer:
    """Generates keys from a roster and emails them out."""

    def __init__(self, keystore: KeyStore, outbox: Optional[Outbox] = None,
                 subject: str = "ECE408 project: your RAI credentials"):
        self.keystore = keystore
        self.outbox = outbox if outbox is not None else Outbox()
        self.subject = subject

    def send_keys(self, roster: List[RosterEntry],
                  teams: Optional[Dict[str, str]] = None) -> List[EmailMessage]:
        """Issue a credential per roster entry and email it.

        ``teams`` optionally maps ``user_id → team name`` so credentials
        are linked to the competition team.
        """
        sent = []
        for entry in roster:
            team = (teams or {}).get(entry.user_id)
            cred = self.keystore.issue(entry.user_id, team=team)
            body = AUTH_EMAIL_TEMPLATE.substitute(
                first_name=entry.first_name,
                last_name=entry.last_name,
                username=cred.username,
                access_key=cred.access_key,
                secret_key=cred.secret_key,
            )
            message = EmailMessage(to=entry.email, subject=self.subject,
                                   body=body)
            self.outbox.send(message)
            sent.append(message)
        return sent
