"""The simulator core: event calendar and generator-based processes."""

from __future__ import annotations

from functools import partial
from heapq import heappop, heappush
from types import GeneratorType
from typing import Any, Generator, Optional

from repro.errors import EmptySchedule, Interrupt, SimulationError, StopSimulation
from repro.sim.events import (PENDING, PRIORITY_NORMAL, PRIORITY_URGENT,
                              AllOf, AnyOf, Event, Timeout)


class Simulator:
    """A deterministic discrete-event simulator.

    Events are totally ordered by ``(time, priority, sequence_number)``, so
    two runs with identical inputs produce identical traces — the property
    all benchmark reproducibility in this package rests on.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (simulated seconds).
    """

    __slots__ = ("_now", "_queue", "_seq", "_active_process", "timeout")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []  # heap of (time, priority, seq, event)
        #: Monotonic tiebreak sequence — a plain int, incremented inline on
        #: the scheduling hot paths (an ``itertools.count`` costs a C call
        #: per event and cannot be read back for throughput accounting).
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: ``sim.timeout(delay, value=None)`` — the most-called factory, so
        #: it is a C-level ``partial`` rather than a Python method wrapper.
        self.timeout = partial(Timeout, self)

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional["Process"]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def scheduled_events(self) -> int:
        """Total events ever scheduled — the kernel-throughput numerator."""
        return self._seq

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered event bound to this simulator."""
        return Event(self)

    def process(self, generator: Generator) -> "Process":
        """Start a new process from a generator function's generator."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = PRIORITY_NORMAL) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._seq = seq = self._seq + 1
        heappush(self._queue, (self._now + delay, priority, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        try:
            self._now, _, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no more events scheduled") from None

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure: surface it rather than losing it.
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (an event, a time, or exhaustion).

        - ``until is None``: run until no events remain.
        - ``until`` is a number: run until simulated time reaches it.
        - ``until`` is an :class:`Event`: run until it is processed and
          return its value (raising its exception if it failed).
        """
        if until is None:
            stop_event = None
            horizon = None
        elif isinstance(until, Event):
            stop_event = until
            horizon = None
            if until.processed:
                if until.ok:
                    return until.value
                raise until.value
            until.callbacks.append(_stop_simulation)
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until ({horizon}) must not be before now ({self._now})")
            stop_event = None

        # The hot loop.  ``step()`` is inlined and specialised per run mode:
        # at benchmark scale the per-event method call, the ``peek`` double
        # heap access, the EmptySchedule control-flow exception, and even a
        # per-event ``horizon is not None`` test are all measurable.  Each
        # loop pops first and reads the timestamp off the popped entry —
        # peek-then-pop touches the heap root twice per event.
        queue = self._queue
        pop = heappop
        try:
            if horizon is None:
                while True:
                    try:
                        entry = pop(queue)
                    except IndexError:
                        break
                    self._now = entry[0]
                    event = entry[3]
                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        # An unhandled failure: surface it, don't lose it.
                        raise event._value
                if stop_event is not None:
                    raise SimulationError(
                        "ran out of events before the awaited event "
                        "triggered") from None
                return None
            while queue and queue[0][0] <= horizon:
                entry = pop(queue)
                self._now = entry[0]
                event = entry[3]
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            self._now = horizon
            return None
        except StopSimulation as stop:
            event = stop.value
            if event.ok:
                return event.value
            raise event.value

    def run_process(self, generator: Generator) -> Any:
        """Convenience: start a process and run until it finishes."""
        return self.run(until=self.process(generator))


def _stop_simulation(event: Event) -> None:
    if not event._ok:
        event._defused = True
    raise StopSimulation(event)


class Process(Event):
    """A coroutine executing in simulated time.

    A process wraps a generator that yields :class:`Event` objects; the
    kernel resumes the generator with each event's value (or throws the
    event's exception into it).  The process itself is an event that
    triggers when the generator returns, carrying its return value.
    """

    __slots__ = ("_generator", "_target", "name", "_resume_cb")

    def __init__(self, sim: Simulator, generator: Generator, name: str = None):
        if not isinstance(generator, GeneratorType):
            raise TypeError(
                f"process() requires a generator, got {type(generator).__name__}")
        super().__init__(sim)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or generator.__name__
        #: The bound resume callback, created exactly once.  ``self._resume``
        #: mints a fresh bound-method object per access, which costs an
        #: allocation per yield *and* defeats ``list.remove``'s identity
        #: fast path when detaching from an abandoned target.
        self._resume_cb = self._resume
        # Bootstrap: resume once at the current time.
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume_cb)
        sim._schedule(init)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.errors.Interrupt` into the process.

        The interrupt is delivered as an urgent event so that it preempts a
        pending resume scheduled for the same simulated instant.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self is self.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.sim)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume_cb)
        self.sim._schedule(event, priority=PRIORITY_URGENT)

    # -- internals ----------------------------------------------------------

    def _resume(self, event: Event) -> None:
        # This is the kernel's innermost function — one call per process
        # wakeup — so state checks read slots directly instead of going
        # through the ``triggered``/``processed`` property descriptors,
        # and loop-invariant lookups are hoisted into locals.
        if self._value is not PENDING:
            # Process already ended (e.g. interrupt raced with completion).
            return
        sim = self.sim
        gen = self._generator
        resume_cb = self._resume_cb
        sim._active_process = self

        while True:
            # Detach from whatever we were waiting on.  In the common case
            # the fired event *is* the target (its callbacks are already
            # consumed), so an identity test replaces any list traversal;
            # only an abandoned wait (e.g. an interrupt preempting a parked
            # process) pays for a one-pass ``remove`` — which hits the
            # identity fast path on the cached bound method, no membership
            # pre-scan.
            target = self._target
            if target is not None:
                self._target = None
                if target is not event:
                    callbacks = target.callbacks
                    if callbacks is not None:
                        try:
                            callbacks.remove(resume_cb)
                        except ValueError:
                            pass

            try:
                if event._ok:
                    target = gen.send(event._value)
                else:
                    event._defused = True
                    target = gen.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                sim._schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                sim._schedule(self)
                break

            # Validate the yield by touching ``target.sim`` — for real
            # events the load is needed anyway for the cross-simulator
            # check, and a non-event raises AttributeError at zero cost to
            # the hot path (CPython 3.11 try/except is free until it fires).
            try:
                if target.sim is not sim:
                    raise SimulationError(
                        "yielded event belongs to another simulator")
            except AttributeError:
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}")
                try:
                    gen.throw(exc)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                except BaseException as err:
                    self._ok = False
                    self._value = err
                sim._schedule(self)
                break

            callbacks = target.callbacks
            if callbacks is None:
                # Already processed: loop around immediately with its outcome.
                event = target
                continue

            self._target = target
            callbacks.append(resume_cb)
            break

        sim._active_process = None

    def __repr__(self):
        state = "alive" if self.is_alive else ("ok" if self._ok else "failed")
        return f"<Process {self.name!r} {state}>"
