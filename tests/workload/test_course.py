"""Integration tests for the course driver (scaled-down classes)."""

import pytest

from repro.core.job import JobStatus
from repro.workload.course import CourseConfig, CourseSimulation

DAY = 24 * 3600.0


@pytest.fixture(scope="module")
def small_course():
    """One shared 6-team, 4-day replay (module-scoped: it's expensive)."""
    config = CourseConfig(n_students=18, n_teams=6, duration_days=4.0,
                          seed=21, final_week_instances=4)
    sim = CourseSimulation(config)
    result = sim.run()
    return sim, result


class TestCourseRun:
    def test_every_team_submits(self, small_course):
        _, result = small_course
        assert len(result.submission_times) > 50
        per_team = result.team_results
        assert set(per_team) == {t.name for t in result.teams}
        assert all(len(v) >= 1 for v in per_team.values())

    def test_every_team_has_a_final_ranking(self, small_course):
        sim, result = small_course
        assert len(result.final_results) == 6
        assert len(sim.system.ranking) == 6

    def test_final_results_succeeded(self, small_course):
        _, result = small_course
        assert all(r.status is JobStatus.SUCCEEDED
                   for r in result.final_results.values())

    def test_submissions_increase_toward_deadline(self, small_course):
        _, result = small_course
        first_half = result.submissions_in_window(0, 2)
        second_half = result.submissions_in_window(2, 4)
        assert len(second_half) > len(first_half)

    def test_ranking_correlates_with_skill(self, small_course):
        sim, _ = small_course
        board = sim.system.ranking.leaderboard()
        skill = {t.name: t.skill for t in sim.teams}
        top = board[0]["team"]
        bottom = board[-1]["team"]
        assert skill[top] > skill[bottom]

    def test_credentials_issued_via_mailer(self, small_course):
        sim, _ = small_course
        assert len(sim.outbox) == 18    # one email per student
        assert len(sim.system.keystore) == 18

    def test_storage_accounting_nonzero(self, small_course):
        _, result = small_course
        totals = result.totals()
        assert totals["uploaded_bytes"] > totals["submissions"] * 1000
        assert totals["file_server_bytes"] > 0
        assert totals["jobs_recorded"] == totals["submissions"]

    def test_cost_accrued(self, small_course):
        sim, result = small_course
        assert result.totals()["cost_usd"] > 0
        report = sim.cost_report()
        assert report.jobs_completed > 0

    def test_determinism(self):
        def once():
            config = CourseConfig(n_students=6, n_teams=2,
                                  duration_days=1.5, seed=5,
                                  final_week_instances=2)
            result = CourseSimulation(config).run()
            return (len(result.submission_times),
                    sorted(result.final_results))

        assert once() == once()
