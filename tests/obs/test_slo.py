"""Unit tests for the metrics scraper and the SLO burn-rate engine."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.scrape import MetricsScraper
from repro.obs.slo import (
    SloEngine,
    SloSpec,
    _parse_selector,
    default_slos,
)

pytestmark = [pytest.mark.obs, pytest.mark.slo]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def scraper(registry, clock):
    return MetricsScraper(registry, clock, interval=60.0, max_samples=8)


class TestScraper:
    def test_snapshot_captures_every_kind(self, registry, scraper, clock):
        registry.counter("jobs", status="ok").inc(3)
        registry.gauge("depth").set(5)
        registry.histogram("lat", buckets=(1.0, 10.0)).observe(0.5)
        clock.now = 60.0
        snap = scraper.scrape_now()
        assert snap.time == 60.0
        assert snap.counter("jobs", "status=ok") == 3
        assert snap.counter_total("jobs") == 3
        assert snap.gauge("depth") == 5
        hist = snap.histogram("lat")
        assert hist.count == 1
        assert hist.bucket_counts == (1, 0, 0)
        assert hist.bounds[:2] == (1.0, 10.0)  # trailing +inf overflow
        assert scraper.last_scrape_at == 60.0

    def test_labelled_callback_gauges_skipped(self, registry, scraper):
        registry.gauge("util", fn=lambda: 0.5, worker="w1")
        registry.gauge("plain", fn=lambda: 7)
        snap = scraper.scrape_now()
        assert snap.gauge("util", "worker=w1") is None
        assert snap.gauge("plain") == 7

    def test_ring_is_bounded(self, scraper, clock):
        for i in range(20):
            clock.now = float(i)
            scraper.scrape_now()
        assert len(scraper) == 8
        assert scraper.total_scrapes == 20
        assert scraper.samples[0].time == 12.0

    def test_baseline_falls_back_to_oldest(self, scraper, clock):
        for t in (10.0, 20.0, 30.0):
            clock.now = t
            scraper.scrape_now()
        # Proper baseline: newest snapshot at or before now - window.
        base = scraper.baseline_for(now=30.0, window=15.0)
        assert base.time == 10.0
        # Window reaches past history: oldest retained wins.
        base = scraper.baseline_for(now=30.0, window=500.0)
        assert base.time == 10.0
        assert MetricsScraper(MetricsRegistry(), clock) \
            .baseline_for(30.0, 10.0) is None

    def test_counter_delta_over_window(self, registry, scraper, clock):
        c = registry.counter("jobs")
        c.inc(5)
        clock.now = 60.0
        scraper.scrape_now()
        c.inc(3)
        clock.now = 120.0
        scraper.scrape_now()
        assert scraper.counter_delta("jobs", now=120.0, window=60.0) == 3.0
        # A window past history uses the oldest snapshot (5 at t=60).
        assert scraper.counter_delta("jobs", now=120.0, window=600.0) == 3.0
        assert scraper.counter_delta("nope", now=120.0, window=60.0) == 0.0

    def test_histogram_delta_isolates_window(self, registry, scraper,
                                             clock):
        h = registry.histogram("lat", buckets=(1.0, 10.0))
        h.observe(0.5)
        clock.now = 60.0
        scraper.scrape_now()
        h.observe(5.0)
        h.observe(5.0)
        clock.now = 120.0
        scraper.scrape_now()
        delta = scraper.histogram_delta("lat", now=120.0, window=60.0)
        assert delta.count == 2
        assert delta.bucket_counts == (0, 2, 0)
        assert delta.sum == pytest.approx(10.0)
        assert scraper.histogram_delta("nope", 120.0, 60.0) is None

    def test_gauge_samples(self, registry, scraper, clock):
        g = registry.gauge("depth")
        for t, v in ((10.0, 1), (20.0, 2), (30.0, 3)):
            clock.now = t
            g.set(v)
            scraper.scrape_now()
        assert scraper.gauge_samples("depth", now=30.0, window=15.0) == \
            [(20.0, 2), (30.0, 3)]

    def test_process_scrapes_on_the_sim_clock(self, registry):
        from repro.sim import Simulator

        sim = Simulator()
        scraper = MetricsScraper(registry, lambda: sim.now, interval=30.0)
        seen = []
        sim.process(scraper.process(sim, on_scrape=lambda s: seen.append(s)))
        sim.run(until=100.0)
        assert [s.time for s in seen] == [30.0, 60.0, 90.0]
        scraper.stop()
        sim.run(until=200.0)
        assert scraper.total_scrapes == 3

    def test_constructor_validation(self, registry, clock):
        with pytest.raises(ValueError):
            MetricsScraper(registry, clock, interval=0)
        with pytest.raises(ValueError):
            MetricsScraper(registry, clock, max_samples=1)

    def test_stats(self, scraper, clock):
        clock.now = 10.0
        scraper.scrape_now()
        clock.now = 40.0
        scraper.scrape_now()
        stats = scraper.stats()
        assert stats["samples"] == 2
        assert stats["span"] == pytest.approx(30.0)
        assert stats["last_scrape_at"] == 40.0


class TestSloSpec:
    def test_budget(self):
        spec = SloSpec(name="s", kind="latency", target=0.95,
                       metric="lat", threshold=30.0)
        assert spec.budget == pytest.approx(0.05)

    @pytest.mark.parametrize("kwargs", [
        dict(kind="nope", target=0.9, metric="m", threshold=1.0),
        dict(kind="latency", target=0.0, metric="m", threshold=1.0),
        dict(kind="latency", target=1.0, metric="m", threshold=1.0),
        dict(kind="latency", target=0.9),               # missing metric
        dict(kind="gauge", target=0.9, metric="m"),     # missing threshold
        dict(kind="gauge", target=0.9, metric="m", threshold=1.0,
             op="!="),
        dict(kind="ratio", target=0.9, good=("g",)),    # missing bad
    ])
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            SloSpec(name="bad", **kwargs)

    def test_parse_selector(self):
        assert _parse_selector("jobs") == ("jobs", None)
        assert _parse_selector("jobs{status=ok}") == ("jobs", "status=ok")
        assert _parse_selector("jobs{}") == ("jobs", "")


class TestSloEngine:
    def _engine(self, scraper, spec, **kwargs):
        kwargs.setdefault("fast_window", 60.0)
        kwargs.setdefault("slow_window", 300.0)
        return SloEngine(scraper, specs=[spec], **kwargs)

    def test_constructor_validation(self, scraper):
        with pytest.raises(ValueError):
            SloEngine(scraper, fast_window=300.0, slow_window=60.0)
        with pytest.raises(ValueError):
            SloEngine(scraper, burn_rate_threshold=0)

    def test_add_spec_rejects_duplicates(self, scraper):
        engine = SloEngine(scraper)
        spec = SloSpec(name="s", kind="latency", target=0.9,
                       metric="lat", threshold=1.0)
        engine.add_spec(spec)
        with pytest.raises(ValueError):
            engine.add_spec(SloSpec(name="s", kind="gauge", target=0.9,
                                    metric="g", threshold=1.0))
        assert engine.spec("s") is spec
        assert engine.spec("missing") is None

    def test_no_data_state(self, scraper, clock):
        spec = SloSpec(name="lat", kind="latency", target=0.9,
                       metric="lat", threshold=10.0)
        engine = self._engine(scraper, spec)
        (status,) = engine.evaluate()
        assert status.state == "no-data"
        assert not status.burning
        assert status.fast.burn_rate == 0.0

    def test_latency_burn_math(self, registry, scraper, clock):
        h = registry.histogram("lat", buckets=(10.0, 30.0, 60.0))
        spec = SloSpec(name="lat", kind="latency", target=0.9,
                       metric="lat", threshold=30.0)
        engine = self._engine(scraper, spec)
        clock.now = 10.0
        scraper.scrape_now()
        # 8 good (<= 30s), 2 bad (> 30s): bad fraction 0.2, budget 0.1.
        for _ in range(8):
            h.observe(5.0)
        h.observe(45.0)
        h.observe(45.0)
        clock.now = 70.0
        (status,) = engine.evaluate()
        assert status.fast.good == 8
        assert status.fast.bad == 2
        assert status.fast.bad_fraction == pytest.approx(0.2)
        assert status.fast.burn_rate == pytest.approx(2.0)
        assert status.slow.burn_rate == pytest.approx(2.0)
        assert status.burning
        assert status.state == "burning"

    def test_threshold_inside_bucket_counts_bad(self, registry, scraper,
                                                clock):
        # Bounds 10/30: threshold 20 falls inside the (10, 30] bucket, so
        # a 15s observation cannot be proven good — conservative bad.
        h = registry.histogram("lat", buckets=(10.0, 30.0))
        spec = SloSpec(name="lat", kind="latency", target=0.5,
                       metric="lat", threshold=20.0)
        engine = self._engine(scraper, spec)
        scraper.scrape_now()  # empty baseline at t=0
        h.observe(15.0)
        clock.now = 10.0
        (status,) = engine.evaluate()
        assert status.fast.good == 0
        assert status.fast.bad == 1

    def test_burning_needs_both_windows(self, registry, scraper, clock):
        h = registry.histogram("lat", buckets=(10.0, 60.0))
        spec = SloSpec(name="lat", kind="latency", target=0.5,
                       metric="lat", threshold=10.0)
        engine = self._engine(scraper, spec)
        scraper.scrape_now()  # empty baseline at t=0
        # Slow history is clean: 20 good observations, long ago.
        for _ in range(20):
            h.observe(1.0)
        clock.now = 10.0
        scraper.scrape_now()
        clock.now = 200.0
        scraper.scrape_now()
        # Fast window then goes fully bad...
        h.observe(50.0)
        h.observe(50.0)
        clock.now = 230.0
        (status,) = engine.evaluate()
        # ...fast burns (2 bad / 2 total) but slow holds (2 bad / 22).
        assert status.fast.burn_rate >= 1.0
        assert status.slow.burn_rate < 1.0
        assert not status.burning
        assert status.state == "ok"

    def test_ratio_kind_with_selectors(self, registry, scraper, clock):
        ok = registry.counter("jobs_finished", status="succeeded")
        failed = registry.counter("jobs_finished", status="failed")
        dead = registry.counter("dead_letters_drained")
        spec = SloSpec(
            name="success", kind="ratio", target=0.9,
            good=("jobs_finished{status=succeeded}",),
            bad=("jobs_finished{status=failed}", "dead_letters_drained"))
        engine = self._engine(scraper, spec)
        scraper.scrape_now()  # empty baseline at t=0
        ok.inc(6)
        failed.inc(1)
        dead.inc(1)
        clock.now = 30.0
        (status,) = engine.evaluate()
        assert status.fast.good == 6
        assert status.fast.bad == 2
        assert status.fast.bad_fraction == pytest.approx(0.25)
        assert status.burning  # 0.25 / 0.1 = 2.5x

    def test_bare_selector_sums_all_labels(self, registry, scraper, clock):
        scraper.scrape_now()  # empty baseline at t=0
        registry.counter("good_things", kind="a").inc(2)
        registry.counter("good_things", kind="b").inc(3)
        registry.counter("bad_things").inc(5)
        spec = SloSpec(name="r", kind="ratio", target=0.5,
                       good=("good_things",), bad=("bad_things",))
        engine = self._engine(scraper, spec)
        clock.now = 30.0
        (status,) = engine.evaluate()
        assert status.fast.good == 5
        assert status.fast.bad == 5

    def test_gauge_kind_fraction_of_samples(self, registry, scraper,
                                            clock):
        g = registry.gauge("workers_running")
        spec = SloSpec(name="avail", kind="gauge", target=0.75,
                       metric="workers_running", threshold=2, op=">=")
        engine = self._engine(scraper, spec)
        for t, v in ((10.0, 2), (20.0, 2), (30.0, 1), (40.0, 1)):
            clock.now = t
            g.set(v)
            scraper.scrape_now()
        (status,) = engine.evaluate(now=40.0, scrape=False)
        assert status.fast.good == 2
        assert status.fast.bad == 2
        # bad fraction 0.5 over budget 0.25 → 2x burn on both windows.
        assert status.burning

    def test_exemplars_surface_only_when_burning(self, registry, scraper,
                                                 clock):
        h = registry.histogram("lat", buckets=(10.0, 30.0, 60.0))
        spec = SloSpec(name="lat", kind="latency", target=0.9,
                       metric="lat", threshold=30.0)
        engine = self._engine(scraper, spec, max_exemplars=2)
        clock.now = 5.0
        scraper.scrape_now()
        h.observe(5.0, trace_id="tr-good", at=6.0)
        clock.now = 50.0
        (ok_status,) = engine.evaluate()
        assert ok_status.state == "ok"
        assert ok_status.exemplars == []
        # Three slow jobs blow the threshold.  Each bucket keeps its
        # latest exemplar, so the two at 45s collapse to tr-slow-1 and
        # the 100s one survives in the overflow bucket.
        h.observe(45.0, trace_id="tr-slow-0", at=51.0)
        h.observe(45.0, trace_id="tr-slow-1", at=52.0)
        h.observe(100.0, trace_id="tr-slow-2", at=53.0)
        clock.now = 60.0
        (burn_status,) = engine.evaluate()
        assert burn_status.burning
        ids = [e.trace_id for e in burn_status.exemplars]
        assert ids == ["tr-slow-2", "tr-slow-1"]
        assert burn_status.to_dict()["exemplars"][0]["trace_id"] == \
            "tr-slow-2"

    def test_status_by_name(self, registry, scraper, clock):
        spec = SloSpec(name="lat", kind="latency", target=0.9,
                       metric="lat", threshold=10.0)
        engine = self._engine(scraper, spec)
        assert engine.status("lat").spec is spec
        assert engine.status("missing") is None


class TestDefaultSlos:
    def test_stock_objectives(self):
        specs = default_slos()
        names = [s.name for s in specs]
        assert names == ["queue-wait-p95", "submission-success"]
        by_name = {s.name: s for s in specs}
        queue = by_name["queue-wait-p95"]
        assert queue.kind == "latency"
        assert queue.metric == "sched_queue_wait_seconds"
        assert queue.threshold == 30.0
        success = by_name["submission-success"]
        assert success.kind == "ratio"
        assert success.target == pytest.approx(0.99)

    def test_threshold_aligns_with_default_buckets(self):
        # The stock queue-wait threshold must sit ON a default histogram
        # bucket bound, or the conservative split would miscount.
        from repro.obs.metrics import DEFAULT_BUCKETS

        (queue, _) = default_slos()
        assert queue.threshold in DEFAULT_BUCKETS
