"""GPU devices, kernel performance models, and the ECE408 CNN workload.

The course project (paper §I, §VI) was "a high-performance CUDA
implementation of a convolutional neural network inference step", graded
against a provided serial CPU baseline that "took around 30 minutes to
complete using the full dataset".  Since no CUDA hardware is available
offline, this subpackage supplies the substitution described in DESIGN.md:

- a **real** NumPy CNN forward pass (:mod:`repro.gpu.cnn`) in two forms —
  a deliberately naive serial reference and a vectorised im2col
  implementation — so correctness/accuracy checking is genuine;
- an **analytic device model** (:mod:`repro.gpu.device`) for the NVIDIA
  K40 (AWS G2) and K80 (AWS P2) GPUs the course used, with a roofline
  kernel-time estimate (:mod:`repro.gpu.kernels`) that converts the CNN's
  FLOP/byte counts plus a student "optimisation quality" into simulated
  runtime;
- an **HDF5-like container** (:mod:`repro.gpu.hdf5sim`) for the model
  weights and test datasets (``model.hdf5``, ``test10.hdf5``,
  ``testfull.hdf5``).
"""

from repro.gpu.device import GPUDevice, CPUDevice, DEVICE_CATALOG, get_device
from repro.gpu.kernels import KernelProfile, estimate_kernel_time, cnn_job_time
from repro.gpu.cnn import (
    Network,
    build_ece408_network,
    generate_model_weights,
    generate_dataset,
    infer,
    accuracy,
)
from repro.gpu.hdf5sim import write_h5s, read_h5s, list_datasets

__all__ = [
    "GPUDevice",
    "CPUDevice",
    "DEVICE_CATALOG",
    "get_device",
    "KernelProfile",
    "estimate_kernel_time",
    "cnn_job_time",
    "Network",
    "build_ece408_network",
    "generate_model_weights",
    "generate_dataset",
    "infer",
    "accuracy",
    "write_h5s",
    "read_h5s",
    "list_datasets",
]
