"""Golden scatter/gather tests: sharded results == unsharded results.

Every read/write below runs twice — once against a plain
:class:`Collection`, once against a :class:`ShardedCollection` holding
the same documents — and the results must agree.  Order agreement is
exact wherever the facade promises it (single-shard reads, sorted reads
on a unique key) and multiset-level where shard concatenation order is
documented to differ (unsorted scatters, cross-shard sort ties).
"""

import pytest

from repro.docdb.database import DocumentDB
from repro.errors import DocDbError
from repro.shard import ShardMap

pytestmark = pytest.mark.shard

N_PARTS = 4
TEAMS = [f"team{i:02d}" for i in range(8)]


def _docs():
    # Unique score per doc (exact-order sort tests), small quality
    # values with heavy ties (tie-handling tests), explicit _ids so the
    # two collections agree on identity (per-shard oid counters would
    # otherwise collide across shards).
    out = []
    for i in range(40):
        out.append({"_id": f"sub-{i:03d}", "team": TEAMS[i % len(TEAMS)],
                    "username": f"user{i % 5}", "score": i,
                    "quality": i % 4})
    return out


@pytest.fixture
def pair():
    db = DocumentDB()
    sharded = db.shard_collection("subs", ShardMap(N_PARTS))
    plain = db.collection("golden")
    for doc in _docs():
        sharded.insert_one(dict(doc))
        plain.insert_one(dict(doc))
    return sharded, plain


def _multiset(docs):
    return sorted(docs, key=lambda d: d["_id"])


class TestRoutingLayer:
    def test_documents_land_on_their_key_partition(self, pair):
        sharded, _ = pair
        for doc in _docs():
            shard = sharded.shards[sharded.partition_of(doc)]
            assert shard.find_one({"_id": doc["_id"]}) is not None
        assert sum(sharded.placement().values()) == len(sharded) == 40

    def test_shard_key_filter_takes_single_shard_path(self, pair):
        sharded, _ = pair
        team = TEAMS[0]
        plan = sharded.explain({"team": team})
        assert plan["sharded"] is True
        assert plan["shard"] == sharded.shard_map.partition(team)
        assert "shards" not in plan

    def test_username_only_filter_scatters(self, pair):
        # A team-routed document can match a username filter, so the
        # username alone can never pin a partition.
        sharded, _ = pair
        plan = sharded.explain({"username": "user1"})
        assert plan["path"] == "scatter"
        assert len(plan["shards"]) == N_PARTS

    def test_falsy_team_defers_to_username(self, pair):
        sharded, _ = pair
        plan = sharded.explain({"team": "", "username": "user2"})
        assert plan["sharded"] is True
        assert plan["shard"] == sharded.shard_map.partition("user2")

    def test_operator_valued_key_field_scatters(self, pair):
        sharded, _ = pair
        plan = sharded.explain({"team": {"$in": TEAMS[:2]}})
        assert plan["path"] == "scatter"


class TestGoldenReads:
    def test_single_shard_read_is_order_exact(self, pair):
        sharded, plain = pair
        team = TEAMS[2]
        assert sharded.find({"team": team}).to_list() == \
               plain.find({"team": team}).to_list()

    def test_unsorted_scatter_matches_as_multiset(self, pair):
        sharded, plain = pair
        got = sharded.find({"quality": 2}).to_list()
        want = plain.find({"quality": 2}).to_list()
        assert _multiset(got) == _multiset(want)

    def test_sorted_read_on_unique_key_is_order_exact(self, pair):
        sharded, plain = pair
        for spec in ([("score", -1)], [("score", 1)]):
            got = sharded.find({}).sort(spec).to_list()
            want = plain.find({}).sort(spec).to_list()
            assert got == want

    def test_sort_skip_limit_pushdown_is_order_exact(self, pair):
        sharded, plain = pair
        got = sharded.find({}).sort([("score", -1)]).skip(5).limit(7)
        want = plain.find({}).sort([("score", -1)]).skip(5).limit(7)
        assert got.to_list() == want.to_list()

    def test_sort_with_ties_agrees_on_keys_and_membership(self, pair):
        # Cross-shard ties may interleave differently than insertion
        # order; the sorted key sequence and the membership must agree.
        sharded, plain = pair
        got = sharded.find({}).sort([("quality", 1)]).to_list()
        want = plain.find({}).sort([("quality", 1)]).to_list()
        assert [d["quality"] for d in got] == [d["quality"] for d in want]
        assert _multiset(got) == _multiset(want)

    def test_projection_applies_after_the_merge(self, pair):
        sharded, plain = pair
        got = sharded.find({"quality": 1},
                           projection={"score": 1}).to_list()
        want = plain.find({"quality": 1},
                          projection={"score": 1}).to_list()
        assert _multiset(got) == _multiset(want)
        assert all(set(d) <= {"_id", "score"} for d in got)

    def test_find_one_and_count_and_distinct(self, pair):
        sharded, plain = pair
        team = TEAMS[5]
        assert sharded.find_one({"team": team})["team"] == team
        assert sharded.count_documents({"quality": 3}) == \
               plain.count_documents({"quality": 3})
        assert sharded.count_documents({}) == 40
        assert sorted(sharded.distinct("team")) == \
               sorted(plain.distinct("team"))

    def test_aggregate_matches_unsharded(self, pair):
        sharded, plain = pair
        pipeline = [{"$match": {"quality": {"$gte": 1}}},
                    {"$group": {"_id": "$team",
                                "total": {"$sum": "$score"}}}]
        got = sorted(sharded.aggregate(pipeline), key=lambda d: d["_id"])
        want = sorted(plain.aggregate(pipeline), key=lambda d: d["_id"])
        assert got == want


class TestIndexesAcrossShards:
    def test_indexed_range_query_agrees_both_sides(self, pair):
        sharded, plain = pair
        sharded.create_index("score", ordered=True)
        plain.create_index("score", ordered=True)
        filt = {"score": {"$gte": 10, "$lt": 30}}
        got = sharded.find(filt).to_list()
        want = plain.find(filt).to_list()
        assert _multiset(got) == _multiset(want)
        # Each physical shard planned through its own range index.
        plan = sharded.explain(filt)
        assert plan["path"] == "scatter"
        for shard_plan in plan["shards"]:
            assert shard_plan["index_kind"] == "range"

    def test_equality_index_on_single_shard_path(self, pair):
        sharded, plain = pair
        sharded.create_index("team")
        team = TEAMS[1]
        plan = sharded.explain({"team": team})
        assert plan["path"] == "index"
        assert plan["sharded"] is True
        assert sharded.find({"team": team}).count() == \
               plain.find({"team": team}).count()

    def test_planner_stats_sum_over_shards(self, pair):
        sharded, _ = pair
        sharded.create_index("team")
        before = sharded.planner_stats["index_hits"]
        sharded.find({"team": TEAMS[3]}).to_list()
        assert sharded.planner_stats["index_hits"] == before + 1


class TestGoldenWrites:
    def test_routed_and_scatter_updates_converge(self, pair):
        sharded, plain = pair
        for coll in (sharded, plain):
            assert coll.update_one({"team": TEAMS[0], "score": 0},
                                   {"$set": {"graded": True}}) == 1
            assert coll.update_one({"score": 17},
                                   {"$set": {"graded": True}}) == 1
            coll.update_many({"quality": 0}, {"$inc": {"score": 100}})
        assert _multiset(sharded.find({}).to_list()) == \
               _multiset(plain.find({}).to_list())

    def test_deletes_converge(self, pair):
        sharded, plain = pair
        assert sharded.delete_many({"quality": 1}) == \
               plain.delete_many({"quality": 1})
        assert sharded.delete_one({"team": TEAMS[4]}) == 1
        plain.delete_one({"team": TEAMS[4]})
        assert len(sharded) == len(plain)

    def test_upsert_without_shard_key_is_rejected(self, pair):
        sharded, _ = pair
        with pytest.raises(DocDbError):
            sharded.update_one({"score": 999}, {"$set": {"score": 999}},
                               upsert=True)
        # With the key pinned, the upsert lands on the right shard.
        assert sharded.update_one(
            {"team": "newteam", "score": 999},
            {"$set": {"score": 999}}, upsert=True) in (0, 1)
        doc = {"team": "newteam"}
        assert sharded.shards[sharded.partition_of(doc)].find_one(
            {"team": "newteam"}) is not None


class TestRegistration:
    def test_db_collection_returns_the_facade(self, pair):
        sharded, _ = pair
        assert sharded.db.collection("subs") is sharded

    def test_cannot_shard_populated_collection(self):
        db = DocumentDB()
        db.collection("busy").insert_one({"team": "t"})
        with pytest.raises(DocDbError):
            db.shard_collection("busy", ShardMap(2))

    def test_drop_removes_facade_and_physical_shards(self, pair):
        sharded, _ = pair
        db = sharded.db
        physical = [shard.name for shard in sharded.shards]
        db.drop_collection("subs")
        assert all(name not in db.collection_names() for name in physical)
        # The name is a plain collection again.
        assert db.collection("subs").__class__.__name__ == "Collection"
