"""Exception hierarchy shared across the repro package.

Every subsystem raises subclasses of :class:`ReproError` so that callers can
catch failures at whatever granularity they need.  The leaf classes mirror
the failure modes called out in the paper: bad credentials, whitelist
violations, resource-limit enforcement, rate limiting, and missing
final-submission artifacts.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


# --------------------------------------------------------------------------
# Simulation kernel
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event-kernel errors."""


class StopSimulation(Exception):  # noqa: N818 - control-flow signal, not error
    """Internal signal used to halt :meth:`Simulator.run` early."""

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class EmptySchedule(SimulationError):
    """The simulator ran out of events before the requested horizon."""


class Interrupt(Exception):  # noqa: N818 - mirrors simpy naming
    """Thrown into a process that another process interrupted."""

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


# --------------------------------------------------------------------------
# Virtual filesystem
# --------------------------------------------------------------------------


class VfsError(ReproError):
    """Base class for virtual-filesystem errors."""


class FileNotFound(VfsError):
    pass


class NotADirectory(VfsError):
    pass


class IsADirectory(VfsError):
    pass


class FileExists(VfsError):
    pass


class ReadOnlyFilesystem(VfsError):
    pass


# --------------------------------------------------------------------------
# Message broker
# --------------------------------------------------------------------------


class BrokerError(ReproError):
    pass


class UnknownTopic(BrokerError):
    pass


class UnknownChannel(BrokerError):
    pass


class MessageTooLarge(BrokerError):
    pass


class TooManyAttempts(BrokerError):
    """A message exceeded its redelivery budget and was dead-lettered."""


# --------------------------------------------------------------------------
# Object store
# --------------------------------------------------------------------------


class StorageError(ReproError):
    pass


class NoSuchBucket(StorageError):
    pass


class NoSuchKey(StorageError):
    pass


class BucketAlreadyExists(StorageError):
    pass


class UploadNotFound(StorageError):
    pass


class PreconditionFailed(StorageError):
    pass


class ExpiredToken(StorageError):
    """A presigned URL was used after its expiry time."""


class TransientStorageError(StorageError):
    """A retryable storage failure (flaky link, 5xx, injected chaos).

    Unlike :class:`NoSuchKey` and friends — which are permanent and must
    not be retried — callers are expected to retry these under a
    :class:`~repro.faults.RetryPolicy`.
    """


# --------------------------------------------------------------------------
# Document database
# --------------------------------------------------------------------------


class DocDbError(ReproError):
    pass


class DuplicateKeyError(DocDbError):
    pass


class InvalidQuery(DocDbError):
    pass


class InvalidUpdate(DocDbError):
    pass


# --------------------------------------------------------------------------
# Container runtime
# --------------------------------------------------------------------------


class ContainerError(ReproError):
    pass


class ImageNotFound(ContainerError):
    pass


class ImageNotWhitelisted(ContainerError):
    """The requested base image is not on the course whitelist (§V)."""


class ContainerStateError(ContainerError):
    """An operation was attempted in an invalid container state."""


class MemoryLimitExceeded(ContainerError):
    """The container exceeded its RAM cap (default 8 GB, §V)."""


class ContainerTimeout(ContainerError):
    """The container exceeded its maximum lifetime (default 1 hour, §V)."""


class NetworkDisabled(ContainerError):
    """A guest command attempted network access inside the sandbox."""


class CommandNotFound(ContainerError):
    pass


class GuestCommandError(ContainerError):
    """A guest command exited non-zero and the shell aborted the step list."""

    def __init__(self, command: str, exit_code: int, stderr: str = ""):
        super().__init__(f"{command!r} exited with status {exit_code}")
        self.command = command
        self.exit_code = exit_code
        self.stderr = stderr


# --------------------------------------------------------------------------
# Auth
# --------------------------------------------------------------------------


class AuthError(ReproError):
    pass


class InvalidCredentials(AuthError):
    """RAI_ACCESS_KEY / RAI_SECRET_KEY pair failed verification (§V step 2)."""


class SignatureMismatch(AuthError):
    pass


class ProfileError(AuthError):
    """A ``.rai.profile`` file is missing or malformed."""


# --------------------------------------------------------------------------
# Build specification
# --------------------------------------------------------------------------


class BuildSpecError(ReproError):
    pass


class SpecParseError(BuildSpecError):
    pass


class SpecValidationError(BuildSpecError):
    pass


class UnsupportedSpecVersion(BuildSpecError):
    pass


# --------------------------------------------------------------------------
# Core submission system
# --------------------------------------------------------------------------


class RaiError(ReproError):
    pass


class RateLimited(RaiError):
    """A team submitted again within the 30-second window (§V)."""

    def __init__(self, retry_after: float):
        super().__init__(f"rate limited; retry after {retry_after:.1f}s")
        self.retry_after = retry_after


class SubmissionRejected(RaiError):
    """A final submission was missing required files (USAGE, report.pdf)."""


class JobFailed(RaiError):
    pass


class JobDeadlineExceeded(RaiError):
    """A job overran its wall-clock deadline (the paper's 1-hour cap
    applied to the whole job, not just charged container time)."""


# --------------------------------------------------------------------------
# Durability
# --------------------------------------------------------------------------


class DurabilityError(ReproError):
    """Base class for write-ahead-log / snapshot / recovery failures."""


class SimulatedCrash(DurabilityError):
    """Raised by a :class:`~repro.faults.CrashPoint` to model the process
    dying mid-write: the WAL record on disk is torn exactly where the
    crash point cut it, and recovery must cope."""


# --------------------------------------------------------------------------
# Cluster / provisioning
# --------------------------------------------------------------------------


class ClusterError(ReproError):
    pass


class NoCapacity(ClusterError):
    pass


# --------------------------------------------------------------------------
# Grading / release
# --------------------------------------------------------------------------


class GradingError(ReproError):
    pass


class ReleaseError(ReproError):
    pass
