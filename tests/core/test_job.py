"""Unit tests for the job model and result parsing."""

import pytest

from repro.core.job import Job, JobKind, JobResult, JobStatus, new_job_id


class TestJobIds:
    def test_sequential_unique(self):
        a, b = new_job_id(), new_job_id()
        assert a != b
        assert a.startswith("job-")


class TestJobMessage:
    def test_roundtrip(self):
        job = Job(id="job-1", kind=JobKind.SUBMIT, username="u",
                  team="t", upload_bucket="b", upload_key="k",
                  spec_yaml="rai: {}", access_key="ak", signature="sig",
                  submitted_at=12.5)
        back = Job.from_message(job.to_message())
        assert back.id == "job-1"
        assert back.kind is JobKind.SUBMIT
        assert back.team == "t"
        assert back.status is JobStatus.QUEUED

    def test_message_is_json_safe(self):
        import json

        job = Job(id="j", kind=JobKind.RUN, username="u", team=None,
                  upload_bucket="b", upload_key="k", spec_yaml="",
                  access_key="a", signature="s", submitted_at=0.0)
        json.dumps(job.to_message())


class TestJobStatus:
    def test_terminal_states(self):
        assert JobStatus.SUCCEEDED.is_terminal
        assert JobStatus.FAILED.is_terminal
        assert JobStatus.REJECTED.is_terminal
        assert not JobStatus.RUNNING.is_terminal
        assert not JobStatus.QUEUED.is_terminal


class TestJobResultParsing:
    def make(self, stdout="", stderr=""):
        result = JobResult(job_id="j")
        if stdout:
            result.log.append((0.0, "stdout", stdout))
        if stderr:
            result.log.append((0.0, "stderr", stderr))
        return result

    def test_internal_time_parsed(self):
        result = self.make(stdout="Elapsed time: 0.412300 s\n")
        assert result.internal_time == pytest.approx(0.4123)

    def test_last_elapsed_wins(self):
        result = self.make(stdout="Elapsed time: 1.0 s\n"
                                  "Elapsed time: 2.0 s\n")
        assert result.internal_time == 2.0

    def test_correctness_parsed(self):
        result = self.make(stdout="Correctness: 0.8123 Model: ece408\n")
        assert result.correctness == pytest.approx(0.8123)

    def test_time_command_output_parsed(self):
        result = self.make(stderr="12.34real 1.20user 0.30sys\n")
        parsed = result.time_command_output
        assert parsed == {"real": 12.34, "user": 1.2, "sys": 0.3}

    def test_missing_metrics_are_none(self):
        result = self.make(stdout="nothing to see")
        assert result.internal_time is None
        assert result.correctness is None
        assert result.time_command_output is None

    def test_stream_separation(self):
        result = self.make(stdout="out", stderr="err")
        assert result.stdout_text() == "out"
        assert result.stderr_text() == "err"

    def test_waits(self):
        result = JobResult(job_id="j", queued_at=10.0, started_at=15.0,
                           finished_at=30.0)
        assert result.queue_wait == 5.0
        assert result.turnaround == 20.0

    def test_waits_none_when_incomplete(self):
        assert JobResult(job_id="j").queue_wait is None
