"""Import-integrity smoke test.

A regression guard against half-present packages (the bug this catches:
``repro.buildspec`` was referenced throughout the tree but missing from
the repository, so half the suite failed at collection).  Every module
under ``repro`` must import cleanly, every lazy top-level export must
resolve, and every source file must at least compile.
"""

import compileall
import importlib
import pathlib
import pkgutil

import repro


def _iter_module_names():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


class TestImportIntegrity:
    def test_every_module_imports(self):
        failures = []
        for name in _iter_module_names():
            try:
                importlib.import_module(name)
            except Exception as exc:   # noqa: BLE001 - report them all
                failures.append(f"{name}: {type(exc).__name__}: {exc}")
        assert not failures, "\n".join(failures)

    def test_walk_found_the_expected_subsystems(self):
        names = set(_iter_module_names())
        for expected in ("repro.buildspec.parser", "repro.faults.injector",
                         "repro.core.worker", "repro.broker.broker",
                         "repro.storage.object_store"):
            assert expected in names

    def test_all_lazy_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
        assert set(repro._LAZY_EXPORTS) <= set(repro.__all__)

    def test_sources_compile(self):
        src = pathlib.Path(repro.__file__).parent
        assert compileall.compile_dir(str(src), quiet=2, force=False)
