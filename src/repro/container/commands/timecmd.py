"""``/usr/bin/time``: wraps a command and reports wall/user/sys to stderr.

Listing 2 runs the graded submission under ``/usr/bin/time``; the paper
records its output for instructors only while students see the program's
internal timer (§V, Student Final Submission).
"""

from __future__ import annotations

from typing import List

from repro.container.commands import register_command
from repro.container.commands.base import GuestCommand


class TimeCommand(GuestCommand):
    name = "time"

    def run(self, ctx, args: List[str]) -> int:
        # Skip GNU time's own flags (-v, -p, -o file is unsupported).
        inner = list(args)
        while inner and inner[0].startswith("-"):
            inner.pop(0)
        if not inner:
            ctx.write_err("time: missing command\n")
            return 125
        before = ctx.container._context.charged_seconds
        shell = ctx.container._shell
        exit_code = shell._dispatch(ctx, inner[0], inner[1:])
        wall = ctx.container._context.charged_seconds - before
        # A CUDA job's host process spends most wall time blocked on the
        # device; model user time as a small fraction plus overheads.
        user = wall * 0.12
        sys_time = wall * 0.03
        ctx.write_err(f"{wall:.2f}real {user:.2f}user {sys_time:.2f}sys\n")
        return exit_code


register_command(TimeCommand())
