"""Unit tests for tar.bz2 archiving."""

import io
import tarfile

import pytest

from repro.errors import VfsError
from repro.vfs import (
    VirtualFileSystem,
    archive_member_names,
    pack_tree,
    unpack_tree,
)


@pytest.fixture
def project_fs():
    fs = VirtualFileSystem()
    fs.import_mapping({
        "main.cu": "__global__ void k(){}",
        "data/weights.bin": bytes(range(256)),
        "empty/": "",
        "USAGE": "how to run",
    }, "/")
    return fs


class TestRoundTrip:
    def test_full_roundtrip(self, project_fs):
        blob = pack_tree(project_fs, "/")
        out = VirtualFileSystem()
        unpack_tree(blob, out, "/restored")
        assert out.read_text("/restored/main.cu") == "__global__ void k(){}"
        assert out.read_file("/restored/data/weights.bin") == bytes(range(256))
        assert out.isdir("/restored/empty")

    def test_subtree_pack(self, project_fs):
        blob = pack_tree(project_fs, "/data")
        out = VirtualFileSystem()
        unpack_tree(blob, out, "/")
        assert out.read_file("/weights.bin") == bytes(range(256))
        assert not out.exists("/main.cu")

    def test_executable_bit_survives(self):
        fs = VirtualFileSystem()
        fs.write_file("/bin/tool", b"#!x", executable=True)
        out = VirtualFileSystem()
        unpack_tree(pack_tree(fs, "/"), out, "/")
        assert out.stat("/bin/tool")["executable"]

    def test_archive_is_real_tarball(self, project_fs):
        """External tooling must be able to read what we produce."""
        blob = pack_tree(project_fs, "/")
        with tarfile.open(fileobj=io.BytesIO(blob), mode="r:bz2") as tar:
            names = tar.getnames()
        assert "main.cu" in names
        assert "data/weights.bin" in names

    def test_uncompressed_mode(self, project_fs):
        blob = pack_tree(project_fs, "/", compression="none")
        out = VirtualFileSystem()
        unpack_tree(blob, out, "/", compression="none")
        assert out.read_text("/USAGE") == "how to run"


class TestSafety:
    def test_traversal_members_are_contained(self):
        """A malicious ../../ member must stay under the destination."""
        buf = io.BytesIO()
        with tarfile.open(fileobj=buf, mode="w:bz2") as tar:
            info = tarfile.TarInfo("../../etc/passwd")
            data = b"pwned"
            info.size = len(data)
            tar.addfile(info, io.BytesIO(data))
        fs = VirtualFileSystem()
        unpack_tree(buf.getvalue(), fs, "/sandbox")
        assert fs.isfile("/sandbox/etc/passwd")
        assert not fs.exists("/etc/passwd")

    def test_symlinks_are_dropped(self):
        buf = io.BytesIO()
        with tarfile.open(fileobj=buf, mode="w:bz2") as tar:
            link = tarfile.TarInfo("escape")
            link.type = tarfile.SYMTYPE
            link.linkname = "/etc/passwd"
            tar.addfile(link)
        fs = VirtualFileSystem()
        written = unpack_tree(buf.getvalue(), fs, "/")
        assert written == []
        assert not fs.exists("/escape")

    def test_invalid_blob_raises(self):
        with pytest.raises(VfsError):
            unpack_tree(b"not a tarball", VirtualFileSystem(), "/")
        with pytest.raises(VfsError):
            archive_member_names(b"junk")


class TestMemberNames:
    def test_listing_without_extract(self, project_fs):
        names = archive_member_names(pack_tree(project_fs, "/"))
        assert "USAGE" in names
        assert "data/weights.bin" in names
