"""The message broker."""

from __future__ import annotations

from typing import Dict, Optional

from repro.broker import message as _message
from repro.broker.message import Message
from repro.broker.routes import Route, parse_route, validate_name
from repro.broker.topic import Channel, Topic
from repro.errors import MessageTooLarge, UnknownTopic
from repro.obs.metrics import CounterGroup, MetricsRegistry


class MessageBroker:
    """Arbitrates communication between clients and workers (paper §IV).

    Parameters
    ----------
    sim:
        The simulation kernel the broker lives on.
    max_message_bytes:
        Publish-size limit; project archives do NOT travel through the
        broker (they go to the file server), so job messages stay small.
    default_max_attempts:
        Redelivery budget before a message is dead-lettered.
    metrics:
        Shared :class:`~repro.obs.metrics.MetricsRegistry`.  The broker's
        tallies live there under a ``broker_`` prefix; :attr:`counters`
        remains the legacy accessor as a thin view.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`.  Messages published
        with trace headers get a ``broker.deliver`` span per delivery
        (publish → claim), chaining redeliveries into the same trace.
    """

    #: Topics whose names start with this prefix are ephemeral log topics
    #: (``log_${job_id}`` in the paper).
    EPHEMERAL_PREFIX = "log_"

    def __init__(self, sim, max_message_bytes: int = 1 << 20,
                 default_max_attempts: int = 5,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer=None, events=None):
        self.sim = sim
        self.max_message_bytes = max_message_bytes
        self.default_max_attempts = default_max_attempts
        self.topics: Dict[str, Topic] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.counters = CounterGroup(self.metrics, prefix="broker_")
        self.tracer = tracer
        #: Optional :class:`~repro.obs.events.EventLog`; channels reach it
        #: through their topic's broker back-reference to record
        #: redeliveries and dead-letterings.
        self.events = events
        #: Optional :class:`~repro.durability.DurabilityManager` journal.
        #: When set, every durable-topic transition (publish, deliver,
        #: ack, requeue, dead-letter) is appended to the write-ahead log.
        self.journal = None
        #: Optional :class:`~repro.obs.usage.UsageMeter`; wired by
        #: RaiSystem so message traffic bills the publishing tenant.
        self.usage = None

    # -- topology ------------------------------------------------------------

    def topic(self, name: str, ephemeral: Optional[bool] = None) -> Topic:
        """Get or create a topic.

        Ephemerality defaults from the ``log_`` naming convention but can be
        forced either way.
        """
        validate_name(name, "topic")
        t = self.topics.get(name)
        if t is None:
            if ephemeral is None:
                ephemeral = name.startswith(self.EPHEMERAL_PREFIX)
            t = Topic(self.sim, name, ephemeral=ephemeral,
                      max_attempts=self.default_max_attempts,
                      on_empty=self._reap_topic)
            t.broker = self
            self.topics[name] = t
            self.counters.incr("topics_created")
        return t

    def has_topic(self, name: str) -> bool:
        return name in self.topics

    def channel(self, route: str) -> Channel:
        """Get or create the channel for a ``topic/channel`` route."""
        r = parse_route(route) if not isinstance(route, Route) else route
        return self.topic(r.topic).channel(r.channel)

    def delete_topic(self, name: str) -> None:
        if name not in self.topics:
            raise UnknownTopic(name)
        topic = self.topics.pop(name)
        if self.journal is not None and not topic.ephemeral:
            self.journal.broker_topic_delete(name)
        self.counters.incr("topics_deleted")

    def _reap_topic(self, topic: Topic) -> None:
        if topic.name in self.topics and topic.depth == 0:
            del self.topics[topic.name]
            self.counters.incr("topics_reaped")

    # -- data plane ------------------------------------------------------------

    def publish(self, topic_name: str, body, headers=None) -> Message:
        """Publish a JSON-serialisable body; returns the stored message.

        The body is encoded exactly once, here: the size check, the byte
        accounting, ``Message.encoded_size()``, and every channel fan-out
        copy all reuse the same cached payload bytes.  ``headers`` travel
        out-of-band (trace context; never counted against the size
        limit).
        """
        try:
            # Late-bound module lookup so a monkeypatched encoder sees
            # every call site (the Message lazy path uses the same name).
            payload = _message.encode_body(body)
        except (TypeError, ValueError) as exc:
            raise TypeError(f"message body is not JSON-serialisable: {exc}") from exc
        size = len(payload)
        if size > self.max_message_bytes:
            raise MessageTooLarge(
                f"{size} bytes exceeds limit of {self.max_message_bytes}")
        msg = Message(topic_name, body, timestamp=self.sim.now,
                      payload=payload, headers=headers)
        topic = self.topic(topic_name)
        if self.journal is not None and not topic.ephemeral:
            # Journal before publish: a blocked consumer claims the
            # message synchronously inside publish(), and its deliver
            # record must follow this one in the log.
            self.journal.broker_publish(topic_name, body, headers,
                                        msg.id, msg.timestamp)
        topic.publish(msg)
        self.counters.incr("messages_published")
        self.counters.incr("bytes_published", size)
        if self.usage is not None and isinstance(body, dict):
            # Task bodies carry team/username; log-stream and control
            # traffic without them meters as platform overhead.
            self.usage.record("broker_messages", 1.0,
                              tenant=body.get("team")
                              or body.get("username"))
        return msg

    @property
    def total_bytes_published(self) -> int:
        """Legacy accessor — now a view over the metrics registry."""
        return int(self.counters.get("bytes_published"))

    # -- resiliency ------------------------------------------------------------

    def requeue_stale(self, in_flight_timeout: float) -> int:
        """One sweep over every channel; returns requeued count."""
        total = 0
        for topic in list(self.topics.values()):
            for channel in topic.channels.values():
                total += channel.requeue_stale(in_flight_timeout)
        if total:
            self.counters.incr("stale_requeued", total)
        return total

    def dead_letter_count(self) -> int:
        """Messages currently parked in dead-letter lists, broker-wide."""
        return sum(len(channel.dead_letters)
                   for topic in self.topics.values()
                   for channel in topic.channels.values())

    def drain_dead_letters(self):
        """Remove every dead-lettered message broker-wide.

        Returns ``(route, message)`` pairs so a system-level consumer can
        record where each poison message was parked.
        """
        drained = []
        for topic in list(self.topics.values()):
            for channel in topic.channels.values():
                for message in channel.drain_dead_letters():
                    drained.append((f"{topic.name}/{channel.name}", message))
        if drained:
            self.counters.incr("dead_letters_drained", len(drained))
        return drained

    def caretaker(self, interval: float = 60.0,
                  in_flight_timeout: float = 2 * 3600.0):
        """Kernel process sweeping for abandoned in-flight messages.

        The default timeout sits above the 1-hour container lifetime cap,
        so only genuinely dead consumers trigger redelivery.
        """
        while True:
            yield self.sim.timeout(interval)
            self.requeue_stale(in_flight_timeout)

    # -- observability ------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "topics": {name: t.stats() for name, t in self.topics.items()},
            "counters": self.counters.as_dict(),
            "bytes_published": self.total_bytes_published,
        }

    def total_depth(self) -> int:
        return sum(t.depth for t in self.topics.values())
