"""Pure path algebra for the virtual filesystem (always POSIX-style)."""

from __future__ import annotations

from typing import List, Tuple


def normalize(path: str) -> str:
    """Normalise to an absolute path: collapse ``.``/``..``/``//``.

    Relative paths are interpreted against ``/``.  ``..`` never escapes the
    root (as in real POSIX), which is also what makes archive extraction
    traversal-safe.
    """
    parts: List[str] = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if parts:
                parts.pop()
            continue
        parts.append(part)
    return "/" + "/".join(parts)


def split_parts(path: str) -> Tuple[str, ...]:
    """Normalised path components (empty tuple for the root)."""
    norm = normalize(path)
    if norm == "/":
        return ()
    return tuple(norm[1:].split("/"))


def join(base: str, *parts: str) -> str:
    """Join and normalise; an absolute component restarts from root."""
    result = base
    for part in parts:
        if part.startswith("/"):
            result = part
        else:
            result = result.rstrip("/") + "/" + part
    return normalize(result)


def parent_of(path: str) -> str:
    parts = split_parts(path)
    if not parts:
        return "/"
    return "/" + "/".join(parts[:-1])


def basename(path: str) -> str:
    parts = split_parts(path)
    return parts[-1] if parts else ""


def is_within(path: str, prefix: str) -> bool:
    """True if ``path`` equals or lies under directory ``prefix``."""
    p = split_parts(path)
    q = split_parts(prefix)
    return p[: len(q)] == q
