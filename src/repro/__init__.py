"""repro — a reproduction of RAI, a scalable project-submission system.

This package reimplements, in pure Python, the complete system described in
*"RAI: A Scalable Project Submission System for Parallel Programming
Courses"* (Dakkak, Pearson, Li, Hwu — IPDPSW 2017): an interactive
command-line submission client, sandboxed container workers, an NSQ-style
message broker, an S3-style object store, a MongoDB-style document database,
competition ranking, instructor tooling, and the elastic GPU cluster the
course ran on — all executing on a deterministic discrete-event simulation
kernel so that an entire 5-week course with tens of thousands of submissions
replays in seconds.

Quickstart::

    from repro import RaiSystem, RaiClient

    system = RaiSystem.standard(num_workers=2, seed=7)
    client = system.new_client(team="gpu-wizards")
    client.stage_project({"solution.cu": "// student code"})
    result = system.run(client.submit())
    print(result.stdout_text())

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
paper-versus-measured results of every table and figure.
"""

from repro._version import __version__, build_info

# Public re-exports are resolved lazily (PEP 562) so that importing light
# subsystems (e.g. ``repro.sim`` in a benchmark) does not pull in the whole
# stack.
_LAZY_EXPORTS = {
    "RaiSystem": ("repro.core.system", "RaiSystem"),
    "RaiClient": ("repro.core.client", "RaiClient"),
    "RaiWorker": ("repro.core.worker", "RaiWorker"),
    "Job": ("repro.core.job", "Job"),
    "JobKind": ("repro.core.job", "JobKind"),
    "JobResult": ("repro.core.job", "JobResult"),
    "JobStatus": ("repro.core.job", "JobStatus"),
    "RaiBuildSpec": ("repro.buildspec", "RaiBuildSpec"),
    "default_build_spec": ("repro.buildspec", "default_build_spec"),
    "final_submission_spec": ("repro.buildspec", "final_submission_spec"),
    "FaultPlan": ("repro.faults", "FaultPlan"),
    "FaultInjector": ("repro.faults", "FaultInjector"),
    "RetryPolicy": ("repro.faults", "RetryPolicy"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))


__all__ = [
    "__version__",
    "build_info",
    "RaiSystem",
    "RaiClient",
    "RaiWorker",
    "Job",
    "JobKind",
    "JobResult",
    "JobStatus",
    "RaiBuildSpec",
    "default_build_spec",
    "final_submission_spec",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
]
