"""Worker robustness: malformed input, shutdown races, spec extensions."""

import pytest

from repro.buildspec.parser import render_build_spec
from repro.buildspec.spec import RaiBuildSpec, ResourceRequest
from repro.core.config import WorkerConfig
from repro.core.job import JobStatus
from repro.core.system import RaiSystem

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


class TestMalformedMessages:
    def test_junk_on_task_queue_does_not_kill_worker(self):
        system = RaiSystem.standard(num_workers=1, seed=2)
        system.broker.publish("rai", {"not": "a job"})
        system.broker.publish("rai", [1, 2, 3])
        client = system.new_client(team="t")
        client.stage_project(FILES)
        result = system.run(client.submit())
        assert result.status is JobStatus.SUCCEEDED
        assert system.monitor.counters.get("malformed_job_messages") == 2

    def test_unparseable_spec_rejected_not_crash(self):
        system = RaiSystem.standard(num_workers=1, seed=2)
        client = system.new_client(team="t")
        client.stage_project(FILES)
        client.project_fs.write_file("/rai-build.yml", "rai: [broken")
        # The client falls back?  No: an existing-but-invalid file is sent
        # as-is (the client does not validate, per §V the worker checks).
        result = system.run(client.submit())
        assert result.status is JobStatus.REJECTED

    def test_unsupported_version_rejected_by_worker(self):
        system = RaiSystem.standard(num_workers=1, seed=2)
        client = system.new_client(team="t")
        client.stage_project(FILES)
        client.set_build_file(
            "rai:\n  version: 99.0\n  image: webgpu/rai:root\n"
            "commands:\n  build: [make]\n")
        result = system.run(client.submit())
        assert result.status is JobStatus.REJECTED
        assert "not supported" in result.stderr_text()


class TestResourceSpecExtension:
    def test_resources_section_accepted(self):
        """The §V 'machine requirements' future extension parses and
        travels through the whole pipeline."""
        system = RaiSystem.standard(num_workers=1, seed=2)
        client = system.new_client(team="t")
        client.stage_project(FILES)
        spec = RaiBuildSpec(
            version="0.2", image="webgpu/rai:root",
            build_commands=["cmake /src", "make"],
            resources=ResourceRequest(gpus=1, memory_gb=4.0))
        client.set_build_file(render_build_spec(spec))
        result = system.run(client.submit())
        assert result.status is JobStatus.SUCCEEDED


class TestShutdownRaces:
    def test_stop_idle_worker_requeues_nothing(self):
        system = RaiSystem.standard(num_workers=2, seed=2)
        system.remove_worker()
        system.remove_worker()
        assert system.queue_depth() == 0
        # Jobs submitted now wait in the queue for a future worker.
        client = system.new_client(team="t")
        client.stage_project(FILES)
        proc = system.sim.process(client.submit())
        system.run(until=system.sim.now + 120)
        assert proc.is_alive
        system.add_worker()
        result = system.run(proc)
        assert result.status is JobStatus.SUCCEEDED

    def test_double_stop_is_safe(self):
        system = RaiSystem.standard(num_workers=1, seed=2)
        worker = system.workers[0]
        worker.stop()
        worker.stop()
        assert not worker.is_running

    def test_worker_stats_accumulate(self):
        system = RaiSystem.standard(num_workers=1, seed=2)
        client = system.new_client(team="t")
        client.stage_project(FILES)
        system.run(client.submit())
        worker = system.workers[0]
        assert worker.jobs_completed == 1
        assert worker.busy_seconds > 0
        assert 0 < worker.utilization() <= 1

    def test_uptime_freezes_after_stop(self):
        system = RaiSystem.standard(num_workers=1, seed=2)
        worker = system.workers[0]

        def advance(sim):
            yield sim.timeout(100)

        system.run(advance(system.sim))
        worker.stop()
        frozen = worker.uptime
        system.run(advance(system.sim))
        assert worker.uptime == frozen


class TestWorkerConfigKnobs:
    def test_custom_task_route_isolates_queues(self):
        system = RaiSystem(seed=2)
        system.add_worker(WorkerConfig(task_route="rai/special"))
        # Jobs go to rai/tasks by default: the special worker's channel
        # also receives a copy (fan-out), so it still serves them.
        client = system.new_client(team="t")
        client.stage_project(FILES)
        result = system.run(client.submit())
        assert result.status is JobStatus.SUCCEEDED

    def test_concurrency_validation(self):
        with pytest.raises(ValueError):
            WorkerConfig(max_concurrent_jobs=0)

    def test_storage_bandwidth_affects_turnaround(self):
        def run(bandwidth):
            system = RaiSystem(seed=2)
            system.add_worker(WorkerConfig(
                storage_bandwidth_bps=bandwidth))
            client = system.new_client(team="t")
            client.stage_project(FILES)
            client.project_padding_bytes = 50_000_000
            return system.run(client.submit()).turnaround

        assert run(10e6) > run(1000e6)
