"""Microbenchmarks of the substrates (supporting material).

These are genuine wall-clock pytest-benchmark measurements of the
reimplemented infrastructure: broker publish/consume, document-database
query/update, object-store round trips, tar.bz2 archiving, the CNN's
serial-reference vs im2col implementations, and raw kernel event
throughput.  They back the claim that a full five-week course replays in
minutes.
"""

import numpy as np

from repro.broker import Consumer, MessageBroker
from repro.docdb import DocumentDB
from repro.gpu.cnn import (
    _conv2d_im2col,
    _conv2d_reference,
    generate_dataset,
    generate_model_weights,
    infer,
)
from repro.sim import Simulator
from repro.storage import ObjectStore
from repro.vfs import VirtualFileSystem, pack_tree, unpack_tree


class TestKernelThroughput:
    def test_event_throughput(self, benchmark):
        def run_events():
            sim = Simulator()

            def ticker(sim):
                for _ in range(2000):
                    yield sim.timeout(1.0)

            for _ in range(5):
                sim.process(ticker(sim))
            sim.run()
            return sim.now

        assert benchmark(run_events) == 2000.0


class TestBrokerThroughput:
    def test_publish_consume_1000(self, benchmark):
        def roundtrip():
            sim = Simulator()
            broker = MessageBroker(sim)
            consumer = Consumer(broker, "rai/tasks")
            n = 1000
            count = [0]

            def drain(sim):
                for _ in range(n):
                    msg = yield consumer.get()
                    consumer.ack(msg)
                    count[0] += 1

            proc = sim.process(drain(sim))
            for i in range(n):
                broker.publish("rai", {"n": i})
            sim.run(until=proc)
            return count[0]

        assert benchmark(roundtrip) == 1000


class TestDocDb:
    def setup_collection(self, n=2000):
        coll = DocumentDB()["submissions"]
        rng = np.random.default_rng(0)
        coll.insert_many([
            {"team": f"team-{i % 58}", "time": float(rng.random() * 100),
             "kind": "run" if i % 10 else "final"}
            for i in range(n)
        ])
        return coll

    def test_filtered_find(self, benchmark):
        coll = self.setup_collection()
        result = benchmark(
            lambda: coll.find({"kind": "final",
                               "time": {"$lt": 50}}).count())
        assert result > 0

    def test_indexed_equality_lookup(self, benchmark):
        coll = self.setup_collection()
        coll.create_index("team")
        result = benchmark(lambda: coll.find({"team": "team-7"}).count())
        assert result > 0

    def test_ranking_aggregation(self, benchmark):
        coll = self.setup_collection()
        pipeline = [
            {"$match": {"kind": "final"}},
            {"$group": {"_id": "$team", "best": {"$min": "$time"}}},
            {"$sort": {"best": 1}},
            {"$limit": 30},
        ]
        rows = benchmark(lambda: coll.aggregate(pipeline))
        assert len(rows) <= 30


class TestObjectStore:
    def test_put_get_1mb(self, benchmark):
        sim = Simulator()
        store = ObjectStore(sim)
        store.create_bucket("b")
        blob = bytes(1024 * 1024)

        def roundtrip():
            store.put_object("b", "k", blob)
            return store.get_object("b", "k").size

        assert benchmark(roundtrip) == len(blob)


class TestArchive:
    def test_pack_unpack_project(self, benchmark):
        fs = VirtualFileSystem()
        rng = np.random.default_rng(0)
        fs.import_mapping(
            {f"src/file{i}.cu": rng.bytes(4096) for i in range(20)}, "/")

        def roundtrip():
            blob = pack_tree(fs, "/")
            out = VirtualFileSystem()
            unpack_tree(blob, out, "/")
            return out.file_count("/")

        assert benchmark(roundtrip) == 20


class TestCnnImplementations:
    def test_serial_reference_conv(self, benchmark):
        """The 'CPU baseline' path: deliberately naive."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 1, 28, 28)).astype(np.float32)
        w = rng.normal(size=(8, 1, 5, 5)).astype(np.float32)
        b = np.zeros(8, dtype=np.float32)
        out = benchmark(lambda: _conv2d_reference(x, w, b))
        assert out.shape == (2, 8, 24, 24)

    def test_vectorised_im2col_conv(self, benchmark):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 1, 28, 28)).astype(np.float32)
        w = rng.normal(size=(8, 1, 5, 5)).astype(np.float32)
        b = np.zeros(8, dtype=np.float32)
        out = benchmark(lambda: _conv2d_im2col(x, w, b))
        assert out.shape == (2, 8, 24, 24)

    def test_full_network_inference_batch10(self, benchmark):
        images, labels = generate_dataset(10)
        weights = generate_model_weights()
        logits = benchmark(lambda: infer(images, weights, impl="im2col"))
        assert logits.shape == (10, 10)
