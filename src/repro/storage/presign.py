"""Presigned URL tokens.

The worker sends "the URL of the uploaded /build directory ... as a message
to the ``log-${job_id}`` topic" (§V, Worker Operations step 6), and the
client downloads job output through it.  Tokens are HMAC-SHA256-signed
claims with an expiry timestamp, so possession of a token grants exactly
one object for a bounded time — no broker or database credentials needed.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
from dataclasses import dataclass

from repro.errors import ExpiredToken, SignatureMismatch


@dataclass(frozen=True)
class PresignedToken:
    """A verified presign claim."""

    method: str
    bucket: str
    key: str
    expires_at: float


class PresignSigner:
    """Signs and verifies presigned tokens against a store secret."""

    def __init__(self, secret: bytes, clock):
        if not secret:
            raise ValueError("secret must be non-empty")
        self._secret = bytes(secret)
        self._clock = clock

    def sign(self, method: str, bucket: str, key: str,
             expires_at: float) -> str:
        payload = json.dumps(
            {"m": method, "b": bucket, "k": key, "e": float(expires_at)},
            sort_keys=True,
        ).encode("utf-8")
        sig = hmac.new(self._secret, payload, hashlib.sha256).digest()
        return (base64.urlsafe_b64encode(payload).decode("ascii") + "." +
                base64.urlsafe_b64encode(sig).decode("ascii"))

    def verify(self, token: str, expected_method: str = None) -> PresignedToken:
        try:
            payload_b64, sig_b64 = token.split(".", 1)
            payload = base64.urlsafe_b64decode(payload_b64.encode("ascii"))
            sig = base64.urlsafe_b64decode(sig_b64.encode("ascii"))
        except (ValueError, TypeError) as exc:
            raise SignatureMismatch(f"malformed token: {exc}") from exc
        expected = hmac.new(self._secret, payload, hashlib.sha256).digest()
        if not hmac.compare_digest(sig, expected):
            raise SignatureMismatch("token signature does not verify")
        claim = json.loads(payload)
        token_obj = PresignedToken(method=claim["m"], bucket=claim["b"],
                                   key=claim["k"], expires_at=claim["e"])
        if expected_method is not None and token_obj.method != expected_method:
            raise SignatureMismatch(
                f"token is for {token_obj.method}, not {expected_method}")
        if self._clock() > token_obj.expires_at:
            raise ExpiredToken(
                f"token for {token_obj.bucket}/{token_obj.key} expired")
        return token_obj
