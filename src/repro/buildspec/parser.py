"""Parse and render ``rai-build.yml`` files.

``parse_build_spec`` and ``render_build_spec`` are exact inverses for any
valid spec, which lets the system round-trip build files without loss
(clients render what facades construct; workers parse what clients send).
"""

from __future__ import annotations

import re

import yaml

from repro.buildspec.spec import RaiBuildSpec, ResourceRequest
from repro.errors import SpecParseError

#: A trailing backslash folds a command onto the next line, shell-style.
_CONTINUATION_RE = re.compile(r"\\\s*\n\s*")


def _fold_continuations(command: str) -> str:
    return _CONTINUATION_RE.sub(" ", command)


def _require_mapping(value, what: str) -> dict:
    if not isinstance(value, dict):
        raise SpecParseError(f"{what} must be a mapping, "
                             f"got {type(value).__name__}")
    return value


def parse_build_spec(text: str) -> RaiBuildSpec:
    """Parse YAML text into a :class:`RaiBuildSpec`.

    Raises :class:`~repro.errors.SpecParseError` on malformed input; version
    and whitelist problems are deferred to ``spec.validate()`` so the worker
    can report them with the student-facing wording.
    """
    try:
        doc = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise SpecParseError(f"invalid YAML in rai-build.yml: {exc}") from exc
    doc = _require_mapping(doc, "rai-build.yml")

    rai = _require_mapping(doc.get("rai", {}), "the 'rai' section")
    # YAML reads ``version: 0.1`` as a float; normalise to the string form.
    version = str(rai.get("version", "0.1"))
    image = rai.get("image")
    if image is None:
        raise SpecParseError("rai.image is required")

    commands = _require_mapping(doc.get("commands", {}),
                                "the 'commands' section")
    build = commands.get("build")
    if build is None:
        raise SpecParseError("commands.build is required")
    if isinstance(build, str):
        build = [build]
    if not isinstance(build, list):
        raise SpecParseError("commands.build must be a list of commands")
    build_commands = [_fold_continuations(str(command)) for command in build]

    resources = None
    if "resources" in doc and doc["resources"] is not None:
        res = _require_mapping(doc["resources"], "the 'resources' section")
        try:
            resources = ResourceRequest(
                gpus=int(res.get("gpus", 1)),
                memory_gb=(float(res["memory_gb"])
                           if res.get("memory_gb") is not None else None),
                cpus=(int(res["cpus"])
                      if res.get("cpus") is not None else None),
            )
        except (TypeError, ValueError) as exc:
            raise SpecParseError(f"invalid resources section: {exc}") from exc

    return RaiBuildSpec(version=version, image=str(image),
                        build_commands=build_commands, resources=resources,
                        cache_enabled=bool(rai.get("cache", True)))


def render_build_spec(spec: RaiBuildSpec) -> str:
    """Render a spec back to canonical YAML (inverse of parsing)."""
    rai: dict = {"version": spec.version, "image": spec.image}
    if not spec.cache_enabled:
        rai["cache"] = False
    doc = {
        "rai": rai,
        "commands": {"build": list(spec.build_commands)},
    }
    if spec.resources is not None:
        resources = {"gpus": spec.resources.gpus}
        if spec.resources.memory_gb is not None:
            resources["memory_gb"] = spec.resources.memory_gb
        if spec.resources.cpus is not None:
            resources["cpus"] = spec.resources.cpus
        doc["resources"] = resources
    return yaml.safe_dump(doc, sort_keys=False, default_flow_style=False)
