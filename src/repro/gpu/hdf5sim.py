"""A minimal HDF5-like binary container for named numeric datasets.

The course's model and test data travel in HDF5 files (paper footnote 2:
"the project uses the HDF5 format to store the neural network's model and
test data files").  libhdf5 is unavailable offline, so this module
implements the one capability the system actually exercises — a single
file holding multiple named n-dimensional arrays — with a compact
self-describing binary layout:

``H5SIM1\\0`` magic | uint32 count | per dataset:
uint16 name-length | name utf-8 | 8-byte dtype tag | uint8 ndim |
uint64 shape... | raw little-endian array bytes.
"""

from __future__ import annotations

import struct
from typing import Dict, List

import numpy as np

from repro.errors import ReproError

MAGIC = b"H5SIM1\x00"

_SUPPORTED_DTYPES = {"float32", "float64", "int32", "int64", "uint8"}


class H5SimError(ReproError):
    pass


def write_h5s(datasets: Dict[str, np.ndarray]) -> bytes:
    """Serialise ``{name: array}`` into the container format."""
    out = [MAGIC, struct.pack("<I", len(datasets))]
    for name in sorted(datasets):
        arr = np.ascontiguousarray(datasets[name])
        dtype = arr.dtype.name
        if dtype not in _SUPPORTED_DTYPES:
            raise H5SimError(f"unsupported dtype {dtype!r} for {name!r}")
        name_bytes = name.encode("utf-8")
        out.append(struct.pack("<H", len(name_bytes)))
        out.append(name_bytes)
        out.append(dtype.encode("ascii").ljust(8, b"\x00"))
        out.append(struct.pack("<B", arr.ndim))
        for dim in arr.shape:
            out.append(struct.pack("<Q", dim))
        out.append(arr.astype(arr.dtype, order="C").tobytes())
    return b"".join(out)


def read_h5s(blob: bytes) -> Dict[str, np.ndarray]:
    """Parse a container back into ``{name: array}``."""
    if not blob.startswith(MAGIC):
        raise H5SimError("bad magic: not an H5SIM container")
    offset = len(MAGIC)
    (count,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    datasets: Dict[str, np.ndarray] = {}
    for _ in range(count):
        (name_len,) = struct.unpack_from("<H", blob, offset)
        offset += 2
        name = blob[offset:offset + name_len].decode("utf-8")
        offset += name_len
        dtype = blob[offset:offset + 8].rstrip(b"\x00").decode("ascii")
        offset += 8
        if dtype not in _SUPPORTED_DTYPES:
            raise H5SimError(f"unsupported dtype tag {dtype!r}")
        (ndim,) = struct.unpack_from("<B", blob, offset)
        offset += 1
        shape = []
        for _ in range(ndim):
            (dim,) = struct.unpack_from("<Q", blob, offset)
            offset += 8
            shape.append(dim)
        size = int(np.prod(shape)) if shape else 1
        nbytes = size * np.dtype(dtype).itemsize
        if offset + nbytes > len(blob):
            raise H5SimError(f"truncated container reading {name!r}")
        arr = np.frombuffer(blob[offset:offset + nbytes], dtype=dtype)
        offset += nbytes
        datasets[name] = arr.reshape(shape).copy()
    return datasets


def list_datasets(blob: bytes) -> List[str]:
    return sorted(read_h5s(blob))
