"""Tracing must be (nearly) free: overhead smoke for repro.obs.

Tier-1 guard for the obs PR's acceptance bar — running the smoke-scale
hot path with tracing ON costs < 10% wall clock over tracing OFF, and
changes *nothing* about the simulation itself (same completions, same
simulated latencies: spans are passive observers, never sim events).
"""

import pytest

from repro.core.config import SystemConfig
from repro.workload.hotpath import SMOKE_SCALE, run_hotpath

pytestmark = pytest.mark.perf


def _run(tracing: bool) -> dict:
    return run_hotpath(SMOKE_SCALE,
                       config=SystemConfig(tracing_enabled=tracing))


def test_tracing_does_not_perturb_simulation():
    on = _run(tracing=True)
    off = _run(tracing=False)
    # Identical simulated outcomes; only the wall clock may differ.
    on.pop("wall_clock_s")
    off.pop("wall_clock_s")
    assert on == off


def _overhead_ratio() -> float:
    # Interleaved pairs, judged by whichever of two fair estimators is
    # smaller — ratio of sums (averages slow machine drift) and ratio
    # of minimums (quiet-window cost) — since on a loaded box either
    # one alone can be unlucky by more than the whole budget.
    samples = [(_run(tracing=True)["wall_clock_s"],
                _run(tracing=False)["wall_clock_s"])
               for _ in range(4)]
    sum_on = sum(s for s, _ in samples)
    sum_off = sum(s for _, s in samples)
    min_on = min(s for s, _ in samples)
    min_off = min(s for _, s in samples)
    if sum_off <= 0 or min_off <= 0:
        return 1.0
    return min(sum_on / sum_off, min_on / min_off)


def test_tracing_overhead_under_ten_percent():
    # A true regression fails both attempts; a one-off noise spike
    # does not.
    ratio = _overhead_ratio()
    if ratio >= 1.10:
        ratio = min(ratio, _overhead_ratio())
    assert ratio < 1.10, (
        f"tracing overhead {100 * (ratio - 1):.1f}% exceeds 10% budget")
