"""Tests for interactive sessions (§VIII future work, implemented)."""

import pytest

from repro.core.config import WorkerConfig
from repro.core.interactive import (
    DEFAULT_IDLE_SECONDS,
    InteractiveSession,
    reset_session_ids,
)
from repro.core.job import JobStatus
from repro.core.system import RaiSystem
from repro.errors import RaiError

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


@pytest.fixture(autouse=True)
def _reset_ids():
    reset_session_ids()


@pytest.fixture
def system():
    s = RaiSystem(seed=55)
    s.add_worker(WorkerConfig(enable_interactive=True))
    return s


@pytest.fixture
def client(system):
    c = system.new_client(team="interactive-team")
    c.stage_project(FILES)
    return c


def drive(system, generator):
    return system.run(generator)


class TestSessionLifecycle:
    def test_full_debugging_workflow(self, system, client):
        """The use case §VIII motivates: iterative build/profile/inspect."""
        session = InteractiveSession(client)

        def student(sim):
            yield from session.start()
            assert session.is_attached
            build = yield from session.run("cmake /src && make")
            assert build.exit_code == 0
            run = yield from session.run(
                "./ece408 /data/test10.hdf5 /data/model.hdf5")
            assert "Correctness:" in run.stdout
            profile = yield from session.run(
                "nvprof ./ece408 /data/test10.hdf5 /data/model.hdf5")
            assert "Profiling result" in profile.stderr
            transcript = yield from session.close()
            return transcript

        transcript = drive(system, student(system.sim))
        assert transcript.status == "ended"
        assert transcript.end_reason == "detached"
        assert len(transcript.outcomes) == 3

    def test_state_persists_between_commands(self, system, client):
        """The defining difference from batch jobs."""
        session = InteractiveSession(client)

        def student(sim):
            yield from session.start()
            yield from session.run("echo sticky > /build/note.txt")
            readback = yield from session.run("cat /build/note.txt")
            yield from session.close()
            return readback

        outcome = drive(system, student(system.sim))
        assert outcome.stdout == "sticky\n"

    def test_recorded_in_database(self, system, client):
        session = InteractiveSession(client)

        def student(sim):
            yield from session.start()
            yield from session.run("pwd")
            yield from session.close()

        drive(system, student(system.sim))
        row = system.db.collection("interactive_sessions").find_one(
            {"session_id": session.session_id})
        assert row["end_reason"] == "detached"
        assert row["commands"][0]["command"] == "pwd"

    def test_run_before_start_rejected(self, system, client):
        session = InteractiveSession(client)
        with pytest.raises(RaiError):
            next(session.run("ls"))


class TestSessionLimits:
    def test_idle_timeout_reclaims_worker(self, system, client):
        session = InteractiveSession(client)

        def student(sim):
            yield from session.start()
            yield sim.timeout(DEFAULT_IDLE_SECONDS + 60)
            # Session is gone by now; a run attempt must fail.
            return session

        drive(system, student(system.sim))
        row = system.db.collection("interactive_sessions").find_one({})
        assert row["end_reason"] == "idle-timeout"

    def test_session_deadline(self, system, client):
        session = InteractiveSession(client, max_duration=100.0)

        def student(sim):
            yield from session.start()
            outcome = yield from session.run("sleep 90")
            # next wait exceeds the deadline
            yield sim.timeout(30)
            return outcome

        drive(system, student(system.sim))
        row = system.db.collection("interactive_sessions").find_one({})
        assert row["end_reason"] == "session-deadline"

    def test_sandbox_contract_holds(self, system, client):
        """No network, read-only /src — same as batch (§V)."""
        session = InteractiveSession(client)

        def student(sim):
            yield from session.start()
            net = yield from session.run("curl http://example.com")
            ro = yield from session.run("rm -f /src/main.cu")
            alive = yield from session.run("cat /src/main.cu")
            yield from session.close()
            return net, ro, alive

        net, ro, alive = drive(system, student(system.sim))
        assert net.exit_code != 0
        assert ro.exit_code != 0
        assert "@rai-sim" in alive.stdout

    def test_bad_credentials_rejected(self, system):
        from repro.auth.profile import RaiProfile
        from repro.core.client import RaiClient

        intruder = RaiClient(system, RaiProfile("x", "bad", "keys"),
                             team="t")
        intruder.stage_project(FILES)
        session = InteractiveSession(intruder)

        def attempt(sim):
            transcript = yield from session.start()
            return transcript
            yield  # keep generator shape

        transcript = drive(system, attempt(system.sim))
        assert transcript.status == "rejected"

    def test_unwhitelisted_image_rejected(self, system, client):
        session = InteractiveSession(client, image="sketchy/custom:latest")

        def attempt(sim):
            return (yield from session.start())

        transcript = drive(system, attempt(system.sim))
        assert transcript.status == "rejected"
        assert "whitelist" in transcript.error


class TestCoexistence:
    def test_batch_jobs_still_served(self, system, client):
        """An interactive-enabled worker serves both queues."""
        session = InteractiveSession(client)
        batch_client = system.new_client(team="batch-team")
        batch_client.stage_project(FILES)

        def student(sim):
            yield from session.start()
            yield from session.run("echo interactive")
            yield from session.close()

        def batcher(sim):
            return (yield from batch_client.submit())

        results = system.run_all([student(system.sim),
                                  batcher(system.sim)])
        assert results[1].status is JobStatus.SUCCEEDED

    def test_non_interactive_workers_ignore_sessions(self):
        system = RaiSystem(seed=1)
        system.add_worker(WorkerConfig(enable_interactive=False))
        client = system.new_client(team="t")
        client.stage_project(FILES)
        session = InteractiveSession(client)

        def attempt(sim):
            start = sim.process(session.start())
            # Nobody will ever attach; give it a bounded wait.
            yield sim.timeout(600)
            return start.is_alive

        still_waiting = system.run(attempt(system.sim))
        assert still_waiting   # request queued, no worker took it
