"""Turning cloud instances into RAI workers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.instance import InstanceType, get_instance_type
from repro.core.config import WorkerConfig


@dataclass
class ProvisionedInstance:
    """One leased machine and the worker running on it."""

    instance_type: InstanceType
    launched_at: float
    worker: object = None           # RaiWorker once booted
    terminated_at: Optional[float] = None
    boot_process: object = None

    def cost_until(self, now: float) -> float:
        """Accrued cost; cloud billing is per (partial) hour."""
        end = self.terminated_at if self.terminated_at is not None else now
        hours = max(0.0, end - self.launched_at) / 3600.0
        import math

        billed = max(1.0, math.ceil(hours)) if hours > 0 else 0.0
        return billed * self.instance_type.hourly_cost_usd

    @property
    def is_live(self) -> bool:
        return self.terminated_at is None


class Provisioner:
    """Launches and terminates instances against a :class:`RaiSystem`."""

    def __init__(self, system):
        self.system = system
        self.sim = system.sim
        self.instances: List[ProvisionedInstance] = []

    # -- scale out ------------------------------------------------------------

    def launch(self, instance_type: str = "p2.xlarge",
               max_concurrent_jobs: int = 1,
               boot_delay: Optional[float] = None) -> ProvisionedInstance:
        """Lease an instance; its worker joins the pool after boot."""
        itype = get_instance_type(instance_type)
        inst = ProvisionedInstance(instance_type=itype,
                                   launched_at=self.sim.now)
        delay = itype.boot_seconds if boot_delay is None else boot_delay

        def boot():
            yield self.sim.timeout(delay)
            if inst.terminated_at is not None:
                return  # terminated while booting
            config = WorkerConfig(
                max_concurrent_jobs=max_concurrent_jobs,
                gpu_model=itype.gpu_model,
                storage_bandwidth_bps=itype.storage_bandwidth_bps,
            )
            inst.worker = self.system.add_worker(config)

        inst.boot_process = self.sim.process(boot())
        self.instances.append(inst)
        return inst

    def launch_many(self, count: int, **kwargs) -> List[ProvisionedInstance]:
        return [self.launch(**kwargs) for _ in range(count)]

    # -- scale in ------------------------------------------------------------

    def terminate(self, instance: ProvisionedInstance) -> None:
        if instance.terminated_at is not None:
            return
        instance.terminated_at = self.sim.now
        if instance.worker is not None:
            self.system.remove_worker(instance.worker)

    def terminate_count(self, count: int) -> int:
        """Terminate up to ``count`` live instances (idle-first)."""
        live = [i for i in self.instances if i.is_live and i.worker is not None]
        live.sort(key=lambda i: i.worker.active_jobs)
        terminated = 0
        for inst in live[:count]:
            self.terminate(inst)
            terminated += 1
        return terminated

    def terminate_all(self) -> None:
        for inst in self.instances:
            self.terminate(inst)

    # -- observability ------------------------------------------------------

    @property
    def live_instances(self) -> List[ProvisionedInstance]:
        return [i for i in self.instances if i.is_live]

    def total_cost(self, now: Optional[float] = None) -> float:
        now = self.sim.now if now is None else now
        return sum(i.cost_until(now) for i in self.instances)
