"""Unit tests for the 30-second rate limiter."""

import pytest

from repro.core.ratelimit import RateLimiter
from repro.errors import RateLimited


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def limiter(clock):
    return RateLimiter(clock, window_seconds=30.0)


class TestRateLimiter:
    def test_first_submission_accepted(self, limiter):
        limiter.check("team-1")

    def test_within_window_rejected(self, limiter, clock):
        limiter.check("team-1")
        clock.now = 15.0
        with pytest.raises(RateLimited) as exc_info:
            limiter.check("team-1")
        assert exc_info.value.retry_after == pytest.approx(15.0)

    def test_after_window_accepted(self, limiter, clock):
        limiter.check("team-1")
        clock.now = 30.0
        limiter.check("team-1")

    def test_principals_independent(self, limiter):
        limiter.check("team-1")
        limiter.check("team-2")   # not limited by team-1's submission

    def test_rejection_does_not_extend_window(self, limiter, clock):
        limiter.check("t")
        clock.now = 29.0
        with pytest.raises(RateLimited):
            limiter.check("t")
        clock.now = 30.5
        limiter.check("t")   # measured from the accepted one

    def test_retry_after_query(self, limiter, clock):
        assert limiter.retry_after("t") == 0.0
        limiter.check("t")
        clock.now = 10.0
        assert limiter.retry_after("t") == pytest.approx(20.0)

    def test_counters(self, limiter, clock):
        limiter.check("t")
        with pytest.raises(RateLimited):
            limiter.check("t")
        assert limiter.total_accepted == 1
        assert limiter.total_rejected == 1

    def test_reset(self, limiter):
        limiter.check("t")
        limiter.reset("t")
        limiter.check("t")   # immediately OK again

    def test_reset_all(self, limiter):
        limiter.check("a")
        limiter.check("b")
        limiter.reset()
        limiter.check("a")
        limiter.check("b")

    def test_zero_window_never_limits(self, clock):
        limiter = RateLimiter(clock, window_seconds=0.0)
        limiter.check("t")
        limiter.check("t")

    def test_negative_window_rejected(self, clock):
        with pytest.raises(ValueError):
            RateLimiter(clock, window_seconds=-1)
