"""Unit tests for route parsing."""

import pytest

from repro.broker import parse_route
from repro.broker.routes import validate_name
from repro.errors import BrokerError


class TestParseRoute:
    def test_topic_and_channel(self):
        r = parse_route("rai/tasks")
        assert r.topic == "rai" and r.channel == "tasks"
        assert str(r) == "rai/tasks"

    def test_default_channel(self):
        assert parse_route("rai").channel == "#default"

    def test_ephemeral_channel_marker(self):
        assert parse_route("log_job-1/#ch").channel_is_ephemeral

    def test_job_id_topics(self):
        r = parse_route("log_job-000042/#ch")
        assert r.topic == "log_job-000042"

    @pytest.mark.parametrize("bad", ["", "a b/c", "a/b/c ", "topic/ch an"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(BrokerError):
            parse_route(bad)

    def test_validate_name_passthrough(self):
        assert validate_name("ok-name.1") == "ok-name.1"
