"""Client build and delivery pipeline (§VII "RAI Client Delivery").

The course kept a *master* (stable) and a *devel* branch; a continuous
build system cross-compiled both to ten OS/architecture targets, uploaded
the binaries to S3, and linked them on the project page (Figure 3).  The
commit hash and build date were embedded in each binary so bug reports
could be bisected to the offending commit.
"""

from repro.release.buildmatrix import BuildTarget, BUILD_MATRIX, Artifact
from repro.release.ci import Branch, Commit, ContinuousBuilder
from repro.release.delivery import DownloadPage, find_regression

__all__ = [
    "BuildTarget",
    "BUILD_MATRIX",
    "Artifact",
    "Branch",
    "Commit",
    "ContinuousBuilder",
    "DownloadPage",
    "find_regression",
]
