"""Additional VFS coverage: directory moves, edge shapes."""

import pytest

from repro.errors import FileNotFound
from repro.vfs import VirtualFileSystem


@pytest.fixture
def fs():
    f = VirtualFileSystem()
    f.import_mapping({"d/a.txt": "A", "d/sub/b.txt": "B", "top.txt": "T"},
                     "/")
    return f


class TestMoveDirectory:
    def test_move_tree(self, fs):
        fs.move("/d", "/renamed")
        assert not fs.exists("/d")
        assert fs.read_text("/renamed/a.txt") == "A"
        assert fs.read_text("/renamed/sub/b.txt") == "B"

    def test_move_into_existing_dir(self, fs):
        fs.makedirs("/dest")
        fs.move("/d", "/dest")
        assert fs.read_text("/dest/d/a.txt") == "A"

    def test_move_missing_raises(self, fs):
        with pytest.raises(FileNotFound):
            fs.move("/ghost", "/x")


class TestWalkEdges:
    def test_walk_empty_root(self):
        fs = VirtualFileSystem()
        assert list(fs.walk("/")) == [("/", [], [])]

    def test_iter_files_on_empty_subtree(self, fs):
        fs.makedirs("/hollow")
        assert list(fs.iter_files("/hollow")) == []

    def test_tree_size_of_single_file_parent(self, fs):
        assert fs.tree_size("/d") == 2

    def test_repr(self, fs):
        text = repr(fs)
        assert "3 files" in text


class TestBinaryAndUnicode:
    def test_binary_content(self, fs):
        payload = bytes(range(256))
        fs.write_file("/bin.dat", payload)
        assert fs.read_file("/bin.dat") == payload

    def test_unicode_text_roundtrip(self, fs):
        fs.write_file("/unicode.txt", "héllo wörld ☃")
        assert fs.read_text("/unicode.txt") == "héllo wörld ☃"

    def test_unicode_filenames(self, fs):
        fs.write_file("/données/café.txt", "ok")
        assert fs.read_text("/données/café.txt") == "ok"
        assert "café.txt" in fs.listdir("/données")


class TestExecutableBit:
    def test_default_not_executable(self, fs):
        assert not fs.stat("/top.txt")["executable"]

    def test_copy_preserves_executable(self, fs):
        fs.write_file("/tool", b"#!", executable=True)
        fs.copy("/tool", "/tool2")
        assert fs.stat("/tool2")["executable"]
