"""Scaling policies: the course's manual schedule, and a reactive
queue-depth autoscaler ("RAI can also be configured to scale out to remote
cloud instances as local resources [are] exhausted", §IV)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.provisioner import Provisioner


@dataclass(frozen=True)
class SchedulePhase:
    """One phase of a manual provisioning plan."""

    start_time: float              # seconds from schedule start
    instance_type: str
    count: int
    max_concurrent_jobs: int = 1
    label: str = ""


class ManualSchedule:
    """The course's hand-driven plan (§VII, Resource Usage):

    1. early weeks — a few cheap G2 (K40) boxes, one job at a time, while
       students experiment with the slow CPU baseline;
    2. mid-project — 10 P2 (K80) instances, multiple pending submissions
       each, for interactive response;
    3. final week — 20–30 single-job P2 instances for accurate timing.
    """

    @staticmethod
    def course_default(day: float = 24 * 3600.0,
                       final_week_count: int = 25) -> List[SchedulePhase]:
        return [
            SchedulePhase(0.0, "g2.2xlarge", 4, max_concurrent_jobs=1,
                          label="baseline experimentation (G2/K40)"),
            SchedulePhase(14 * day, "p2.xlarge", 10, max_concurrent_jobs=4,
                          label="development (P2/K80, multi-job)"),
            SchedulePhase(28 * day, "p2.xlarge", final_week_count,
                          max_concurrent_jobs=1,
                          label="benchmarking week (P2/K80, single-job)"),
        ]

    def __init__(self, provisioner: Provisioner,
                 phases: Optional[List[SchedulePhase]] = None):
        self.provisioner = provisioner
        self.sim = provisioner.sim
        self.phases = sorted(phases or self.course_default(),
                             key=lambda p: p.start_time)
        self.applied: List[SchedulePhase] = []

    def run(self):
        """Kernel process applying each phase at its start time."""
        origin = self.sim.now
        for phase in self.phases:
            wait = origin + phase.start_time - self.sim.now
            if wait > 0:
                yield self.sim.timeout(wait)
            self._apply(phase)

    def _apply(self, phase: SchedulePhase) -> None:
        # Replace the current fleet with the phase's fleet.
        self.provisioner.terminate_all()
        self.provisioner.launch_many(
            phase.count, instance_type=phase.instance_type,
            max_concurrent_jobs=phase.max_concurrent_jobs)
        self.applied.append(phase)


@dataclass
class AutoscalerPolicy:
    """Reactive scaling knobs."""

    min_instances: int = 1
    max_instances: int = 30
    #: Legacy queue-depth trigger, superseded by utilisation + wait EWMA
    #: (kept so saved policies keep constructing).
    scale_out_per_worker: float = 2.0
    #: Scale in when the whole queue is below this and utilisation is low.
    scale_in_queue_depth: int = 0
    scale_in_idle_fraction: float = 0.5
    check_interval: float = 60.0
    instance_type: str = "p2.xlarge"
    max_concurrent_jobs: int = 1
    #: Instances added per scale-out decision.
    step: int = 2
    #: Minimum seconds between scale-in actions (billing hysteresis).
    scale_in_cooldown: float = 1800.0
    #: Scale out when live-slot occupancy reaches this fraction with work
    #: still queued (raw depth lies when jobs are long; busy slots don't).
    scale_out_utilization: float = 0.85
    #: Scale out while the scheduler's queue-wait EWMA exceeds this many
    #: seconds; scale-in additionally requires the EWMA to have cooled
    #: below half of it (hysteresis).
    target_wait_seconds: float = 60.0


class Autoscaler:
    """Periodically sizes the fleet to slot utilisation + queue-wait EWMA.

    Each tick gathers a :meth:`signals` snapshot, feeds it to the pure
    decision function :meth:`_decide`, and applies the result.  Crashed
    workers (fault injection, spot reclaim) are reaped first so their
    instances stop counting toward the floor and billing.
    """

    def __init__(self, system, provisioner: Provisioner,
                 policy: Optional[AutoscalerPolicy] = None):
        self.system = system
        self.provisioner = provisioner
        self.policy = policy or AutoscalerPolicy()
        self.sim = system.sim
        self.decisions: List[dict] = []
        self._last_scale_in = -float("inf")
        self._stopped = False

    def stop(self) -> None:
        self._stopped = True

    def run(self):
        """Kernel process: evaluate the policy every ``check_interval``."""
        while not self._stopped:
            self._reap_crashed()
            signals = self.signals()
            decision = self._decide(signals)
            if decision is not None:
                self._apply(decision, signals)
            yield self.sim.timeout(self.policy.check_interval)

    # -- signal gathering ---------------------------------------------------

    def signals(self) -> dict:
        """One snapshot of everything :meth:`_decide` looks at."""
        live = self.provisioner.live_instances
        workers = [i.worker for i in live if i.worker is not None]
        healthy = [w for w in workers if w.is_running]
        active = sum(w.active_jobs for w in healthy)
        capacity = sum(w.slot_count for w in healthy)
        sched = getattr(self.system, "scheduler", None)
        return {
            "now": self.sim.now,
            "n_live": len(live),
            "n_healthy": len(healthy),
            "depth": self.system.queue_depth(),
            "active": active,
            "capacity": capacity,
            "occupancy": active / capacity if capacity else 0.0,
            "wait_ewma": sched.wait_ewma() if sched is not None else 0.0,
            "since_scale_in": self.sim.now - self._last_scale_in,
        }

    def _reap_crashed(self) -> int:
        """Terminate instances whose worker died outside the provisioner.

        A fault-injected crash stops the worker but leaves the instance
        "live" (and billing); reaping it lets the min-floor rule replace
        the lost capacity on the same tick.
        """
        reaped = 0
        for inst in self.provisioner.live_instances:
            worker = inst.worker
            if worker is not None and not worker.is_running:
                self.provisioner.terminate(inst)
                reaped += 1
        if reaped:
            self._record_decision("reap-crashed", reaped, self.signals())
        return reaped

    # -- the decision function ----------------------------------------------

    def _decide(self, signals: dict) -> Optional[tuple]:
        """Pure policy: signals snapshot → ``(action, count)`` or None.

        Rules, first match wins:

        1. **min floor** — below ``min_instances`` live instances
           (booting ones count; reaped ones no longer do): launch the
           deficit.
        2. **scale out** (capped at ``max_instances``, work queued):
           cold start (zero usable slots anywhere), occupancy at/over
           ``scale_out_utilization``, or queue-wait EWMA over
           ``target_wait_seconds``.
        3. **scale in** — queue at/below ``scale_in_queue_depth``,
           occupancy at/below ``1 - scale_in_idle_fraction``, wait EWMA
           cooled below half the target, and the cooldown elapsed.
        """
        policy = self.policy
        n_live = signals["n_live"]
        depth = signals["depth"]
        if n_live < policy.min_instances:
            return ("ensure-min", policy.min_instances - n_live)
        if n_live < policy.max_instances and depth > 0:
            room = policy.max_instances - n_live
            if signals["capacity"] == 0 \
                    or signals["occupancy"] >= policy.scale_out_utilization \
                    or signals["wait_ewma"] > policy.target_wait_seconds:
                return ("scale-out", min(policy.step, room))
        if (n_live > policy.min_instances
                and depth <= policy.scale_in_queue_depth
                and signals["capacity"] > 0
                and signals["occupancy"] <= 1 - policy.scale_in_idle_fraction
                and signals["wait_ewma"] < policy.target_wait_seconds / 2
                and signals["since_scale_in"] >= policy.scale_in_cooldown):
            return ("scale-in",
                    min(policy.step, n_live - policy.min_instances))
        return None

    def _apply(self, decision: tuple, signals: dict) -> None:
        action, count = decision
        if action in ("ensure-min", "scale-out"):
            self.provisioner.launch_many(
                count, instance_type=self.policy.instance_type,
                max_concurrent_jobs=self.policy.max_concurrent_jobs)
            self._record_decision(action, count, signals)
        elif action == "scale-in":
            removed = self.provisioner.terminate_count(count)
            if removed:
                self._last_scale_in = self.sim.now
                self._record_decision(action, removed, signals)

    def _record_decision(self, action: str, count: int,
                         signals: dict) -> None:
        self.decisions.append({
            "t": self.sim.now,
            "action": action,
            "count": count,
            "queue_depth": signals["depth"],
            "live_before": signals["n_live"],
            "occupancy": signals["occupancy"],
            "wait_ewma": signals["wait_ewma"],
        })
        events = getattr(self.system, "events", None)
        if events is not None:
            events.emit("autoscale.decision", action=action, count=count,
                        queue_depth=signals["depth"],
                        live_before=signals["n_live"],
                        occupancy=round(signals["occupancy"], 4),
                        wait_ewma=round(signals["wait_ewma"], 4))
