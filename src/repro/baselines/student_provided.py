"""Student-provided machines (Table I row 1).

Each student runs on their own hardware: total configurability and natural
isolation (machines are physically separate), trivially "scalable"
(every enrolee brings a machine) — but 70% of the fall-2016 class had no
CUDA-capable GPU (§II), and every student's environment differs, so graded
runs are not uniform.
"""

from __future__ import annotations

from repro.baselines.base import BaselineJob, SubmissionOutcome, SubmissionSystem


class StudentProvidedSystem(SubmissionSystem):
    name = "Student-Provided"
    remote_accessible_without_hardware = False

    def __init__(self, gpu_ownership_rate: float = 0.30):
        #: §II: "70% of the 176 students ... did not have access to a
        #: CUDA-programmable GPU."
        self.gpu_ownership_rate = gpu_ownership_rate
        self._machines = 0

    def submit(self, job: BaselineJob) -> SubmissionOutcome:
        self._machines += 1
        # Deterministic "does this student own a GPU" from the owner name.
        owns_gpu = (hash_fraction(job.owner) < self.gpu_ownership_rate)
        if job.needs_gpu and not owns_gpu:
            return SubmissionOutcome(
                accepted=False, had_gpu=False,
                notes="student has no CUDA-capable GPU")
        return SubmissionOutcome(
            accepted=True,
            ran_requested_commands=True,      # it's their machine
            used_requested_image=True,
            escaped_sandbox=False,            # nothing shared to escape to
            enforced_grading_procedure=False,  # every machine differs
            had_gpu=owns_gpu,
        )

    def add_capacity(self, units: int) -> int:
        return units  # each new student brings hardware

    def capacity(self) -> int:
        return self._machines


def hash_fraction(name: str) -> float:
    import hashlib

    digest = hashlib.sha256(name.encode()).digest()
    return int.from_bytes(digest[:4], "big") / 2 ** 32
