"""Additional interactive-session coverage."""

import pytest

from repro.core.config import WorkerConfig
from repro.core.interactive import InteractiveSession, reset_session_ids
from repro.core.system import RaiSystem

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


@pytest.fixture(autouse=True)
def _reset_ids():
    reset_session_ids()


@pytest.fixture
def system():
    s = RaiSystem(seed=77)
    s.add_worker(WorkerConfig(enable_interactive=True))
    return s


class TestSessionVariants:
    def test_session_without_project_upload(self, system):
        client = system.new_client(team="t")
        session = InteractiveSession(client, upload_project=False)

        def student(sim):
            yield from session.start()
            no_src = yield from session.run("ls /src")
            data = yield from session.run("ls /data")
            yield from session.close()
            return no_src, data

        no_src, data = system.run(student(system.sim))
        assert no_src.exit_code != 0          # nothing mounted at /src
        assert "model.hdf5" in data.stdout    # image data still there

    def test_sequential_sessions_reuse_worker(self, system):
        client = system.new_client(team="t")
        client.stage_project(FILES)

        def one_session(sim, marker):
            session = InteractiveSession(client)
            yield from session.start()
            outcome = yield from session.run(f"echo {marker}")
            yield from session.close()
            return outcome

        def student(sim):
            first = yield from one_session(sim, "first")
            yield sim.timeout(40)   # respect the session rate limit
            second = yield from one_session(sim, "second")
            return first, second

        first, second = system.run(student(system.sim))
        assert first.stdout == "first\n"
        assert second.stdout == "second\n"
        rows = system.db.collection("interactive_sessions").find({})
        assert rows.count() == 2

    def test_sessions_rate_limited_per_team(self, system):
        client = system.new_client(team="t")
        client.stage_project(FILES)

        def student(sim):
            first = InteractiveSession(client)
            yield from first.start()
            yield from first.close()
            # Force an immediate retry (the first start consumed >30 s of
            # simulated time on the image pull, so rewind the limiter).
            system.rate_limiter._last_accepted["interactive:t"] = sim.now
            second = InteractiveSession(client)
            transcript = yield from second.start()
            return transcript

        transcript = system.run(student(system.sim))
        assert transcript.status == "rejected"
        assert "rate limited" in transcript.error

    def test_oom_in_session_ends_it(self, system):
        client = system.new_client(team="t")
        client.stage_project({
            "main.cu": "// @rai-sim quality=0.5 mem_gb=32\n",
            "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
        })
        session = InteractiveSession(client)

        def student(sim):
            yield from session.start()
            yield from session.run("cmake /src && make")
            hog = yield from session.run(
                "./ece408 /data/test10.hdf5 /data/model.hdf5")
            transcript = yield from session.close()
            return hog, transcript

        hog, transcript = system.run(student(system.sim))
        assert hog.exit_code == 137
        assert transcript.end_reason == "container-oom-killed"

    def test_transcript_records_outcomes_in_order(self, system):
        client = system.new_client(team="t")
        client.stage_project(FILES)
        session = InteractiveSession(client)

        def student(sim):
            yield from session.start()
            for command in ("pwd", "ls /data", "hostname"):
                yield from session.run(command)
            return (yield from session.close())

        transcript = system.run(student(system.sim))
        assert [o.command for o in transcript.outcomes] == \
            ["pwd", "ls /data", "hostname"]
        assert all(o.exit_code == 0 for o in transcript.outcomes)
