"""Write-ahead log framing and torn-tail edge cases."""

import pytest

from repro.durability.wal import HEADER, WriteAheadLog, decode_record, encode_record
from repro.errors import DurabilityError, SimulatedCrash
from repro.faults import CrashPoint, tear_tail

pytestmark = pytest.mark.durability


class TestFraming:
    def test_roundtrip(self):
        record = {"op": "db_insert", "t": 1.5, "doc": {"_id": "x", "n": [1, 2]}}
        assert decode_record(encode_record(record)) == record

    def test_crc_detects_flipped_byte(self):
        line = bytearray(encode_record({"op": "mb_ack", "id": "msg-000001"}))
        line[-3] ^= 0xFF
        with pytest.raises(DurabilityError):
            decode_record(bytes(line))

    def test_short_payload_detected(self):
        line = encode_record({"op": "mb_ack"})
        with pytest.raises(DurabilityError):
            decode_record(line[:-5] + b"\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(DurabilityError):
            decode_record(b"not a wal line\n")


class TestWriteAheadLog:
    def test_empty_log_replays_to_nothing(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        records, stats = wal.replay()
        assert records == []
        assert stats == {"records": 0, "torn": 0, "discarded": 0,
                         "bytes": len(HEADER)}

    def test_append_then_replay(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        for i in range(5):
            wal.append({"op": "tick", "n": i})
        records, stats = wal.replay()
        assert [r["n"] for r in records] == [0, 1, 2, 3, 4]
        assert stats["records"] == 5 and stats["torn"] == 0

    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append({"op": "a"})
        wal.close()
        wal2 = WriteAheadLog(path)
        wal2.append({"op": "b"})
        records, _ = wal2.replay()
        assert [r["op"] for r in records] == ["a", "b"]

    def test_torn_final_record_discarded(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append({"op": "keep", "n": 1})
        wal.append({"op": "keep", "n": 2})
        wal.append({"op": "lost", "pad": "x" * 100})
        wal.close()
        tear_tail(path, 40)  # cut into the final record
        records, stats = WriteAheadLog(path).replay()
        assert [r["op"] for r in records] == ["keep", "keep"]
        assert stats["torn"] == 1 and stats["discarded"] == 1

    def test_mid_file_corruption_stops_replay(self, tmp_path):
        """Damage *before* the tail discards everything after it — replay
        never resynchronises past a bad frame (it cannot trust what
        follows)."""
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        for i in range(4):
            wal.append({"op": "r", "n": i})
        wal.close()
        with open(path, "rb") as fh:
            lines = fh.read().split(b"\n")
        lines[2] = lines[2][:-1] + b"?"  # corrupt record n=1
        with open(path, "wb") as fh:
            fh.write(b"\n".join(lines))
        records, stats = WriteAheadLog(path).replay()
        assert [r["n"] for r in records] == [0]
        assert stats["torn"] == 1 and stats["discarded"] == 3

    def test_reset_truncates_to_header(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append({"op": "gone"})
        wal.reset()
        assert wal.size_bytes == len(HEADER)
        wal.append({"op": "kept"})
        records, _ = wal.replay()
        assert [r["op"] for r in records] == ["kept"]

    def test_wrong_file_rejected(self, tmp_path):
        path = str(tmp_path / "notawal")
        with open(path, "w") as fh:
            fh.write("something else entirely\n")
        with pytest.raises(DurabilityError):
            WriteAheadLog(path).replay()

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        wal.close()
        with pytest.raises(DurabilityError):
            wal.append({"op": "late"})


class TestCrashPoint:
    def test_crash_point_tears_the_nth_append(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.fault_hook = CrashPoint(after_records=2)
        wal.append({"op": "a"})
        wal.append({"op": "b"})
        with pytest.raises(SimulatedCrash):
            wal.append({"op": "dies", "pad": "y" * 50})
        assert wal.closed
        records, stats = WriteAheadLog(path).replay()
        assert [r["op"] for r in records] == ["a", "b"]
        assert stats["torn"] == 1

    def test_zero_tear_bytes_loses_record_whole(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.fault_hook = CrashPoint(after_records=1, tear_bytes=0)
        wal.append({"op": "kept"})
        with pytest.raises(SimulatedCrash):
            wal.append({"op": "vanishes"})
        records, stats = WriteAheadLog(path).replay()
        assert [r["op"] for r in records] == ["kept"]
        # Nothing of the fatal record reached disk — clean tail, no tear.
        assert stats["torn"] == 0
