"""S3-style object storage.

The paper uses Amazon S3 as the file server (§IV): student project archives
are uploaded before a job runs, workers upload the job's ``/build``
directory when it finishes, and instructors later download everything
tagged as a final submission.  Uploaded files "can be configured to have a
particular lifetime after which they get deleted" — the course set 1–3
months since last use.

This subpackage reproduces that contract: buckets, keyed immutable objects
with MD5 etags and metadata, prefix listing, multipart uploads, presigned
GET/PUT tokens, and lifecycle rules with an expiry sweeper.
"""

from repro.storage.objects import StoredObject, compute_etag
from repro.storage.chunkstore import (
    DEFAULT_CHUNK_BYTES,
    ChunkRef,
    ChunkStore,
    ChunkedObject,
    Manifest,
    split_chunks,
)
from repro.storage.buildcache import BuildCache, CacheEntry, image_cache_key
from repro.storage.lifecycle import LifecycleRule
from repro.storage.object_store import Bucket, ObjectStore
from repro.storage.multipart import MultipartUpload
from repro.storage.presign import PresignedToken

__all__ = [
    "StoredObject",
    "compute_etag",
    "DEFAULT_CHUNK_BYTES",
    "ChunkRef",
    "ChunkStore",
    "ChunkedObject",
    "Manifest",
    "split_chunks",
    "BuildCache",
    "CacheEntry",
    "image_cache_key",
    "LifecycleRule",
    "Bucket",
    "ObjectStore",
    "MultipartUpload",
    "PresignedToken",
]
