"""Secondary and unique indexes.

Indexes map a field's value to the documents holding it, giving equality
lookups an O(1) fast path and letting unique constraints (e.g. one
ranking row per team) be enforced at insert/update time.  Each entry
keeps its document ids in insertion order, so index-served reads return
documents in the same order a collection scan would — no ``doc-10`` /
``doc-2`` string-sort interleaving.

:class:`SortedIndex` additionally maintains its keys in sorted order so
the query planner can serve ``$gt/$gte/$lt/$lte`` range predicates from
a bisect over the key list instead of a full collection scan.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Dict, List, Optional, Tuple

from repro.docdb.query import get_path, _MISSING
from repro.errors import DuplicateKeyError


def _index_key(value: Any):
    """A hashable stand-in for arbitrary JSON values."""
    if isinstance(value, list):
        return ("__list__", tuple(_index_key(v) for v in value))
    if isinstance(value, dict):
        return ("__dict__", tuple(sorted(
            (k, _index_key(v)) for k, v in value.items())))
    return value


class Index:
    """An index over one dotted field path (hash / equality index)."""

    kind = "hash"
    supports_range = False

    def __init__(self, field: str, unique: bool = False):
        self.field = field
        self.unique = unique
        # key -> ordered set of doc ids (dict preserves insertion order).
        self._entries: Dict[Any, Dict[Any, None]] = {}

    def add(self, doc_id: Any, doc: dict) -> None:
        value = get_path(doc, self.field)
        if value is _MISSING:
            return
        key = _index_key(value)
        holders = self._entries.get(key)
        if holders is None:
            holders = self._entries[key] = {}
            self._key_added(key)
        if self.unique and holders and doc_id not in holders:
            raise DuplicateKeyError(
                f"duplicate value {value!r} for unique index on "
                f"{self.field!r}")
        holders[doc_id] = None

    def remove(self, doc_id: Any, doc: dict) -> None:
        value = get_path(doc, self.field)
        if value is _MISSING:
            return
        key = _index_key(value)
        holders = self._entries.get(key)
        if holders is not None:
            holders.pop(doc_id, None)
            if not holders:
                del self._entries[key]
                self._key_removed(key)

    def lookup(self, value: Any) -> List[Any]:
        """Document ids with exactly this value, in insertion order."""
        return list(self._entries.get(_index_key(value), ()))

    def check_would_conflict(self, doc_id: Any, doc: dict) -> None:
        """Raise if adding ``doc`` would break uniqueness (pre-flight)."""
        if not self.unique:
            return
        value = get_path(doc, self.field)
        if value is _MISSING:
            return
        holders = self._entries.get(_index_key(value), {})
        if set(holders) - {doc_id}:
            raise DuplicateKeyError(
                f"duplicate value {value!r} for unique index on "
                f"{self.field!r}")

    # Hooks the sorted variant uses to maintain key order.
    def _key_added(self, key: Any) -> None:
        pass

    def _key_removed(self, key: Any) -> None:
        pass

    def __len__(self) -> int:
        return len(self._entries)


#: Range operators a sorted index can serve.
RANGE_OPS = ("$gt", "$gte", "$lt", "$lte")


def _rank_key(key: Any) -> Optional[Tuple[int, Any]]:
    """Totally-ordered wrapper for sortable keys; None if unsortable.

    Numbers sort below strings (a simplified BSON type order); lists,
    dicts, None, and bools-as-bools never satisfy a range predicate under
    the query language's ``_ordered`` rules beyond numeric coercion, so
    non-(number|string) keys stay out of the sorted key list — a range
    lookup could never return them anyway.
    """
    if isinstance(key, bool):
        return (0, int(key))
    if isinstance(key, (int, float)):
        return (0, key)
    if isinstance(key, str):
        return (1, key)
    return None


class SortedIndex(Index):
    """An index whose keys are kept sorted for range lookups."""

    kind = "sorted"
    supports_range = True

    def __init__(self, field: str, unique: bool = False):
        super().__init__(field, unique=unique)
        # Sorted list of (rank, key) pairs for the sortable keys.
        self._sorted: List[Tuple[int, Any]] = []

    def _key_added(self, key: Any) -> None:
        rk = _rank_key(key)
        if rk is not None:
            insort(self._sorted, rk)

    def _key_removed(self, key: Any) -> None:
        rk = _rank_key(key)
        if rk is None:
            return
        i = bisect_left(self._sorted, rk)
        if i < len(self._sorted) and self._sorted[i] == rk:
            del self._sorted[i]

    def range_ids(self, ops: Dict[str, Any]) -> Optional[List[Any]]:
        """Doc ids whose key satisfies every range predicate in ``ops``.

        Returns None when the predicates cannot be served (unsortable
        operand) — the caller must fall back to a scan.  Cost is
        O(log keys + matches), not O(documents).
        """
        ranks = set()
        for op, operand in ops.items():
            rk = _rank_key(operand)
            if rk is None:
                return None
            ranks.add(rk[0])
        if len(ranks) > 1:
            return []      # e.g. $gt 5 with $lt "z": nothing satisfies both
        rank = ranks.pop()
        lo = bisect_left(self._sorted, (rank,))
        hi = bisect_left(self._sorted, (rank + 1,))
        for op, operand in ops.items():
            rk = (rank, operand)
            if op == "$gt":
                lo = max(lo, bisect_right(self._sorted, rk))
            elif op == "$gte":
                lo = max(lo, bisect_left(self._sorted, rk))
            elif op == "$lt":
                hi = min(hi, bisect_left(self._sorted, rk))
            elif op == "$lte":
                hi = min(hi, bisect_right(self._sorted, rk))
        ids: List[Any] = []
        for _, key in self._sorted[lo:hi]:
            ids.extend(self._entries.get(key, ()))
        return ids
