"""The simulator core: event calendar and generator-based processes."""

from __future__ import annotations

import heapq
from itertools import count
from types import GeneratorType
from typing import Any, Generator, Optional

from repro.errors import EmptySchedule, Interrupt, SimulationError, StopSimulation
from repro.sim.events import PENDING, AllOf, AnyOf, Event, Timeout

#: Priority for events that must run before same-time normal events
#: (used by interrupts so they preempt the interrupted process's own resume).
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class Simulator:
    """A deterministic discrete-event simulator.

    Events are totally ordered by ``(time, priority, sequence_number)``, so
    two runs with identical inputs produce identical traces — the property
    all benchmark reproducibility in this package rests on.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (simulated seconds).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []  # heap of (time, priority, seq, event)
        self._seq = count()
        self._active_process: Optional[Process] = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional["Process"]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> "Process":
        """Start a new process from a generator function's generator."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = PRIORITY_NORMAL) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        heapq.heappush(self._queue, (self._now + delay, priority,
                                     next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no more events scheduled") from None

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure: surface it rather than losing it.
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (an event, a time, or exhaustion).

        - ``until is None``: run until no events remain.
        - ``until`` is a number: run until simulated time reaches it.
        - ``until`` is an :class:`Event`: run until it is processed and
          return its value (raising its exception if it failed).
        """
        if until is None:
            stop_event = None
            horizon = None
        elif isinstance(until, Event):
            stop_event = until
            horizon = None
            if until.processed:
                if until.ok:
                    return until.value
                raise until.value
            until.callbacks.append(_stop_simulation)
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until ({horizon}) must not be before now ({self._now})")
            stop_event = None

        try:
            while True:
                if horizon is not None:
                    nxt = self.peek()
                    if nxt > horizon:
                        self._now = horizon
                        return None
                try:
                    self.step()
                except EmptySchedule:
                    if stop_event is not None:
                        raise SimulationError(
                            "ran out of events before the awaited event "
                            "triggered") from None
                    if horizon is not None:
                        self._now = horizon
                    return None
        except StopSimulation as stop:
            event = stop.value
            if event.ok:
                return event.value
            raise event.value

    def run_process(self, generator: Generator) -> Any:
        """Convenience: start a process and run until it finishes."""
        return self.run(until=self.process(generator))


def _stop_simulation(event: Event) -> None:
    if not event._ok:
        event._defused = True
    raise StopSimulation(event)


class Process(Event):
    """A coroutine executing in simulated time.

    A process wraps a generator that yields :class:`Event` objects; the
    kernel resumes the generator with each event's value (or throws the
    event's exception into it).  The process itself is an event that
    triggers when the generator returns, carrying its return value.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, sim: Simulator, generator: Generator, name: str = None):
        if not isinstance(generator, GeneratorType):
            raise TypeError(
                f"process() requires a generator, got {type(generator).__name__}")
        super().__init__(sim)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or generator.__name__
        # Bootstrap: resume once at the current time.
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        sim._schedule(init)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.errors.Interrupt` into the process.

        The interrupt is delivered as an urgent event so that it preempts a
        pending resume scheduled for the same simulated instant.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self is self.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.sim)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.sim._schedule(event, priority=PRIORITY_URGENT)

    # -- internals ----------------------------------------------------------

    def _resume(self, event: Event) -> None:
        if self.triggered:
            # Process already ended (e.g. interrupt raced with completion).
            return
        self.sim._active_process = self

        while True:
            # Detach from whatever we were waiting on.
            if (self._target is not None and not self._target.processed
                    and self._target.callbacks is not None
                    and self._resume in self._target.callbacks):
                self._target.callbacks.remove(self._resume)
            self._target = None

            try:
                if event._ok:
                    target = self._generator.send(event._value)
                else:
                    event._defused = True
                    target = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.sim._schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.sim._schedule(self)
                break

            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}")
                try:
                    self._generator.throw(exc)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                except BaseException as err:
                    self._ok = False
                    self._value = err
                self.sim._schedule(self)
                break
            if target.sim is not self.sim:
                raise SimulationError("yielded event belongs to another simulator")

            if target.processed:
                # Already resolved: loop around immediately with its outcome.
                event = target
                continue

            self._target = target
            target.callbacks.append(self._resume)
            break

        self.sim._active_process = None

    def __repr__(self):
        state = "alive" if self.is_alive else ("ok" if self._ok else "failed")
        return f"<Process {self.name!r} {state}>"
