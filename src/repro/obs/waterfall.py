"""Waterfall rendering and critical-path analysis of one trace.

``rai trace <job_id>`` renders this: every span as a bar positioned on
the trace's time axis (Ray-timeline style), plus a critical-path table
naming the stage that dominated end-to-end latency — the question the
paper's staff could only answer with wall-clock guesswork.

Reuses the text primitives of :mod:`repro.analysis.report`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.report import format_duration, render_table
from repro.obs.span import Span
from repro.obs.store import Trace


def sorted_spans(trace: Trace) -> List[Span]:
    """Spans in (start, creation) order — creation order breaks ties so
    renders are deterministic."""
    return sorted(trace.spans,
                  key=lambda s: (s.start_time, s.span_id))


def _effective_end(span: Span, trace_end: float) -> float:
    return span.end_time if span.end_time is not None else trace_end


def span_depths(trace: Trace) -> Dict[str, int]:
    """Tree depth per span id (roots and orphaned parents at depth 0)."""
    depths: Dict[str, int] = {}
    by_id = {s.span_id: s for s in trace.spans}
    for span in sorted_spans(trace):
        depth = 0
        seen = set()
        cursor = span
        while cursor.parent_id in by_id and cursor.parent_id not in seen:
            seen.add(cursor.span_id)
            cursor = by_id[cursor.parent_id]
            depth += 1
        depths[span.span_id] = depth
    return depths


# -- critical path ----------------------------------------------------------


def _subtree_extents(trace: Trace, trace_end: float) -> Dict[str, list]:
    """Per-span ``[start, end]`` covering the span *and* its descendants.

    Messaging spans routinely outlive their parents (``worker.job`` ends
    long after the ``broker.deliver`` that spawned it), so attribution
    has to look at subtree extents, not own durations.  Spans are stored
    in creation order (parents first), so one reverse pass folds every
    child's extent into its parent's.
    """
    extents = {s.span_id: [s.start_time, _effective_end(s, trace_end)]
               for s in trace.spans}
    for span in reversed(trace.spans):
        parent = extents.get(span.parent_id)
        if parent is not None:
            child = extents[span.span_id]
            parent[0] = min(parent[0], child[0])
            parent[1] = max(parent[1], child[1])
    return extents


def critical_path(trace: Trace) -> List[Span]:
    """Root-to-leaf chain of latest-finishing spans.

    In a fork-join trace the parent's end time is determined by whichever
    child (subtree) finishes last; following that child recursively
    yields the chain of spans end-to-end latency actually waited on.
    """
    root = trace.root()
    if root is None:
        return []
    extents = _subtree_extents(trace, trace.end_time())
    path = [root]
    cursor = root
    while True:
        children = trace.children_of(cursor)
        if not children:
            break
        cursor = max(children,
                     key=lambda s: (extents[s.span_id][1], s.span_id))
        path.append(cursor)
    return path


def exclusive_times(trace: Trace) -> Dict[str, float]:
    """Per-span self time: duration minus time covered by child subtrees.

    A child's whole subtree counts against the parent (a ``client.publish``
    that returns in 0 ms but whose delivery chain runs the job must not
    leave the wait attributed to the parent); overlapping child subtrees
    are merged so concurrent children are not double-counted, and clamping
    at zero keeps the attribution conservative (a stage is only
    "dominant" on time no child accounts for).
    """
    trace_end = trace.end_time()
    extents = _subtree_extents(trace, trace_end)
    out: Dict[str, float] = {}
    for span in trace.spans:
        own_start = span.start_time
        own_end = _effective_end(span, trace_end)
        intervals = []
        for child in trace.children_of(span):
            c_start, c_end = extents[child.span_id]
            c_start = max(c_start, own_start)
            c_end = min(c_end, own_end)
            if c_end > c_start:
                intervals.append((c_start, c_end))
        covered = 0.0
        cursor = own_start
        for c_start, c_end in sorted(intervals):
            if c_end > cursor:
                covered += c_end - max(c_start, cursor)
                cursor = c_end
        out[span.span_id] = max(0.0, (own_end - own_start) - covered)
    return out


def critical_path_report(trace: Trace) -> dict:
    """Structured summary: the path, per-stage self times, the dominant
    stage, and the trace's total duration."""
    path = critical_path(trace)
    self_times = exclusive_times(trace)
    stages = [{
        "name": span.name,
        "span_id": span.span_id,
        "duration_s": _effective_end(span, trace.end_time())
        - span.start_time,
        "self_s": self_times[span.span_id],
    } for span in path]
    dominant = max(stages, key=lambda s: s["self_s"]) if stages else None
    return {
        "trace_id": trace.trace_id,
        "total_s": trace.end_time() - trace.start_time(),
        "path": stages,
        "dominant": dominant,
    }


# -- rendering ----------------------------------------------------------


def render_waterfall(trace: Trace, width: int = 40) -> str:
    """ASCII waterfall: one row per span, bars on the trace time axis.

    Spans on the critical path are marked ``*``; span events appear as
    indented annotations under their span row.
    """
    spans = sorted_spans(trace)
    if not spans:
        return f"trace {trace.trace_id}: no spans"
    start = trace.start_time()
    end = trace.end_time()
    total = max(end - start, 1e-9)
    depths = span_depths(trace)
    on_path = {s.span_id for s in critical_path(trace)}

    name_width = max(len("  " * depths[s.span_id] + s.name)
                     for s in spans) + 2
    lines = [f"trace {trace.trace_id}  "
             f"(total {format_duration(end - start)}, "
             f"{len(spans)} spans, jobs: {', '.join(trace.job_ids) or '-'})"]
    for span in spans:
        s_end = _effective_end(span, end)
        left = int(round((span.start_time - start) / total * width))
        span_cells = max(1, int(round((s_end - span.start_time)
                                      / total * width)))
        span_cells = min(span_cells, width - min(left, width - 1))
        bar = " " * min(left, width - 1) + "█" * span_cells
        bar = bar[:width].ljust(width)
        label = ("  " * depths[span.span_id] + span.name).ljust(name_width)
        mark = "*" if span.span_id in on_path else " "
        status = "…" if span.is_open else \
            ("✗" if span.status == "error" else " ")
        lines.append(f"{mark}{label}|{bar}| "
                     f"{format_duration(s_end - span.start_time):>9} {status}")
        for t, event_name, fields in span.events:
            detail = ", ".join(f"{k}={v}" for k, v in fields.items())
            lines.append(f" {'':{name_width}}↳ {event_name}"
                         f" @ +{format_duration(t - start)}"
                         f"{'  (' + detail + ')' if detail else ''}")
    return "\n".join(lines)


def render_critical_path(trace: Trace) -> str:
    report = critical_path_report(trace)
    rows = [[stage["name"],
             format_duration(stage["duration_s"]),
             format_duration(stage["self_s"]),
             "◀ dominant" if report["dominant"] is not None
             and stage["span_id"] == report["dominant"]["span_id"] else ""]
            for stage in report["path"]]
    table = render_table(["stage", "duration", "self", ""], rows,
                         title=f"critical path "
                               f"(total {format_duration(report['total_s'])})")
    return table


def render_trace_report(trace: Trace) -> str:
    """The full ``rai trace`` output: waterfall + critical path."""
    return render_waterfall(trace) + "\n\n" + render_critical_path(trace)


def find_trace(store, job_or_trace_id: str) -> Optional[Trace]:
    """Resolve a CLI argument: job id first, then raw trace id."""
    trace = store.trace_for_job(job_or_trace_id)
    if trace is None:
        trace = store.trace(job_or_trace_id)
    return trace
