"""Unit tests for the manual schedule and autoscaler."""

import pytest

from repro.cluster import (
    Autoscaler,
    AutoscalerPolicy,
    ManualSchedule,
    Provisioner,
    SchedulePhase,
)
from repro.core.system import RaiSystem

DAY = 24 * 3600.0


@pytest.fixture
def system():
    return RaiSystem(seed=11)


class TestManualSchedule:
    def test_course_default_shape(self):
        phases = ManualSchedule.course_default()
        assert phases[0].instance_type == "g2.2xlarge"
        assert phases[1].count == 10 and phases[1].max_concurrent_jobs == 4
        assert phases[2].count == 25 and phases[2].max_concurrent_jobs == 1

    def test_phases_applied_at_times(self, system):
        provisioner = Provisioner(system)
        phases = [
            SchedulePhase(0.0, "g2.2xlarge", 2),
            SchedulePhase(1000.0, "p2.xlarge", 3),
        ]
        schedule = ManualSchedule(provisioner, phases)
        system.sim.process(schedule.run())
        system.run(until=500)
        live = provisioner.live_instances
        assert len(live) == 2
        assert all(i.instance_type.name == "g2.2xlarge" for i in live)
        system.run(until=2000)
        live = provisioner.live_instances
        assert len(live) == 3
        assert all(i.instance_type.name == "p2.xlarge" for i in live)
        assert len(schedule.applied) == 2


class TestAutoscaler:
    def make(self, system, **kwargs):
        provisioner = Provisioner(system)
        defaults = dict(min_instances=1, max_instances=6,
                        check_interval=30.0, scale_out_per_worker=1.0,
                        step=2, scale_in_cooldown=600.0)
        defaults.update(kwargs)
        policy = AutoscalerPolicy(**defaults)
        scaler = Autoscaler(system, provisioner, policy)
        system.sim.process(scaler.run())
        return provisioner, scaler

    def test_maintains_minimum(self, system):
        provisioner, _ = self.make(system, min_instances=2)
        system.run(until=300)
        assert len(provisioner.live_instances) == 2

    def test_scales_out_under_backlog(self, system):
        provisioner, scaler = self.make(system)
        # Flood the task queue directly (cheaper than full submissions).
        for i in range(20):
            system.broker.publish("rai", {"fake": i})
        system.broker.channel("rai/tasks")
        system.run(until=400)
        assert len(provisioner.live_instances) > 1
        assert any(d["action"] == "scale-out" for d in scaler.decisions)

    def test_respects_max(self, system):
        provisioner, _ = self.make(system, max_instances=3)
        for i in range(100):
            system.broker.publish("rai", {"fake": i})
        system.broker.channel("rai/tasks")
        system.run(until=2000)
        assert len(provisioner.live_instances) <= 3

    def test_scales_in_when_idle(self, system):
        provisioner, scaler = self.make(system, min_instances=1,
                                        scale_in_cooldown=60.0)
        provisioner.launch_many(4, instance_type="p2.xlarge")
        system.run(until=3600)
        assert len(provisioner.live_instances) < 5
        assert any(d["action"] == "scale-in" for d in scaler.decisions)

    def test_stop_halts_decisions(self, system):
        provisioner, scaler = self.make(system)
        system.run(until=100)
        scaler.stop()
        count = len(scaler.decisions)
        system.run(until=1000)
        assert len(scaler.decisions) == count
