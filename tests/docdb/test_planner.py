"""Query planner: indexed access paths, explain(), ordering pins."""

import pytest

from repro.docdb import DocumentDB
from repro.docdb.index import SortedIndex


@pytest.fixture
def jobs():
    db = DocumentDB()
    coll = db.collection("jobs")
    coll.create_index("job_id")
    for i in range(20):
        coll.insert_one({"_id": f"doc-{i}", "job_id": f"job-{i:03d}",
                         "status": "queued", "cost": float(i)})
    return coll


class TestExplain:
    def test_equality_on_indexed_field(self, jobs):
        plan = jobs.explain({"job_id": "job-007"})
        assert plan["path"] == "index"
        assert plan["index"] == "job_id"
        assert plan["index_kind"] == "equality"
        assert plan["docs_examined"] == 1
        assert plan["docs_total"] == 20

    def test_unindexed_field_scans(self, jobs):
        plan = jobs.explain({"status": "queued"})
        assert plan["path"] == "scan"
        assert plan["docs_examined"] == 20

    def test_cursor_explain_includes_match_count(self, jobs):
        cursor = jobs.find({"job_id": "job-003"})
        plan = cursor.explain()
        assert plan["docs_matched"] == 1
        assert plan["path"] == "index"

    def test_planner_stats_accumulate(self, jobs):
        before = dict(jobs.planner_stats)
        jobs.find({"job_id": "job-001"})
        jobs.find({"status": "queued"})
        assert jobs.planner_stats["index_hits"] == before["index_hits"] + 1
        assert jobs.planner_stats["scans"] == before["scans"] + 1


class TestWritePathUsesIndex:
    """Regression: _update/_delete used to scan every document even when
    the filter hit an indexed field."""

    def test_update_one_routes_through_index(self, jobs):
        modified = jobs.update_one({"job_id": "job-004"},
                                   {"$set": {"status": "running"}})
        assert modified == 1
        plan = jobs.last_plan
        assert plan["path"] == "index"
        assert plan["index"] == "job_id"
        assert plan["docs_examined"] == 1
        assert jobs.find_one({"job_id": "job-004"})["status"] == "running"

    def test_update_many_routes_through_index(self, jobs):
        jobs.insert_one({"job_id": "job-004"})  # duplicate key, 2 docs now
        modified = jobs.update_many({"job_id": "job-004"},
                                    {"$set": {"status": "done"}})
        assert modified == 2
        assert jobs.last_plan["docs_examined"] == 2

    def test_delete_routes_through_index(self, jobs):
        deleted = jobs.delete_one({"job_id": "job-009"})
        assert deleted == 1
        plan = jobs.last_plan
        assert plan["path"] == "index"
        assert plan["docs_examined"] == 1
        assert len(jobs) == 19

    def test_indexed_write_touches_fraction_of_collection(self, jobs):
        jobs.planner_stats["docs_examined"] = 0
        for i in range(20):
            jobs.update_one({"job_id": f"job-{i:03d}"},
                            {"$set": {"cost": 0.0}})
        # 20 indexed updates examine 20 docs total; the old scan path
        # examined 20 * 20 = 400.
        assert jobs.planner_stats["docs_examined"] == 20
        assert jobs.planner_stats["scans"] == 0


class TestCandidateOrdering:
    """Pin insertion-order candidates (the old code sorted ids by str,
    so doc-10 came before doc-2)."""

    def test_index_candidates_preserve_insertion_order(self):
        coll = DocumentDB().collection("c")
        coll.create_index("kind")
        for i in [1, 2, 10, 3]:
            coll.insert_one({"_id": f"doc-{i}", "kind": "x", "n": i})
        got = [d["_id"] for d in coll.find({"kind": "x"})]
        assert got == ["doc-1", "doc-2", "doc-10", "doc-3"]

    def test_scan_candidates_preserve_insertion_order(self):
        coll = DocumentDB().collection("c")
        for i in [5, 50, 6]:
            coll.insert_one({"_id": f"doc-{i}", "n": i})
        got = [d["_id"] for d in coll.find({})]
        assert got == ["doc-5", "doc-50", "doc-6"]

    def test_update_one_hits_first_inserted_match(self):
        coll = DocumentDB().collection("c")
        coll.create_index("kind")
        coll.insert_one({"_id": "doc-2", "kind": "x"})
        coll.insert_one({"_id": "doc-10", "kind": "x"})
        coll.update_one({"kind": "x"}, {"$set": {"hit": True}})
        assert coll.find_one({"_id": "doc-2"}).get("hit") is True
        assert coll.find_one({"_id": "doc-10"}).get("hit") is None


class TestSortedIndexRanges:
    @pytest.fixture
    def timed(self):
        coll = DocumentDB().collection("timed")
        coll.create_index("t", ordered=True)
        for i in range(10):
            coll.insert_one({"_id": f"doc-{i}", "t": float(i)})
        return coll

    def test_range_served_by_index(self, timed):
        plan = timed.explain({"t": {"$gte": 3.0, "$lt": 7.0}})
        assert plan["path"] == "index"
        assert plan["index_kind"] == "range"
        assert plan["docs_examined"] == 4
        got = [d["t"] for d in timed.find({"t": {"$gte": 3.0, "$lt": 7.0}})]
        assert got == [3.0, 4.0, 5.0, 6.0]

    def test_open_ended_range(self, timed):
        got = [d["t"] for d in timed.find({"t": {"$gt": 7.0}})]
        assert got == [8.0, 9.0]
        assert timed.last_plan["docs_examined"] == 2

    def test_range_results_in_key_order(self, timed):
        timed.insert_one({"_id": "late-low", "t": 0.5})
        got = [d["t"] for d in timed.find({"t": {"$lt": 2.0}})]
        assert got == [0.0, 0.5, 1.0]

    def test_hash_index_upgrades_to_sorted_in_place(self):
        coll = DocumentDB().collection("c")
        coll.create_index("t")
        coll.insert_one({"t": 1.0})
        coll.insert_one({"t": 2.0})
        upgraded = coll.create_index("t", ordered=True)
        assert isinstance(upgraded, SortedIndex)
        assert coll.explain({"t": {"$gte": 1.5}})["index_kind"] == "range"

    def test_unsortable_operand_falls_back_to_scan(self, timed):
        plan = timed.explain({"t": {"$gte": [1, 2]}})
        assert plan["path"] == "scan"

    def test_mixed_type_keys_still_answer_equality(self):
        coll = DocumentDB().collection("c")
        coll.create_index("k", ordered=True)
        coll.insert_one({"_id": "a", "k": 5})
        coll.insert_one({"_id": "b", "k": "five"})
        assert coll.find_one({"k": "five"})["_id"] == "b"
        assert [d["_id"] for d in coll.find({"k": {"$gte": 4}})] == ["a"]


class TestSubmissionsAutoIndex:
    def test_system_creates_job_id_index(self):
        from repro.core.system import RaiSystem
        system = RaiSystem.standard(num_workers=1, seed=1)
        submissions = system.db.collection("submissions")
        plan = submissions.explain({"job_id": "job-000001"})
        assert plan["path"] == "index"
        assert plan["index"] == "job_id"
