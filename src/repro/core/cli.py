"""A string-driven front end mirroring the ``rai`` command-line tool.

The real client is "an interactive command line tool used for project job
submissions" (§I).  This class gives examples and tests the same surface::

    cli = RaiCLI(system, client)
    print(cli.run_command("rai run"))
    print(cli.run_command("rai submit"))
    print(cli.run_command("rai ranking"))
    print(cli.run_command("rai history"))
    print(cli.run_command("rai version"))

Output is returned as text (what the student would see in their
terminal).
"""

from __future__ import annotations

import shlex
from typing import List

from repro._version import build_info
from repro.core.client import RaiClient
from repro.core.job import JobKind, JobResult


class RaiCLI:
    """Parses ``rai <subcommand>`` strings and drives a client."""

    SUBCOMMANDS = ("run", "submit", "ranking", "history", "download",
                   "stats", "top", "trace", "slo", "alerts", "events",
                   "shards", "cache", "usage", "cost", "checkpoint",
                   "restore", "version", "help")

    def __init__(self, system, client: RaiClient):
        self.system = system
        self.client = client

    def run_command(self, command_line: str) -> str:
        tokens = shlex.split(command_line)
        if tokens and tokens[0] == "rai":
            tokens = tokens[1:]
        if not tokens:
            return self._help()
        subcommand, *args = tokens
        handler = getattr(self, f"_cmd_{subcommand}", None)
        if handler is None:
            return (f"rai: unknown subcommand {subcommand!r}\n"
                    + self._help())
        return handler(args)

    # -- subcommands ------------------------------------------------------

    def _cmd_run(self, args: List[str]) -> str:
        result = self.system.run(self.client.submit(JobKind.RUN))
        return self._render_result(result)

    def _cmd_submit(self, args: List[str]) -> str:
        result = self.system.run(self.client.submit(JobKind.SUBMIT))
        text = self._render_result(result)
        if result.rank is not None:
            text += f"\nYour team is currently ranked #{result.rank}.\n"
        return text

    def _cmd_ranking(self, args: List[str]) -> str:
        rows = self.client.check_ranking(limit=30)
        if not rows:
            return "No submissions recorded yet.\n"
        lines = [f"{'Rank':>4}  {'Team':<24} {'Time (s)':>10}"]
        for row in rows:
            marker = "  ← you" if row["is_you"] else ""
            lines.append(f"{row['rank']:>4}  {row['team']:<24} "
                         f"{row['internal_time']:>10.3f}{marker}")
        return "\n".join(lines) + "\n"

    def _cmd_history(self, args: List[str]) -> str:
        if not self.client.history:
            return "No jobs submitted in this session.\n"
        lines = [f"{'Job':<12} {'Status':<10} {'Queue(s)':>9} "
                 f"{'Total(s)':>9}"]
        for result in self.client.history:
            queue = (f"{result.queue_wait:.1f}"
                     if result.queue_wait is not None else "-")
            total = (f"{result.turnaround:.1f}"
                     if result.turnaround is not None else "-")
            lines.append(f"{result.job_id:<12} {result.status.value:<10} "
                         f"{queue:>9} {total:>9}")
        return "\n".join(lines) + "\n"

    def _cmd_download(self, args: List[str]) -> str:
        """``rai download [N]`` — fetch the Nth (default last) job's
        /build archive into the local project under ``build/``."""
        finished = [r for r in self.client.history
                    if r.build_url is not None]
        if not finished:
            return "No completed jobs with build output.\n"
        try:
            index = int(args[0]) - 1 if args else len(finished) - 1
            result = finished[index]
        except (ValueError, IndexError):
            return f"rai download: no such job (1..{len(finished)})\n"
        blob = self.client.download_build(result)
        if blob is None:
            return "rai download: build output expired\n"
        from repro.vfs import unpack_tree

        written = unpack_tree(blob, self.client.project_fs,
                              f"/build-{result.job_id}")
        return (f"downloaded {len(blob)} bytes; extracted "
                f"{len(written)} files to build-{result.job_id}/\n")

    def _cmd_stats(self, args: List[str]) -> str:
        """``rai stats`` — operator health snapshot (instructor use)."""
        from repro.core.telemetry import health_report

        return health_report(self.system) + "\n"

    def _cmd_top(self, args: List[str]) -> str:
        """``rai top`` — one-screen scheduler/executor snapshot: queue
        depth, scheduler wait percentiles, and per-worker slot occupancy
        plus warm-pool hit rates, all read off the metrics registry."""
        import math

        from repro.analysis.report import render_table

        system = self.system
        wait = system.metrics.histogram("sched_queue_wait_seconds")

        def fmt(value) -> str:
            return "-" if value is None or (isinstance(value, float)
                                            and math.isnan(value)) \
                else f"{value:.1f}"

        sched = system.scheduler
        lines = [
            f"t={system.sim.now:.1f}s  "
            f"queue={system.queue_depth()}  "
            f"in-flight={int(system.metrics.gauge('in_flight').value)}  "
            f"dead-letters={system.broker.dead_letter_count()}",
            f"sched wait: p50={fmt(wait.percentile(50) if wait.count else None)}s  "
            f"p95={fmt(wait.percentile(95) if wait.count else None)}s  "
            f"ewma={fmt(sched.wait_ewma() if sched else None)}s  "
            f"dispatched={wait.count}",
            f"fleet: slots busy "
            f"{system.fleet_slot_utilization() * 100:.0f}%  "
            f"warm-pool hit rate "
            f"{system.fleet_pool_hit_rate() * 100:.0f}%",
        ]
        rows = []
        for worker in system.workers:
            pool = worker.pool
            rows.append([
                worker.id,
                "up" if worker.is_running else "down",
                f"{worker.active_jobs}/{worker.slot_count}",
                f"{worker.utilization() * 100:.0f}%",
                f"{pool.hits}/{pool.hits + pool.misses}",
                f"{pool.hit_rate() * 100:.0f}%",
                pool.pooled_count,
            ])
        table = render_table(
            ["worker", "state", "busy/slots", "util", "pool h/a",
             "hit%", "pooled"],
            rows, title="workers") if rows else "no workers"
        return "\n".join(lines) + "\n\n" + table + "\n"

    def _cmd_trace(self, args: List[str]) -> str:
        """``rai trace [job_id]`` — waterfall + critical path for a job
        (defaults to this client's most recent submission)."""
        from repro.obs.waterfall import find_trace, render_trace_report

        if args:
            target = args[0]
        else:
            submitted = [r for r in self.client.history
                         if r.job_id != "(unassigned)"]
            if not submitted:
                return "No jobs submitted in this session.\n"
            target = submitted[-1].job_id
        if not self.system.tracer.enabled:
            return "rai trace: tracing is disabled on this deployment\n"
        trace = find_trace(self.system.tracer.store, target)
        if trace is None:
            return (f"rai trace: no trace recorded for {target!r} "
                    f"(evicted, or submitted before tracing started?)\n")
        return render_trace_report(trace) + "\n"

    def _cmd_slo(self, args: List[str]) -> str:
        """``rai slo`` — judge every objective now and print burn rates.

        For a burning latency objective the exemplar trace ids of jobs
        that individually blew the threshold are listed; each resolves
        with ``rai trace <trace_id>`` (or via its job id).
        """
        from repro.analysis.report import render_table

        system = self.system
        statuses = system.slo_engine.evaluate()
        if not statuses:
            return "No SLOs configured on this deployment.\n"
        rows = []
        exemplar_lines: List[str] = []
        for status in statuses:
            spec = status.spec
            rows.append([
                spec.name,
                status.state,
                f"{spec.target:.0%}",
                f"{status.fast.burn_rate:.2f}x",
                f"{status.slow.burn_rate:.2f}x",
                int(status.fast.total),
            ])
            for exemplar in status.exemplars:
                trace = system.tracer.store.trace(exemplar.trace_id)
                jobs = ",".join(trace.job_ids) if trace is not None \
                    and trace.job_ids else "?"
                exemplar_lines.append(
                    f"  {spec.name}: {exemplar.value:.1f}s over "
                    f"{spec.threshold:g}s — trace {exemplar.trace_id} "
                    f"(job {jobs})")
        text = render_table(
            ["objective", "state", "target", "burn(fast)", "burn(slow)",
             "events"],
            rows, title=f"SLOs at t={system.sim.now:.0f}s")
        if exemplar_lines:
            text += ("\nexemplars (inspect with rai trace <id>):\n"
                     + "\n".join(exemplar_lines))
        return text + "\n"

    def _cmd_alerts(self, args: List[str]) -> str:
        """``rai alerts`` — evaluate all alert sources and list incidents.

        Active alerts first, then the most recent resolved incidents.
        """
        from repro.analysis.report import render_table

        system = self.system
        system.alerts.check(scrape=True)
        incidents = system.alerts.incidents()
        if not incidents:
            return "No alerts have fired on this deployment.\n"
        rows = []
        ordered = ([a for a in incidents if a.active]
                   + [a for a in reversed(incidents) if not a.active][:10])
        for alert in ordered:
            resolved = ("-" if alert.resolved_at is None
                        else f"{alert.resolved_at:.0f}s")
            rows.append([alert.name, alert.state, alert.severity,
                         f"{alert.fired_at:.0f}s", resolved, alert.summary])
        return render_table(
            ["alert", "state", "severity", "fired", "resolved", "summary"],
            rows, title=f"alerts at t={system.sim.now:.0f}s") + "\n"

    def _cmd_shards(self, args: List[str]) -> str:
        """``rai shards`` — per-partition control-plane snapshot.

        One row per partition: routed/queued/dispatched traffic, steal
        traffic in both directions, and the partition's worker fleet
        (count, occupancy, warm-pool hit rate).  Skew between rows is the
        signal the balancer and the shard gauges exist to surface.
        """
        from repro.analysis.report import render_table

        system = self.system
        shards = getattr(system, "shards", None)
        if shards is None:
            return ("This deployment is not sharded (shards=1); "
                    "the control plane is the single rai/tasks queue.\n")
        stats = shards.stats()
        shard_map = stats["shard_map"]
        rows = []
        for p in stats["partitions"]:
            wait = p["wait_ewma"]
            rows.append([
                p["topic"],
                p["routed"],
                p["queue_depth"],
                p["in_flight"],
                p["dispatched"],
                f"{p['steals_in'] + p['rebalanced_in']}/{p['steals_out']}",
                p["workers"],
                f"{p['occupancy'] * 100:.0f}%",
                f"{p['pool_hit_rate'] * 100:.0f}%",
                "-" if wait is None else f"{wait:.1f}s",
            ])
        header = (f"shard map: {shard_map['n_partitions']} partitions, "
                  f"hash seed {shard_map['seed']}, key team→username "
                  f"(steal threshold {stats['steal_threshold']})")
        table = render_table(
            ["partition", "routed", "queued", "in-flt", "dispatched",
             "steal in/out", "workers", "occ", "pool hit", "wait ewma"],
            rows, title=f"shards at t={system.sim.now:.0f}s")
        return header + "\n\n" + table + "\n"

    def _cmd_cache(self, args: List[str]) -> str:
        """``rai cache`` — build-artifact and chunk-fetch cache health.

        Occupancy, hit rates, and the hottest build-cache keys, plus one
        row per worker's chunk fetch cache.  The numbers the incremental
        build path lives or dies by.
        """
        from repro.analysis.report import render_table

        system = self.system
        cache = getattr(system, "build_cache", None)
        if cache is None:
            lines = ["build cache: disabled on this deployment"]
        else:
            stats = cache.stats()
            lines = [
                f"build cache: {stats['entries']} entries, "
                f"{stats['blobs']} blobs, "
                f"{stats['blob_bytes']}/{stats['max_bytes']} bytes "
                f"({stats['blob_bytes'] / stats['max_bytes'] * 100:.0f}% full)"
                if stats["max_bytes"] else
                f"build cache: {stats['entries']} entries, "
                f"{stats['blobs']} blobs, {stats['blob_bytes']} bytes",
                f"  lookups: {stats['hits']} hits / {stats['misses']} misses "
                f"(hit rate {stats['hit_rate'] * 100:.0f}%), "
                f"{stats['evictions']} evictions, "
                f"{stats['seen_sources']} sources seen",
            ]
            top = cache.top_entries(5)
            if top:
                rows = [[entry["key"], entry["command"][:40], entry["hits"],
                         entry["bytes"], entry["exit_code"]]
                        for entry in top]
                lines.append("")
                lines.append(render_table(
                    ["key", "command", "hits", "bytes", "exit"],
                    rows, title="hottest build-cache entries"))
        worker_rows = []
        for worker in system.workers:
            fetch = worker.fetch_cache_stats()
            worker_rows.append([
                worker.id,
                fetch["entries"],
                f"{fetch['bytes']}/{fetch['budget_bytes']}",
                fetch["hit_bytes"],
                fetch["miss_bytes"],
                f"{fetch['hit_rate'] * 100:.0f}%",
                fetch["evictions"],
            ])
        table = render_table(
            ["worker", "entries", "bytes/budget", "hit B", "miss B",
             "hit%", "evicted"],
            worker_rows, title="chunk fetch caches") if worker_rows \
            else "no workers"
        return "\n".join(lines) + "\n\n" + table + "\n"

    def _cmd_usage(self, args: List[str]) -> str:
        """``rai usage`` — the raw per-tenant meter, ranked by compute.

        What each team consumed (container/GPU seconds, bytes moved and
        stored, docdb/broker traffic) plus what the platform's caches
        saved it — before any pricing.
        """
        from repro.analysis.report import format_bytes, render_table

        meter = self.system.usage
        header = (f"course {meter.course}: {meter.tenant_count()} teams "
                  f"metered, {meter.total_records} records"
                  + ("" if meter.enabled else " (metering disabled)"))
        tenants = sorted(
            meter.tenants.items(),
            key=lambda item: -item[1].get("container_seconds", 0.0))
        if not tenants:
            return header + "\nno usage recorded\n"
        rows = []
        for tenant, res in tenants:
            rows.append([
                tenant,
                f"{res.get('container_seconds', 0.0):.1f}",
                f"{res.get('gpu_seconds', 0.0):.1f}",
                format_bytes(res.get("storage_bytes_uploaded", 0.0)),
                format_bytes(res.get("storage_bytes_downloaded", 0.0)),
                format_bytes(res.get("storage_bytes_stored", 0.0)),
                format_bytes(res.get("storage_bytes_saved_dedup", 0.0)),
                f"{res.get('build_seconds_saved', 0.0):.1f}",
                int(res.get("docdb_ops", 0.0)),
                int(res.get("broker_messages", 0.0)),
            ])
        table = render_table(
            ["team", "cont s", "gpu s", "up", "down", "stored",
             "dedup saved", "build s saved", "docdb", "msgs"],
            rows, title="usage by team")
        return header + "\n\n" + table + "\n"

    def _cmd_cost(self, args: List[str]) -> str:
        """``rai cost`` — priced attribution: who pays for what.

        Settles complete billing windows, then renders tenants ranked by
        attributed fleet cost, the idle/overhead remainder, the
        conservation check, and trace exemplars for the most expensive
        jobs.
        """
        from repro.analysis.report import render_table

        allocator = self.system.cost_allocator
        allocator.refresh()
        report = allocator.report()
        lines = [
            f"course {report['course']} @ t={report['at']:.0f}s: "
            f"fleet ${report['fleet_cost']:.4f} = "
            f"attributed ${report['attributed_cost']:.4f} "
            f"+ idle/overhead ${report['idle_cost']:.4f} "
            f"({report['windows_closed']} windows settled)",
        ]
        if not report["tenants"]:
            lines.append("no attributable usage recorded")
            return "\n".join(lines) + "\n"
        rows = []
        for entry in report["tenants"]:
            burn = entry["budget_burn"]
            budget = entry["budget_usd"]
            rows.append([
                entry["team"],
                f"{entry['container_seconds']:.1f}",
                f"{entry['gpu_seconds']:.1f}",
                f"${entry['cost_usd']:.4f}",
                f"{entry['share'] * 100:.1f}%",
                f"${budget:.2f}" if budget is not None else "-",
                f"{burn * 100:.0f}%" if burn is not None else "-",
            ])
        lines.append("")
        lines.append(render_table(
            ["team", "cont s", "gpu s", "cost", "share", "budget", "burn"],
            rows, title="cost by team"))
        exemplars = self.system.usage.top_jobs(5)
        if exemplars:
            rows = [[job.job_id, job.tenant,
                     f"{job.container_seconds:.1f}",
                     f"{job.gpu_seconds:.1f}",
                     job.trace_id or "-"]
                    for job in exemplars]
            lines.append("")
            lines.append(render_table(
                ["job", "team", "cont s", "gpu s", "trace"],
                rows, title="most expensive jobs (trace exemplars)"))
        return "\n".join(lines) + "\n"

    def _cmd_events(self, args: List[str]) -> str:
        """``rai events [job_id|type|tail N]`` — query the event log."""
        log = self.system.events
        if args and args[0] == "tail":
            n = int(args[1]) if len(args) > 1 else 20
            events = log.tail(n)
        elif args and "." in args[0]:
            events = log.query(prefix=args[0]) if args[0].endswith(".") \
                else log.query(type=args[0])
        elif args:
            events = log.events_for_job(args[0])
        else:
            events = log.tail(20)
        if not events:
            return "No matching events.\n"
        lines = []
        for event in events:
            tags = " ".join(f"{k}={v}" for k, v in event.fields.items())
            link = f" [trace {event.trace_id}]" if event.trace_id else ""
            lines.append(f"t={event.time:>10.1f}  {event.type:<22} "
                         f"{tags}{link}")
        stats = log.stats()
        lines.append(f"({len(events)} shown; {stats['emitted']} emitted, "
                     f"{stats['dropped']} dropped)")
        return "\n".join(lines) + "\n"

    def _cmd_checkpoint(self, args: List[str]) -> str:
        """``rai checkpoint [dir]`` — snapshot the deployment now.

        With a directory argument on a deployment that has no durability
        attached, attaches it first (instructor bootstrap); afterwards a
        bare ``rai checkpoint`` compacts into the same directory.
        """
        system = self.system
        if system.durability is None:
            if not args:
                return ("rai checkpoint: no durability directory attached "
                        "(usage: rai checkpoint <dir>)\n")
            system.attach_durability(args[0], checkpoint=False)
        info = system.checkpoint()
        return (f"✱ checkpoint written to {info['path']}\n"
                f"  {info['documents']} documents, {info['messages']} "
                f"messages, {info['collections']} collections "
                f"({info['bytes']} bytes)\n"
                f"  compacted {info['records_compacted']} WAL records "
                f"in {info['duration_s'] * 1000:.1f}ms\n")

    def _cmd_restore(self, args: List[str]) -> str:
        """``rai restore <dir> [workers]`` — cold-start from a durability
        directory and swap this CLI onto the recovered deployment.

        The client keeps its username/keys (they were snapshotted with
        the keystore), so history and rankings pick up where the dead
        process left off.
        """
        if not args:
            return "usage: rai restore <dir> [workers]\n"
        try:
            num_workers = int(args[1]) if len(args) > 1 else 1
        except ValueError:
            return "usage: rai restore <dir> [workers]\n"
        restored = type(self.system).restore(args[0],
                                             num_workers=num_workers)
        self.system = restored
        self.client = RaiClient(restored, self.client.profile,
                                team=self.client.team)
        replays = restored.events.query(type="durability.replay")
        summary = replays[-1].fields if replays else {}
        submissions = len(restored.db.collection("submissions"))
        return (f"✱ restored deployment from {args[0]} "
                f"(t={restored.sim.now:.1f}s, {num_workers} workers)\n"
                f"  replayed {summary.get('replayed', 0)} WAL records "
                f"({summary.get('torn', 0)} torn), requeued "
                f"{summary.get('requeued', 0)} in-flight jobs, fenced "
                f"{summary.get('fenced', 0)} already-finished\n"
                f"  {submissions} submissions on record; recovery took "
                f"{summary.get('duration_s', 0) * 1000:.1f}ms\n")

    def _cmd_version(self, args: List[str]) -> str:
        info = build_info()
        return (f"rai version {info['version']} "
                f"({info['branch']}@{info['commit']}, "
                f"built {info['build_date']})\n")

    def _cmd_help(self, args: List[str]) -> str:
        return self._help()

    # -- rendering ------------------------------------------------------

    def _help(self) -> str:
        return ("usage: rai <subcommand>\n  " +
                "\n  ".join(self.SUBCOMMANDS) + "\n")

    @staticmethod
    def _render_result(result: JobResult) -> str:
        lines = [f"✱ job {result.job_id}: {result.status.value}"]
        if result.error:
            lines.append(f"✗ {result.error}")
        for _t, stream, text in result.log:
            prefix = "" if stream == "stdout" else "! "
            for line in text.splitlines():
                lines.append(prefix + line)
        if result.build_url:
            lines.append("✱ build output uploaded; use download_build() "
                         "to fetch it")
        if result.turnaround is not None:
            lines.append(f"✱ total turnaround {result.turnaround:.1f}s "
                         f"(queued {result.queue_wait:.1f}s)")
        return "\n".join(lines) + "\n"
