"""Sharded deployments survive crash/restore with their map intact."""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import RaiSystem
from repro.durability.wal import WriteAheadLog
from repro.shard import ShardMap

pytestmark = [pytest.mark.shard, pytest.mark.durability]

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


def _storm(system, teams):
    def student(idx, team):
        client = system.new_client(team=team, username=f"{team}-user")
        client.stage_project(FILES)
        yield system.sim.timeout(0.5 * idx)
        result = yield from client.submit()
        results.append(result)

    results = []
    system.run_all([student(i, t) for i, t in enumerate(teams)])
    return results


class TestShardedRestore:
    def test_restore_rebuilds_the_same_shard_map(self, tmp_path):
        system = RaiSystem.standard(num_workers=2, seed=7,
                                    config=SystemConfig(shards=2,
                                                        shard_seed=5))
        system.attach_durability(str(tmp_path / "dur"))
        system.crash_stop()
        restored = RaiSystem.restore(str(tmp_path / "dur"), num_workers=2)
        assert restored.config.shards == 2
        assert restored.config.shard_seed == 5
        assert restored.shards is not None
        assert restored.shards.shard_map == ShardMap(2, seed=5)

    def test_submissions_survive_on_their_partitions(self, tmp_path):
        teams = [f"team{i:02d}" for i in range(6)]
        system = RaiSystem.standard(num_workers=2, seed=7,
                                    config=SystemConfig(shards=2))
        system.attach_durability(str(tmp_path / "dur"))
        results = _storm(system, teams)
        assert all(r.status.value == "succeeded" for r in results)
        before = system.db.collection("submissions")
        placement = before.placement()
        system.crash_stop()

        restored = RaiSystem.restore(str(tmp_path / "dur"), num_workers=2)
        coll = restored.db.collection("submissions")
        assert coll.__class__.__name__ == "ShardedCollection"
        assert len(coll) == len(before)
        assert coll.placement() == placement
        smap = restored.shards.shard_map
        for team in teams:
            physical = coll.shards[smap.partition(team)]
            assert physical.find_one({"team": team}) is not None

    def test_wal_records_carry_partition_names(self, tmp_path):
        system = RaiSystem.standard(num_workers=2, seed=7,
                                    config=SystemConfig(shards=2))
        system.attach_durability(str(tmp_path / "dur"))
        _storm(system, ["team00", "team02"])
        system.crash_stop()
        records, _ = WriteAheadLog(
            str(tmp_path / "dur" / "wal.log")).replay()
        routes = {r.get("route") for r in records if "route" in r}
        routes |= {r.get("topic") for r in records if "topic" in r}
        names = {r.get("c") for r in records if "c" in r}
        # Broker records name the partitioned route, docdb records the
        # physical shard collection — the partition id is in the journal.
        assert any(route and route.startswith("tasks.p")
                   for route in routes)
        assert any(name and name.startswith("submissions.p")
                   for name in names)

    def test_restored_system_keeps_serving(self, tmp_path):
        system = RaiSystem.standard(num_workers=2, seed=7,
                                    config=SystemConfig(shards=2))
        system.attach_durability(str(tmp_path / "dur"))
        _storm(system, ["team00", "team02"])
        system.crash_stop()
        restored = RaiSystem.restore(str(tmp_path / "dur"), num_workers=2)
        results = _storm(restored, ["team01", "team04"])
        assert all(r.status.value == "succeeded" for r in results)
        assert sum(restored.shards.router.routed) == 2


class TestStealJournal:
    def test_balancer_migration_replays_on_restore(self, tmp_path):
        # No workers: queued messages stay queued, so the journaled
        # migration is the only thing that decides where they live.
        system = RaiSystem.standard(num_workers=0, seed=3,
                                    config=SystemConfig(shards=2))
        system.attach_durability(str(tmp_path / "dur"))
        smap = system.shards.shard_map
        for i in range(3):
            system.broker.publish(smap.topic(0),
                                  {"job_id": f"job-{i}", "team": "team00"})
        assert system.shards.channels[0].depth == 3
        assert system.shards._migrate(0, 1) == 1
        assert system.shards.channels[0].depth == 2
        assert system.shards.channels[1].depth == 1
        system.crash_stop()

        restored = RaiSystem.restore(str(tmp_path / "dur"), num_workers=0)
        assert restored.shards.channels[0].depth == 2
        assert restored.shards.channels[1].depth == 1

    def test_mb_steal_of_missing_message_counts_anomaly(self, tmp_path):
        system = RaiSystem.standard(num_workers=0, seed=3,
                                    config=SystemConfig(shards=2))
        system.attach_durability(str(tmp_path / "dur"))
        manager = system.durability
        manager.broker_steal("tasks.p0/tasks", "tasks.p1/tasks",
                             "msg-999999")
        system.crash_stop()
        restored = RaiSystem.restore(str(tmp_path / "dur"), num_workers=0)
        assert restored.durability.replay_anomalies >= 1
