"""Lifecycle (expiry) rules for buckets."""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.objects import StoredObject

#: Seconds in one 30-day "month" — the unit the paper quotes lifetimes in.
MONTH_SECONDS = 30 * 24 * 3600.0


@dataclass(frozen=True)
class LifecycleRule:
    """Expire objects under ``prefix`` after ``expire_after`` seconds.

    ``since`` selects the reference clock: ``"last_use"`` reproduces the
    client-upload rule ("deleted one month after the last use", §V step 3);
    ``"creation"`` is the plain S3-style age rule.
    """

    prefix: str = ""
    expire_after: float = MONTH_SECONDS
    since: str = "last_use"

    def __post_init__(self):
        if self.since not in ("last_use", "creation"):
            raise ValueError(f"invalid since={self.since!r}")
        if self.expire_after <= 0:
            raise ValueError("expire_after must be positive")

    def matches(self, key: str) -> bool:
        return key.startswith(self.prefix)

    def is_expired(self, obj: StoredObject, now: float) -> bool:
        ref = obj.last_used_at if self.since == "last_use" else obj.created_at
        return (now - ref) >= self.expire_after
