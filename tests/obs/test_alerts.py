"""Alert manager tests: incident lifecycle, watchdogs, SLO wiring."""

import pytest

from repro.obs.alerts import Alert, AlertManager
from repro.obs.events import EventLog, EventType
from repro.obs.metrics import MetricsRegistry
from repro.obs.scrape import MetricsScraper
from repro.obs.slo import SloEngine, SloSpec

pytestmark = [pytest.mark.obs, pytest.mark.slo]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def events(clock):
    return EventLog(clock=clock)


@pytest.fixture
def manager(clock, events):
    return AlertManager(clock, events=events)


class TestIncidentLifecycle:
    def test_fire_and_resolve_one_incident(self, manager, clock, events):
        clock.now = 10.0
        alert = manager.fire("disk-full", summary="disk at 98%")
        assert alert.active
        assert alert.state == "firing"
        assert manager.is_firing("disk-full")
        clock.now = 50.0
        resolved = manager.resolve("disk-full")
        assert resolved is alert
        assert not alert.active
        assert alert.resolved_at == 50.0
        assert not manager.is_firing("disk-full")
        # Both transitions hit the event log.
        fired = events.query(type=EventType.ALERT_FIRED)
        cleared = events.query(type=EventType.ALERT_RESOLVED)
        assert fired[0].fields["alert"] == "disk-full"
        assert cleared[0].fields["duration"] == pytest.approx(40.0)

    def test_refire_is_deduped_but_refreshes_fields(self, manager, clock):
        first = manager.fire("x", summary="s", burn=1.5)
        clock.now = 99.0
        second = manager.fire("x", summary="other words", burn=3.0)
        assert second is first           # same incident object
        assert first.fired_at == 0.0     # original fire time kept
        assert first.fields["burn"] == 3.0  # latest context wins
        assert manager.total_fired == 1
        assert len(manager.incidents("x")) == 1

    def test_resolve_rearms_for_a_new_incident(self, manager, clock):
        manager.fire("x", summary="s")
        clock.now = 10.0
        manager.resolve("x")
        clock.now = 20.0
        second = manager.fire("x", summary="again")
        assert second.fired_at == 20.0
        assert second.active
        assert len(manager.incidents("x")) == 2
        assert manager.total_fired == 2
        assert manager.total_resolved == 1

    def test_resolve_without_incident_is_noop(self, manager):
        assert manager.resolve("never-fired") is None
        assert manager.total_resolved == 0

    def test_history_is_bounded(self, clock):
        manager = AlertManager(clock, max_history=3)
        for i in range(5):
            manager.fire(f"a{i}", summary="s")
            manager.resolve(f"a{i}")
        assert len(manager.history) == 3
        assert [a.name for a in manager.history] == ["a2", "a3", "a4"]
        assert manager.total_fired == 5

    def test_active_sorted_by_fire_time(self, manager, clock):
        clock.now = 5.0
        manager.fire("late", summary="s")
        manager.fire("later", summary="s", at=9.0)
        manager.fire("early", summary="s", at=1.0)
        assert [a.name for a in manager.active()] == \
            ["early", "late", "later"]

    def test_stats_and_to_dict(self, manager, clock):
        manager.fire("x", summary="s", severity="critical", k="v")
        stats = manager.stats()
        assert stats["active"] == 1
        assert stats["total_fired"] == 1
        d = manager.active()[0].to_dict()
        assert d["severity"] == "critical"
        assert d["state"] == "firing"
        assert d["fields"] == {"k": "v"}
        assert "firing" in repr(manager.active()[0])


class TestHeartbeatWatchdog:
    def test_grace_must_be_positive(self, manager):
        with pytest.raises(ValueError):
            manager.watch_heartbeat("x", lambda: 0.0, grace=0)

    def test_stall_fires_once_then_resolves(self, manager, clock):
        beat = {"at": 0.0}
        manager.watch_heartbeat("pump", lambda: beat["at"], grace=30.0)
        clock.now = 20.0
        assert manager.check() == []
        clock.now = 60.0  # 60s since last beat > 30s grace
        (alert,) = manager.check()
        assert alert.name == "stuck:pump"
        # Re-checking during the same stall does not open a new incident.
        clock.now = 90.0
        manager.check()
        assert manager.total_fired == 1
        # The beat resumes; the incident resolves and re-arms.
        beat["at"] = 95.0
        clock.now = 100.0
        assert manager.check() == []
        assert not manager.is_firing("stuck:pump")
        assert manager.total_resolved == 1

    def test_never_beat_trips_only_after_grace(self, manager, clock):
        manager.watch_heartbeat("slow-start", lambda: None, grace=100.0)
        clock.now = 50.0
        assert manager.check() == []   # still within startup grace
        clock.now = 150.0
        (alert,) = manager.check()
        assert alert.name == "stuck:slow-start"
        assert alert.fields["last_beat"] is None


class TestSloAlerting:
    def _wired(self, clock, events):
        registry = MetricsRegistry()
        scraper = MetricsScraper(registry, clock, interval=30.0)
        spec = SloSpec(name="lat", kind="latency", target=0.5,
                       metric="lat", threshold=10.0)
        engine = SloEngine(scraper, specs=[spec], fast_window=60.0,
                           slow_window=120.0)
        manager = AlertManager(clock, events=events)
        manager.attach_slo_engine(engine)
        return registry, scraper, manager

    def test_burn_fires_critical_with_exemplars(self, clock, events):
        registry, scraper, manager = self._wired(clock, events)
        h = registry.histogram("lat", buckets=(10.0, 60.0))
        scraper.scrape_now()  # empty baseline at t=0
        h.observe(45.0, trace_id="tr-slow", at=5.0)
        h.observe(45.0, trace_id="tr-slower", at=6.0)
        clock.now = 30.0
        (alert,) = manager.check(scrape=True)
        assert alert.name == "slo:lat"
        assert alert.severity == "critical"
        assert alert.fields["exemplars"] == ["tr-slower"]
        assert alert.fields["fast_burn"] >= 1.0
        assert "burning" in alert.summary
        assert events.query(type=EventType.ALERT_FIRED)

    def test_burn_clearing_resolves(self, clock, events):
        registry, scraper, manager = self._wired(clock, events)
        h = registry.histogram("lat", buckets=(10.0, 60.0))
        scraper.scrape_now()
        h.observe(45.0)
        clock.now = 30.0
        manager.check(scrape=True)
        assert manager.is_firing("slo:lat")
        # A flood of good observations pushes both windows back under
        # budget on the next judgment.
        for _ in range(20):
            h.observe(1.0)
        clock.now = 60.0
        assert manager.check(scrape=True) == []
        assert not manager.is_firing("slo:lat")
        incident = manager.incidents("slo:lat")[0]
        assert incident.resolved_at == 60.0


class TestSamplerAlertDedup:
    """Satellite: the stuck-sampler warning is one incident, not a
    reprint per health_report call."""

    def _stuck_system(self):
        from repro.core.system import RaiSystem
        from repro.core.telemetry import TelemetrySampler

        system = RaiSystem.standard(num_workers=1, seed=3)
        sampler = TelemetrySampler(system, interval=10.0)
        sampler.started_at = 0.0  # ran once, then silently wedged

        def advance(sim):
            yield sim.timeout(100.0)

        system.run(advance(system.sim))
        return system, sampler

    def test_health_report_dedupes_stuck_alert(self):
        from repro.core.telemetry import health_report

        system, sampler = self._stuck_system()
        assert sampler.is_stuck()
        first = health_report(system, sampler)
        assert "ALERT stuck:telemetry-sampler" in first
        health_report(system, sampler)
        health_report(system, sampler)
        assert system.alerts.total_fired == 1
        assert len(system.alerts.incidents("stuck:telemetry-sampler")) == 1

    def test_recovery_resolves_the_incident(self):
        from repro.core.telemetry import health_report

        system, sampler = self._stuck_system()
        health_report(system, sampler)
        sampler.last_heartbeat_at = system.sim.now  # heartbeats resume
        report = health_report(system, sampler)
        assert "ALERT stuck:telemetry-sampler" not in report
        assert "alerts resolved" in report
        assert system.alerts.total_resolved == 1

    def test_alert_manager_free_system_keeps_legacy_row(self):
        from repro.core.telemetry import health_report

        system, sampler = self._stuck_system()
        system.alerts = None
        report = health_report(system, sampler)
        assert "telemetry sampler stuck" in report


@pytest.mark.chaos
class TestAvailabilityAlertChaos:
    """Satellite: an injected worker crash burns the availability SLO,
    fires an alert, and recovery resolves it."""

    def test_crash_fires_then_resolves_availability_alert(self):
        from repro.core.config import SystemConfig
        from repro.core.system import RaiSystem
        from repro.faults import FaultPlan, WorkerCrashFault

        config = SystemConfig(scrape_interval_seconds=30.0,
                              slo_fast_window_seconds=120.0,
                              slo_slow_window_seconds=600.0)
        system = RaiSystem.standard(num_workers=2, seed=21, config=config)
        system.slo_engine.add_spec(SloSpec(
            name="worker-availability", kind="gauge",
            metric="workers_running", threshold=2, op=">=", target=0.75,
            description="full fleet up 75% of the time"))
        system.start_observability()
        plan = FaultPlan(worker_crashes=[
            WorkerCrashFault(window=(40.0, 50.0), restart_after=300.0)])
        system.start_fault_plan(plan)

        system.sim.run(until=200.0)
        assert system.events.query(type=EventType.FAULT_INJECTED)
        assert system.alerts.is_firing("slo:worker-availability")
        assert len(system.running_workers) == 1

        # Replacement capacity lands ~t=350; good samples then push the
        # fast window back under budget and the alert resolves.
        system.sim.run(until=900.0)
        assert len(system.running_workers) == 2
        assert not system.alerts.is_firing("slo:worker-availability")
        incidents = system.alerts.incidents("slo:worker-availability")
        assert len(incidents) == 1
        assert incidents[0].resolved_at is not None
        # Both transitions are in the event log, after the fault.
        fired = system.events.query(type=EventType.ALERT_FIRED)
        cleared = system.events.query(type=EventType.ALERT_RESOLVED)
        assert any(e.fields["alert"] == "slo:worker-availability"
                   for e in fired)
        assert any(e.fields["alert"] == "slo:worker-availability"
                   for e in cleared)
