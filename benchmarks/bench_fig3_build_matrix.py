"""Figure 3 — the client download matrix.

Paper: a 10-row table (6 Linux architectures, 2 Darwin, 2 Windows), each
with a stable (master) and development (devel) link, continuously updated
from CI builds of both branches with commit/build-date stamped into every
binary.
"""

from benchmarks.conftest import print_banner
from repro.release import BUILD_MATRIX, ContinuousBuilder, DownloadPage
from repro.sim import Simulator
from repro.storage import ObjectStore


def build_and_publish():
    storage = ObjectStore(Simulator())
    builder = ContinuousBuilder(storage=storage)
    builder.devel.commit("initial import")
    builder.devel.commit("add ranking subcommand")
    builder.master.merge_from(builder.devel)
    builder.devel.commit("wip: interactive sessions")
    builder.build_all(build_date="2016-11-20T04:00:00Z")
    return storage, builder


def test_fig3_download_matrix(benchmark):
    storage, builder = benchmark.pedantic(build_and_publish, rounds=1,
                                          iterations=1)
    page = DownloadPage(builder)
    rows = page.rows()

    print_banner("Figure 3 — RAI client download links")
    print(page.render())

    by_os = {}
    for target in BUILD_MATRIX:
        by_os.setdefault(target.os, 0)
        by_os[target.os] += 1
    print(f"\ntargets: {by_os} (paper: linux=6, darwin=2, windows=2)")
    print(f"published binaries in object store: "
          f"{storage.total_objects} (= 10 targets × 2 branches)")

    # --- shape assertions -------------------------------------------------
    assert len(rows) == 10
    assert by_os == {"linux": 6, "darwin": 2, "windows": 2}
    assert all(r["stable"] and r["development"] for r in rows)
    # devel is ahead of master (development vs stable channel)
    assert rows[0]["stable_commit"] != rows[0]["development_commit"]
    assert storage.total_objects == 20

    # The embedded metadata mechanism (§VII): every binary self-identifies.
    artifact = builder.latest("master", "linux-amd64")
    blob = storage.redeem_get(artifact.url).data
    assert artifact.commit.encode() in blob
    assert b"2016-11-20" in blob
