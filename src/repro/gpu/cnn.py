"""The ECE408 project workload: CNN inference in NumPy.

The fall-2016 project asked teams to implement the forward (inference) pass
of a fixed convolutional network against provided weights, maintaining a
target accuracy (paper §VI, "Competition Ranking").  We implement the
network for real, twice:

- ``impl="reference"`` — a deliberately naive direct convolution with
  Python loops over the output volume: the provided "baseline serial CPU
  implementation" (slow, the thing that takes ~30 simulated minutes on the
  full dataset);
- ``impl="im2col"`` — the classic im2col + GEMM lowering, fully vectorised
  through BLAS: the optimisation-target implementation.

Both produce identical results (property-tested), which is exactly the
uniformity the course's grading relies on.  Each layer also reports its
FLOP and byte counts so the GPU roofline model can convert the same work
into simulated device time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


# --------------------------------------------------------------------------
# Layers
# --------------------------------------------------------------------------


@dataclass
class Conv2D:
    """Valid (no padding), stride-1 2D convolution, NCHW layout."""

    name: str
    in_channels: int
    out_channels: int
    kernel: int

    def out_shape(self, h: int, w: int) -> Tuple[int, int]:
        return h - self.kernel + 1, w - self.kernel + 1

    def flops(self, h: int, w: int, batch: int) -> float:
        oh, ow = self.out_shape(h, w)
        # 2 FLOPs (mul+add) per MAC.
        return 2.0 * batch * self.out_channels * oh * ow * \
            self.in_channels * self.kernel * self.kernel

    def bytes_moved(self, h: int, w: int, batch: int) -> float:
        oh, ow = self.out_shape(h, w)
        inputs = batch * self.in_channels * h * w
        weights = self.out_channels * self.in_channels * self.kernel ** 2
        outputs = batch * self.out_channels * oh * ow
        return 4.0 * (inputs + weights + outputs)

    def forward(self, x: np.ndarray, weights: Dict[str, np.ndarray],
                impl: str) -> np.ndarray:
        w = weights[f"{self.name}.weight"]
        b = weights[f"{self.name}.bias"]
        if impl == "reference":
            return _conv2d_reference(x, w, b)
        if impl == "im2col":
            return _conv2d_im2col(x, w, b)
        raise ValueError(f"unknown conv implementation {impl!r}")


@dataclass
class ReLU:
    name: str

    def forward(self, x, weights, impl):
        return np.maximum(x, 0.0)

    def flops(self, h, w, batch):
        return 0.0

    def bytes_moved(self, h, w, batch):
        return 0.0


@dataclass
class AvgPool2D:
    """Non-overlapping average pooling."""

    name: str
    size: int = 2

    def forward(self, x, weights, impl):
        n, c, h, w = x.shape
        s = self.size
        oh, ow = h // s, w // s
        trimmed = x[:, :, : oh * s, : ow * s]
        return trimmed.reshape(n, c, oh, s, ow, s).mean(axis=(3, 5))

    def flops(self, h, w, batch):
        return 0.0

    def bytes_moved(self, h, w, batch):
        return 0.0


@dataclass
class Flatten:
    name: str

    def forward(self, x, weights, impl):
        return x.reshape(x.shape[0], -1)

    def flops(self, h, w, batch):
        return 0.0

    def bytes_moved(self, h, w, batch):
        return 0.0


@dataclass
class Dense:
    name: str
    in_features: int
    out_features: int

    def forward(self, x, weights, impl):
        w = weights[f"{self.name}.weight"]
        b = weights[f"{self.name}.bias"]
        return x @ w + b

    def flops(self, h, w, batch):
        return 2.0 * batch * self.in_features * self.out_features

    def bytes_moved(self, h, w, batch):
        return 4.0 * (batch * self.in_features +
                      self.in_features * self.out_features +
                      batch * self.out_features)


@dataclass
class Network:
    """A fixed feed-forward stack with shape/FLOP introspection."""

    input_shape: Tuple[int, int, int]  # (channels, height, width)
    layers: List[object] = field(default_factory=list)

    def layer_costs(self, batch: int) -> List[dict]:
        """Per-layer (name, flops, bytes) for a given batch size."""
        c, h, w = self.input_shape
        costs = []
        for layer in self.layers:
            costs.append({
                "name": layer.name,
                "kind": type(layer).__name__,
                "flops": layer.flops(h, w, batch),
                "bytes": layer.bytes_moved(h, w, batch),
            })
            if isinstance(layer, Conv2D):
                h, w = layer.out_shape(h, w)
                c = layer.out_channels
            elif isinstance(layer, AvgPool2D):
                h, w = h // layer.size, w // layer.size
        return costs

    def total_flops(self, batch: int) -> float:
        return sum(c["flops"] for c in self.layer_costs(batch))

    def total_bytes(self, batch: int) -> float:
        return sum(c["bytes"] for c in self.layer_costs(batch))


# --------------------------------------------------------------------------
# Convolution implementations
# --------------------------------------------------------------------------


def _conv2d_reference(x: np.ndarray, w: np.ndarray,
                      b: np.ndarray) -> np.ndarray:
    """Naive direct convolution (loops over output pixels).

    Mirrors the structure of the serial CPU baseline handed to students:
    seven nested loops, no blocking, no vectorisation beyond the innermost
    receptive-field dot product.
    """
    n, cin, h, ww = x.shape
    cout, _, k, _ = w.shape
    oh, ow = h - k + 1, ww - k + 1
    out = np.empty((n, cout, oh, ow), dtype=np.float32)
    for img in range(n):
        for oc in range(cout):
            kernel = w[oc]
            for i in range(oh):
                for j in range(ow):
                    patch = x[img, :, i:i + k, j:j + k]
                    out[img, oc, i, j] = float(np.sum(patch * kernel)) + b[oc]
    return out


def _conv2d_im2col(x: np.ndarray, w: np.ndarray, b: np.ndarray) -> np.ndarray:
    """im2col + GEMM lowering — the vectorised implementation."""
    n, cin, h, ww = x.shape
    cout, _, k, _ = w.shape
    oh, ow = h - k + 1, ww - k + 1
    # Build the column matrix via stride tricks (no data copy until reshape).
    shape = (n, cin, k, k, oh, ow)
    strides = (x.strides[0], x.strides[1], x.strides[2], x.strides[3],
               x.strides[2], x.strides[3])
    cols = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = cols.reshape(n, cin * k * k, oh * ow)
    wmat = w.reshape(cout, cin * k * k)
    out = np.einsum("of,nfp->nop", wmat, cols, optimize=True)
    out += b[None, :, None]
    return out.reshape(n, cout, oh, ow).astype(np.float32, copy=False)


# --------------------------------------------------------------------------
# The fixed course network, weights, and data
# --------------------------------------------------------------------------

#: Input geometry of the course dataset: 1×28×28 grayscale digits.
ECE408_INPUT_SHAPE = (1, 28, 28)
ECE408_NUM_CLASSES = 10


def build_ece408_network() -> Network:
    """The fixed inference network teams implemented.

    A LeNet-style stack matching the course project's scale: two conv
    layers with pooling, then two dense layers.
    """
    return Network(
        input_shape=ECE408_INPUT_SHAPE,
        layers=[
            Conv2D("conv1", in_channels=1, out_channels=32, kernel=5),
            ReLU("relu1"),
            AvgPool2D("pool1", size=2),
            Conv2D("conv2", in_channels=32, out_channels=64, kernel=5),
            ReLU("relu2"),
            AvgPool2D("pool2", size=2),
            Flatten("flatten"),
            Dense("fc1", in_features=64 * 4 * 4, out_features=128),
            ReLU("relu3"),
            Dense("fc2", in_features=128, out_features=ECE408_NUM_CLASSES),
        ],
    )


def generate_model_weights(seed: int = 408) -> Dict[str, np.ndarray]:
    """Deterministic "pre-trained" weights for the fixed network."""
    rng = np.random.default_rng(seed)
    net = build_ece408_network()
    weights: Dict[str, np.ndarray] = {}
    for layer in net.layers:
        if isinstance(layer, Conv2D):
            fan_in = layer.in_channels * layer.kernel ** 2
            weights[f"{layer.name}.weight"] = rng.normal(
                0.0, 1.0 / np.sqrt(fan_in),
                size=(layer.out_channels, layer.in_channels,
                      layer.kernel, layer.kernel)).astype(np.float32)
            weights[f"{layer.name}.bias"] = rng.normal(
                0.0, 0.01, size=layer.out_channels).astype(np.float32)
        elif isinstance(layer, Dense):
            weights[f"{layer.name}.weight"] = rng.normal(
                0.0, 1.0 / np.sqrt(layer.in_features),
                size=(layer.in_features, layer.out_features)
            ).astype(np.float32)
            weights[f"{layer.name}.bias"] = rng.normal(
                0.0, 0.01, size=layer.out_features).astype(np.float32)
    return weights


def generate_dataset(n: int, seed: int = 10) -> Tuple[np.ndarray, np.ndarray]:
    """Synthetic digit images plus labels.

    Labels are defined as the argmax of the *reference network itself* on
    the provided weights, so a correct student implementation scores 100%
    accuracy and any numerical deviation shows up as accuracy loss —
    mirroring the course's "maintain a target accuracy" rule.
    """
    rng = np.random.default_rng(seed)
    c, h, w = ECE408_INPUT_SHAPE
    # Low-frequency random fields (a coarse 7×7 grid upsampled 4×), not
    # iid noise: digit-like spatial structure is what makes different
    # images activate different classes.  With iid pixels the network's
    # pooled features are nearly constant across images and every
    # classifier — right or wrong — predicts one class, which would make
    # the accuracy check vacuous.
    coarse = rng.normal(0.0, 1.0, size=(n, c, 7, 7)).astype(np.float32)
    images = np.repeat(np.repeat(coarse, 4, axis=2), 4, axis=3)
    images += 0.15 * rng.normal(0.0, 1.0,
                                size=(n, c, h, w)).astype(np.float32)
    weights = generate_model_weights()
    logits = infer(images, weights, impl="im2col")
    labels = np.argmax(logits, axis=1).astype(np.int64)
    return images, labels


def infer(images: np.ndarray, weights: Dict[str, np.ndarray],
          impl: str = "im2col", network: Network = None) -> np.ndarray:
    """Run the forward pass; returns logits of shape (n, 10)."""
    net = network or build_ece408_network()
    x = images.astype(np.float32, copy=False)
    for layer in net.layers:
        x = layer.forward(x, weights, impl)
    return x


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1]."""
    if len(labels) == 0:
        return 0.0
    return float(np.mean(np.argmax(logits, axis=1) == labels))
