"""Unit tests for the broker: fan-out, queue semantics, ephemeral reaping."""

import pytest

from repro.broker import Consumer, MessageBroker, Producer
from repro.errors import MessageTooLarge, UnknownTopic


@pytest.fixture
def broker(sim):
    return MessageBroker(sim)


class TestPublish:
    def test_publish_returns_message(self, sim, broker):
        msg = broker.publish("rai", {"job": 1})
        assert msg.topic == "rai"
        assert msg.body == {"job": 1}
        assert msg.timestamp == sim.now

    def test_body_must_be_json_safe(self, broker):
        with pytest.raises(TypeError):
            broker.publish("rai", {"bad": object()})

    def test_size_limit(self, sim):
        broker = MessageBroker(sim, max_message_bytes=64)
        with pytest.raises(MessageTooLarge):
            broker.publish("rai", {"blob": "x" * 100})

    def test_publish_before_channel_is_buffered(self, sim, broker):
        broker.publish("rai", {"n": 1})
        broker.publish("rai", {"n": 2})
        consumer = Consumer(broker, "rai/tasks")

        def drain(sim):
            out = []
            for _ in range(2):
                msg = yield consumer.get()
                out.append(msg.body["n"])
                consumer.ack(msg)
            return out

        assert sim.run(until=sim.process(drain(sim))) == [1, 2]


class TestChannelSemantics:
    def test_each_channel_gets_a_copy(self, sim, broker):
        a = Consumer(broker, "rai/channel-a")
        b = Consumer(broker, "rai/channel-b")
        broker.publish("rai", {"n": 1})

        def drain(sim, consumer):
            msg = yield consumer.get()
            consumer.ack(msg)
            return msg.body["n"]

        pa = sim.process(drain(sim, a))
        pb = sim.process(drain(sim, b))
        sim.run()
        assert pa.value == 1 and pb.value == 1

    def test_competing_consumers_split_messages(self, sim, broker):
        """Within one channel each message goes to exactly one consumer."""
        consumers = [Consumer(broker, "rai/tasks") for _ in range(2)]
        received = {0: [], 1: []}

        def drain(sim, i):
            while True:
                msg = yield consumers[i].get()
                received[i].append(msg.body["n"])
                consumers[i].ack(msg)
                yield sim.timeout(1)

        for i in range(2):
            sim.process(drain(sim, i))
        for n in range(6):
            broker.publish("rai", {"n": n})
        sim.run(until=10)
        all_received = sorted(received[0] + received[1])
        assert all_received == [0, 1, 2, 3, 4, 5]
        assert received[0] and received[1]  # both got some

    def test_depth_tracks_unconsumed(self, sim, broker):
        broker.channel("rai/tasks")
        for n in range(3):
            broker.publish("rai", {"n": n})
        assert broker.topics["rai"].depth == 3
        assert broker.total_depth() == 3


class TestAckRequeue:
    def test_requeue_redelivers(self, sim, broker):
        consumer = Consumer(broker, "rai/tasks")
        broker.publish("rai", {"n": 1})

        def proc(sim):
            msg = yield consumer.get()
            assert msg.attempts == 1
            consumer.requeue(msg)
            msg2 = yield consumer.get()
            consumer.ack(msg2)
            return msg2.attempts

        assert sim.run(until=sim.process(proc(sim))) == 2

    def test_exhausted_attempts_dead_letter(self, sim):
        broker = MessageBroker(sim, default_max_attempts=2)
        consumer = Consumer(broker, "rai/tasks")
        broker.publish("rai", {"n": 1})

        def proc(sim):
            msg = yield consumer.get()
            assert consumer.requeue(msg) is True
            msg = yield consumer.get()
            assert consumer.requeue(msg) is False  # dead-lettered
            return len(consumer.channel.dead_letters)

        assert sim.run(until=sim.process(proc(sim))) == 1

    def test_stats_counts(self, sim, broker):
        consumer = Consumer(broker, "rai/tasks")
        broker.publish("rai", {})

        def proc(sim):
            msg = yield consumer.get()
            consumer.ack(msg)

        sim.run(until=sim.process(proc(sim)))
        stats = consumer.channel.stats()
        assert stats["delivered"] == 1
        assert stats["acked"] == 1
        assert stats["depth"] == 0


class TestEphemeralTopics:
    def test_log_prefix_is_ephemeral(self, broker):
        assert broker.topic("log_job-1").ephemeral
        assert not broker.topic("rai").ephemeral

    def test_reaped_when_unused(self, sim, broker):
        producer = Producer(broker, "log_job-1")
        consumer = Consumer(broker, "log_job-1/#ch")
        producer.publish({"line": "x"})

        def drain(sim):
            msg = yield consumer.get()
            consumer.ack(msg)

        sim.run(until=sim.process(drain(sim)))
        consumer.close()
        producer.close()
        assert not broker.has_topic("log_job-1")

    def test_not_reaped_while_producer_open(self, sim, broker):
        producer = Producer(broker, "log_job-2")
        consumer = Consumer(broker, "log_job-2/#ch")
        consumer.close()
        assert broker.has_topic("log_job-2")
        producer.close()
        assert not broker.has_topic("log_job-2")

    def test_non_ephemeral_survives(self, sim, broker):
        consumer = Consumer(broker, "rai/tasks")
        consumer.close()
        assert broker.has_topic("rai")

    def test_delete_unknown_topic_raises(self, broker):
        with pytest.raises(UnknownTopic):
            broker.delete_topic("ghost")


class TestHandles:
    def test_closed_producer_rejects_publish(self, broker):
        producer = Producer(broker, "rai")
        producer.close()
        with pytest.raises(RuntimeError):
            producer.publish({})

    def test_closed_consumer_rejects_get(self, broker):
        consumer = Consumer(broker, "rai/tasks")
        consumer.close()
        with pytest.raises(RuntimeError):
            consumer.get()

    def test_context_managers(self, broker):
        with Producer(broker, "log_x") as producer:
            producer.publish({"a": 1})
        with Consumer(broker, "log_x/#ch"):
            pass
        # producer closed, consumer closed, but message still queued →
        # topic not reaped until drained... depth>0 keeps it.
        assert broker.has_topic("log_x")

    def test_message_ids_unique_and_ordered(self, broker):
        first = broker.publish("rai", {})
        second = broker.publish("rai", {})
        assert first.id != second.id
        assert first.id < second.id
