"""Tests for coursework auditing analytics."""

import pytest

from repro.docdb import DocumentDB
from repro.grading.audit import CourseworkAuditor


@pytest.fixture
def db():
    db = DocumentDB()
    rows = [
        # team-a: improves 10 → 2 → 0.5 over three successful runs
        {"team": "team-a", "status": "succeeded", "exit_code": 0,
         "internal_time": 10.0, "submitted_at": 100, "finished_at": 110,
         "kind": "run"},
        {"team": "team-a", "status": "succeeded", "exit_code": 0,
         "internal_time": 2.0, "submitted_at": 200, "finished_at": 210,
         "kind": "run"},
        {"team": "team-a", "status": "failed", "exit_code": 139,
         "internal_time": None, "submitted_at": 250, "finished_at": 260,
         "kind": "run"},
        {"team": "team-a", "status": "succeeded", "exit_code": 0,
         "internal_time": 0.5, "submitted_at": 300, "finished_at": 310,
         "kind": "submit"},
        # team-b: one OOM, one success at 4s
        {"team": "team-b", "status": "failed", "exit_code": 137,
         "internal_time": None, "submitted_at": 120, "finished_at": 130,
         "kind": "run"},
        {"team": "team-b", "status": "succeeded", "exit_code": 0,
         "internal_time": 4.0, "submitted_at": 400, "finished_at": 410,
         "kind": "run"},
        # a rejected job with no team
        {"team": None, "status": "rejected", "exit_code": None,
         "internal_time": None, "submitted_at": 1, "finished_at": 2,
         "kind": "run"},
    ]
    db.collection("submissions").insert_many(rows)
    return db


@pytest.fixture
def auditor(db):
    return CourseworkAuditor(db)


class TestTeamActivity:
    def test_counts_and_rates(self, auditor):
        activity = {row["_id"]: row for row in auditor.team_activity()}
        assert activity["team-a"]["submissions"] == 4
        assert activity["team-a"]["succeeded"] == 3
        assert activity["team-a"]["success_rate"] == pytest.approx(0.75)
        assert activity["team-a"]["best_time"] == 0.5
        assert activity["team-b"]["success_rate"] == pytest.approx(0.5)

    def test_sorted_by_volume(self, auditor):
        rows = auditor.team_activity()
        assert rows[0]["_id"] == "team-a"

    def test_teamless_jobs_excluded(self, auditor):
        assert all(row["_id"] is not None
                   for row in auditor.team_activity())


class TestFailureBreakdown:
    def test_status_counts(self, auditor):
        breakdown = auditor.failure_breakdown()
        assert breakdown == {"succeeded": 4, "failed": 2, "rejected": 1}

    def test_exit_codes(self, auditor):
        codes = auditor.exit_code_breakdown()
        assert codes == {139: 1, 137: 1}


class TestImprovement:
    def test_curve_in_submission_order(self, auditor):
        curve = auditor.improvement_curve("team-a")
        assert [row["internal_time"] for row in curve] == [10.0, 2.0, 0.5]

    def test_curve_kind_filter(self, auditor):
        finals = auditor.improvement_curve("team-a", kind="submit")
        assert len(finals) == 1

    def test_most_improved(self, auditor):
        ranked = auditor.most_improved()
        assert ranked[0]["team"] == "team-a"
        assert ranked[0]["speedup"] == pytest.approx(20.0)
        # team-b has only one successful run → excluded
        assert all(row["team"] != "team-b" for row in ranked)


class TestRendering:
    def test_summary_table(self, auditor):
        text = auditor.render_summary()
        assert "team-a" in text
        assert "job outcomes:" in text
        assert "succeeded=4" in text


class TestOnRealCourseData:
    def test_audit_a_small_replay(self):
        from repro.workload.course import CourseConfig, CourseSimulation

        config = CourseConfig(n_students=6, n_teams=2, duration_days=1.5,
                              seed=14, final_week_instances=2)
        simulation = CourseSimulation(config)
        simulation.run()
        auditor = CourseworkAuditor(simulation.system.db)
        activity = auditor.team_activity()
        assert len(activity) == 2
        assert all(row["submissions"] > 0 for row in activity)
        assert auditor.failure_breakdown().get("succeeded", 0) > 0
        assert "Most active teams" in auditor.render_summary()
