"""Unit tests for optimisation trajectories and project synthesis."""

import numpy as np
import pytest

from repro.container.commands.base import parse_source_markers
from repro.workload.students import Team, Student
from repro.workload.trajectory import TeamTrajectory, team_project_files


def make_team(skill=0.9):
    return Team(name="t", members=[Student("s1", "A", "B")], skill=skill)


@pytest.fixture
def trajectory():
    return TeamTrajectory(team=make_team(0.9))


class TestQualityCurve:
    def test_monotone_nondecreasing(self, trajectory):
        qs = [trajectory.quality_at(t) for t in np.linspace(0, 1, 21)]
        assert all(b >= a - 1e-12 for a, b in zip(qs, qs[1:]))

    def test_starts_near_zero_ends_near_skill(self, trajectory):
        assert trajectory.quality_at(0.0) < 0.05
        assert trajectory.quality_at(1.0) > 0.85 * trajectory.final_quality

    def test_midpoint_is_half(self, trajectory):
        mid_quality = trajectory.quality_at(trajectory.midpoint)
        assert mid_quality == pytest.approx(trajectory.final_quality / 2,
                                            rel=0.01)

    def test_failure_rates_decay(self, trajectory):
        assert trajectory.compile_error_rate(0.0) > \
            trajectory.compile_error_rate(1.0)
        assert trajectory.wrong_rate(0.0) > trajectory.wrong_rate(1.0)

    def test_for_team_randomises_midpoint(self):
        rng = np.random.default_rng(0)
        ts = [TeamTrajectory.for_team(make_team(), rng) for _ in range(5)]
        assert len({t.midpoint for t in ts}) > 1


class TestProjectFiles:
    def test_contains_buildable_sources(self, trajectory):
        rng = np.random.default_rng(0)
        files = team_project_files(trajectory, 0.9, rng)
        assert "main.cu" in files and "CMakeLists.txt" in files
        assert "@rai-sim" in files["main.cu"]

    def test_markers_parse_back(self, trajectory):
        rng = np.random.default_rng(0)
        files = team_project_files(trajectory, 0.95, rng)
        profile = parse_source_markers({"main.cu": files["main.cu"]})
        assert 0.0 <= profile["quality"] <= 1.0
        assert profile["impl"] == "analytic"

    def test_late_quality_near_skill(self, trajectory):
        rng = np.random.default_rng(0)
        files = team_project_files(trajectory, 1.0, rng)
        profile = parse_source_markers({"main.cu": files["main.cu"]})
        assert profile["quality"] > 0.75

    def test_final_includes_required_files(self, trajectory):
        rng = np.random.default_rng(0)
        files = team_project_files(trajectory, 1.0, rng, final=True)
        assert "USAGE" in files
        assert files["report.pdf"].startswith(b"%PDF")

    def test_dev_runs_lack_final_files(self, trajectory):
        rng = np.random.default_rng(0)
        files = team_project_files(trajectory, 0.5, rng, final=False)
        assert "USAGE" not in files

    def test_early_submissions_fail_more(self, trajectory):
        rng = np.random.default_rng(12)
        early_fail = late_fail = 0
        n = 300
        for _ in range(n):
            early = parse_source_markers({"m": team_project_files(
                trajectory, 0.05, rng)["main.cu"]})
            late = parse_source_markers({"m": team_project_files(
                trajectory, 0.95, rng)["main.cu"]})
            early_fail += early["compile"] == "error" or \
                early["runtime"] == "crash"
            late_fail += late["compile"] == "error" or \
                late["runtime"] == "crash"
        assert early_fail > late_fail * 2
