"""Property-based tests for the guest shell tokenizer and build specs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buildspec import RaiBuildSpec, parse_build_spec, render_build_spec
from repro.container.shell import expand_variables, split_sequence

safe_chars = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"),
                           whitelist_characters=" ./-_",
                           max_codepoint=122),
    min_size=1, max_size=20,
).filter(lambda s: s.strip())


class TestSplitSequenceProperties:
    @given(segments=st.lists(safe_chars, min_size=1, max_size=5))
    def test_join_then_split_recovers_segments(self, segments):
        line = " && ".join(segments)
        parsed = split_sequence(line)
        assert [seg for _, seg in parsed] == \
            [s.strip() for s in segments if s.strip()]

    @given(segments=st.lists(safe_chars, min_size=2, max_size=5))
    def test_connectors_are_and(self, segments):
        line = " && ".join(segments)
        connectors = [c for c, _ in split_sequence(line)]
        assert connectors[0] == ""
        assert all(c == "&&" for c in connectors[1:])

    @given(text=safe_chars)
    def test_quoted_text_is_one_segment(self, text):
        quoted = '"' + text.replace('"', "") + '"'
        assert len(split_sequence(f"echo {quoted}")) == 1

    @given(line=st.text(max_size=50))
    def test_never_crashes(self, line):
        split_sequence(line)   # total function over arbitrary input


class TestExpandVariablesProperties:
    names = st.text(alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ_",
                    min_size=1, max_size=8)

    @given(name=names, value=safe_chars)
    def test_known_variable_substituted(self, name, value):
        assert expand_variables(f"${name}", {name: value}) == value

    @given(name=names)
    def test_unknown_variable_empty(self, name):
        assert expand_variables(f"${name}", {}) == ""

    @given(text=st.text(alphabet="abc def/", max_size=30))
    def test_text_without_dollar_unchanged(self, text):
        assert expand_variables(text, {"X": "y"}) == text


class TestBuildSpecProperties:
    commands = st.lists(
        st.text(alphabet=st.characters(whitelist_categories=("Ll", "Nd"),
                                       whitelist_characters=" ./-_",
                                       max_codepoint=122),
                min_size=1, max_size=30).filter(lambda s: s.strip()),
        min_size=1, max_size=10)

    @settings(max_examples=40)
    @given(commands=commands,
           image=st.text(alphabet="abcdefghij/:.-", min_size=1,
                         max_size=20).filter(
               lambda s: s.strip() and not s.startswith(("-", ":"))))
    def test_render_parse_roundtrip(self, commands, image):
        normalised = [" ".join(c.split()) for c in commands]
        spec = RaiBuildSpec(version="0.1", image=image,
                            build_commands=normalised)
        spec.validate()
        assert parse_build_spec(render_build_spec(spec)) == spec
