"""Container resource limits (§V, Container Execution).

"... the Docker container is configured without network access, only 8GB
of memory, and a maximum lifetime of 1 hour.  These limits can be changed
using the RAI worker configuration file."
"""

from __future__ import annotations

from dataclasses import dataclass

GIB = 1024 ** 3


@dataclass(frozen=True)
class ResourceLimits:
    """Enforceable per-container caps."""

    memory_bytes: int = 8 * GIB
    network_enabled: bool = False
    max_lifetime_seconds: float = 3600.0
    max_output_bytes: int = 64 * 1024 * 1024  # log-flood guard

    def __post_init__(self):
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.max_lifetime_seconds <= 0:
            raise ValueError("max_lifetime_seconds must be positive")
        if self.max_output_bytes <= 0:
            raise ValueError("max_output_bytes must be positive")

    @staticmethod
    def unrestricted() -> "ResourceLimits":
        """No effective caps — what a student-provided machine looks like."""
        return ResourceLimits(memory_bytes=1 << 62, network_enabled=True,
                              max_lifetime_seconds=1e12,
                              max_output_bytes=1 << 62)
