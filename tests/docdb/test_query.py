"""Unit tests for the query language."""

import pytest

from repro.docdb import match_document
from repro.errors import InvalidQuery

DOC = {
    "team": "t1",
    "time": 1.5,
    "tags": ["gpu", "cuda"],
    "meta": {"worker": "w-1", "attempt": 2},
    "results": [{"time": 1.5}, {"time": 2.5}],
    "none_field": None,
}


class TestEquality:
    def test_literal_match(self):
        assert match_document(DOC, {"team": "t1"})
        assert not match_document(DOC, {"team": "t2"})

    def test_multiple_fields_are_anded(self):
        assert match_document(DOC, {"team": "t1", "time": 1.5})
        assert not match_document(DOC, {"team": "t1", "time": 9})

    def test_array_membership(self):
        assert match_document(DOC, {"tags": "gpu"})
        assert not match_document(DOC, {"tags": "fpga"})

    def test_whole_array_equality(self):
        assert match_document(DOC, {"tags": ["gpu", "cuda"]})

    def test_missing_equals_null(self):
        assert match_document(DOC, {"ghost": None})
        assert match_document(DOC, {"none_field": None})

    def test_dotted_paths(self):
        assert match_document(DOC, {"meta.worker": "w-1"})
        assert match_document(DOC, {"results.1.time": 2.5})

    def test_empty_query_matches_all(self):
        assert match_document(DOC, {})


class TestComparisons:
    @pytest.mark.parametrize("query,expected", [
        ({"time": {"$gt": 1.0}}, True),
        ({"time": {"$gt": 1.5}}, False),
        ({"time": {"$gte": 1.5}}, True),
        ({"time": {"$lt": 2.0}}, True),
        ({"time": {"$lte": 1.4}}, False),
        ({"time": {"$ne": 1.5}}, False),
        ({"time": {"$ne": 9}}, True),
        ({"time": {"$eq": 1.5}}, True),
    ])
    def test_operators(self, query, expected):
        assert match_document(DOC, query) is expected

    def test_range_combination(self):
        assert match_document(DOC, {"time": {"$gte": 1.0, "$lt": 2.0}})

    def test_comparison_with_missing_field_never_matches(self):
        assert not match_document(DOC, {"ghost": {"$gt": 0}})

    def test_ne_matches_missing(self):
        assert match_document(DOC, {"ghost": {"$ne": 5}})

    def test_cross_type_comparison_never_matches(self):
        assert not match_document(DOC, {"team": {"$gt": 3}})


class TestSetOperators:
    def test_in(self):
        assert match_document(DOC, {"team": {"$in": ["t1", "t2"]}})
        assert not match_document(DOC, {"team": {"$in": ["t3"]}})

    def test_in_with_array_field(self):
        assert match_document(DOC, {"tags": {"$in": ["fpga", "cuda"]}})

    def test_nin(self):
        assert match_document(DOC, {"team": {"$nin": ["t3"]}})
        assert not match_document(DOC, {"team": {"$nin": ["t1"]}})

    def test_in_requires_list(self):
        with pytest.raises(InvalidQuery):
            match_document(DOC, {"team": {"$in": "t1"}})


class TestExistsRegexSize:
    def test_exists(self):
        assert match_document(DOC, {"team": {"$exists": True}})
        assert match_document(DOC, {"ghost": {"$exists": False}})
        assert not match_document(DOC, {"ghost": {"$exists": True}})

    def test_regex(self):
        assert match_document(DOC, {"team": {"$regex": r"^t\d$"}})
        assert not match_document(DOC, {"team": {"$regex": r"^x"}})
        assert not match_document(DOC, {"time": {"$regex": "1"}})

    def test_size(self):
        assert match_document(DOC, {"tags": {"$size": 2}})
        assert not match_document(DOC, {"tags": {"$size": 3}})

    def test_elem_match(self):
        assert match_document(DOC, {"results": {"$elemMatch":
                                                {"time": {"$gt": 2}}}})
        assert not match_document(DOC, {"results": {"$elemMatch":
                                                    {"time": {"$gt": 9}}}})


class TestLogical:
    def test_and(self):
        assert match_document(DOC, {"$and": [{"team": "t1"},
                                             {"time": {"$lt": 2}}]})

    def test_or(self):
        assert match_document(DOC, {"$or": [{"team": "nope"},
                                            {"time": 1.5}]})
        assert not match_document(DOC, {"$or": [{"team": "nope"},
                                                {"time": 9}]})

    def test_nor(self):
        assert match_document(DOC, {"$nor": [{"team": "x"}, {"time": 9}]})

    def test_not(self):
        assert match_document(DOC, {"time": {"$not": {"$gt": 2}}})

    def test_nested_logic(self):
        query = {"$or": [
            {"$and": [{"team": "t1"}, {"tags": "gpu"}]},
            {"time": {"$gt": 100}},
        ]}
        assert match_document(DOC, query)


class TestErrors:
    def test_unknown_operator(self):
        with pytest.raises(InvalidQuery):
            match_document(DOC, {"time": {"$frob": 1}})

    def test_unknown_toplevel_operator(self):
        with pytest.raises(InvalidQuery):
            match_document(DOC, {"$xor": []})

    def test_non_dict_query(self):
        with pytest.raises(InvalidQuery):
            match_document(DOC, "team=t1")
