"""Scaling policies: the course's manual schedule, and a reactive
queue-depth autoscaler ("RAI can also be configured to scale out to remote
cloud instances as local resources [are] exhausted", §IV)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.provisioner import Provisioner


@dataclass(frozen=True)
class SchedulePhase:
    """One phase of a manual provisioning plan."""

    start_time: float              # seconds from schedule start
    instance_type: str
    count: int
    max_concurrent_jobs: int = 1
    label: str = ""


class ManualSchedule:
    """The course's hand-driven plan (§VII, Resource Usage):

    1. early weeks — a few cheap G2 (K40) boxes, one job at a time, while
       students experiment with the slow CPU baseline;
    2. mid-project — 10 P2 (K80) instances, multiple pending submissions
       each, for interactive response;
    3. final week — 20–30 single-job P2 instances for accurate timing.
    """

    @staticmethod
    def course_default(day: float = 24 * 3600.0,
                       final_week_count: int = 25) -> List[SchedulePhase]:
        return [
            SchedulePhase(0.0, "g2.2xlarge", 4, max_concurrent_jobs=1,
                          label="baseline experimentation (G2/K40)"),
            SchedulePhase(14 * day, "p2.xlarge", 10, max_concurrent_jobs=4,
                          label="development (P2/K80, multi-job)"),
            SchedulePhase(28 * day, "p2.xlarge", final_week_count,
                          max_concurrent_jobs=1,
                          label="benchmarking week (P2/K80, single-job)"),
        ]

    def __init__(self, provisioner: Provisioner,
                 phases: Optional[List[SchedulePhase]] = None):
        self.provisioner = provisioner
        self.sim = provisioner.sim
        self.phases = sorted(phases or self.course_default(),
                             key=lambda p: p.start_time)
        self.applied: List[SchedulePhase] = []

    def run(self):
        """Kernel process applying each phase at its start time."""
        origin = self.sim.now
        for phase in self.phases:
            wait = origin + phase.start_time - self.sim.now
            if wait > 0:
                yield self.sim.timeout(wait)
            self._apply(phase)

    def _apply(self, phase: SchedulePhase) -> None:
        # Replace the current fleet with the phase's fleet.
        self.provisioner.terminate_all()
        self.provisioner.launch_many(
            phase.count, instance_type=phase.instance_type,
            max_concurrent_jobs=phase.max_concurrent_jobs)
        self.applied.append(phase)


@dataclass
class AutoscalerPolicy:
    """Reactive scaling knobs."""

    min_instances: int = 1
    max_instances: int = 30
    #: Scale out when queued jobs per live worker exceed this.
    scale_out_per_worker: float = 2.0
    #: Scale in when the whole queue is below this and utilisation is low.
    scale_in_queue_depth: int = 0
    scale_in_idle_fraction: float = 0.5
    check_interval: float = 60.0
    instance_type: str = "p2.xlarge"
    max_concurrent_jobs: int = 1
    #: Instances added per scale-out decision.
    step: int = 2
    #: Minimum seconds between scale-in actions (billing hysteresis).
    scale_in_cooldown: float = 1800.0


class Autoscaler:
    """Periodically sizes the fleet to the task-queue depth."""

    def __init__(self, system, provisioner: Provisioner,
                 policy: Optional[AutoscalerPolicy] = None):
        self.system = system
        self.provisioner = provisioner
        self.policy = policy or AutoscalerPolicy()
        self.sim = system.sim
        self.decisions: List[dict] = []
        self._last_scale_in = -float("inf")
        self._stopped = False

    def stop(self) -> None:
        self._stopped = True

    def run(self):
        """Kernel process: evaluate the policy every ``check_interval``."""
        policy = self.policy
        while not self._stopped:
            self._ensure_minimum()
            depth = self.system.queue_depth()
            live = [i for i in self.provisioner.live_instances]
            n_live = len(live)
            workers = [i.worker for i in live if i.worker is not None]
            active = sum(w.active_jobs for w in workers)
            capacity = sum(w.config.max_concurrent_jobs for w in workers)

            if n_live < policy.max_instances and n_live > 0 and \
                    depth > policy.scale_out_per_worker * n_live:
                add = min(policy.step, policy.max_instances - n_live)
                self.provisioner.launch_many(
                    add, instance_type=policy.instance_type,
                    max_concurrent_jobs=policy.max_concurrent_jobs)
                self._decide("scale-out", add, depth, n_live)
            elif (n_live > policy.min_instances
                  and depth <= policy.scale_in_queue_depth
                  and capacity > 0
                  and active / capacity <= 1 - policy.scale_in_idle_fraction
                  and self.sim.now - self._last_scale_in
                  >= policy.scale_in_cooldown):
                remove = min(policy.step, n_live - policy.min_instances)
                removed = self.provisioner.terminate_count(remove)
                if removed:
                    self._last_scale_in = self.sim.now
                    self._decide("scale-in", removed, depth, n_live)
            yield self.sim.timeout(policy.check_interval)

    def _ensure_minimum(self) -> None:
        deficit = self.policy.min_instances - len(self.provisioner.live_instances)
        if deficit > 0:
            self.provisioner.launch_many(
                deficit, instance_type=self.policy.instance_type,
                max_concurrent_jobs=self.policy.max_concurrent_jobs)
            self._decide("ensure-min", deficit, self.system.queue_depth(), 0)

    def _decide(self, action: str, count: int, depth: int,
                n_live: int) -> None:
        self.decisions.append({
            "t": self.sim.now,
            "action": action,
            "count": count,
            "queue_depth": depth,
            "live_before": n_live,
        })
