"""QwikLabs-style hosted lab sessions (Table I row 5).

Students click into a pre-provisioned, time-boxed cloud environment:
isolated, scalable, and accessible from anywhere — but the catalogue of
lab templates is fixed (no course-specific toolchains) and there is no
submission/grading pipeline, so testing uniformity is absent.
"""

from __future__ import annotations

from repro.baselines.base import BaselineJob, SubmissionOutcome, SubmissionSystem

#: The canned environments students may launch.
_CATALOG = ("aws-console-101", "ec2-basics", "s3-basics")


class QwikLabsSystem(SubmissionSystem):
    name = "QwikLabs"
    remote_accessible_without_hardware = True

    def __init__(self, concurrent_sessions: int = 1000):
        self._capacity = concurrent_sessions

    def submit(self, job: BaselineJob) -> SubmissionOutcome:
        in_catalog = job.image in _CATALOG
        return SubmissionOutcome(
            accepted=True,
            # Sessions are interactive consoles on canned templates: the
            # student cannot install the course toolchain.
            ran_requested_commands=in_catalog,
            used_requested_image=in_catalog,
            escaped_sandbox=False,
            enforced_grading_procedure=False,  # no grading pipeline at all
            had_gpu=True,
        )

    def add_capacity(self, units: int) -> int:
        self._capacity += units
        return units

    def capacity(self) -> int:
        return self._capacity
