"""Property-based tests for ranking, rate limiting, and auth invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auth import parse_profile, render_profile, sign_request
from repro.auth.profile import RaiProfile
from repro.core.ranking import RankingService
from repro.core.ratelimit import RateLimiter
from repro.docdb import DocumentDB


class TestRankingProperties:
    @settings(max_examples=30)
    @given(times=st.lists(st.floats(min_value=0.01, max_value=1000,
                                    allow_nan=False),
                          min_size=1, max_size=20, unique=True))
    def test_leaderboard_sorted_and_ranks_dense(self, times):
        service = RankingService(DocumentDB())
        for i, t in enumerate(times):
            service.record_final(team=f"team-{i}", internal_time=t,
                                 instructor_time=t, correctness=1.0,
                                 username="u", job_id=f"j{i}", at=0.0)
        board = service.leaderboard()
        values = [row["internal_time"] for row in board]
        assert values == sorted(values)
        assert [row["rank"] for row in board] == \
            list(range(1, len(times) + 1))

    @settings(max_examples=30)
    @given(overwrites=st.lists(st.floats(min_value=0.01, max_value=100,
                                         allow_nan=False),
                               min_size=1, max_size=10))
    def test_one_row_per_team_regardless_of_overwrites(self, overwrites):
        service = RankingService(DocumentDB())
        for i, t in enumerate(overwrites):
            service.record_final(team="solo", internal_time=t,
                                 instructor_time=t, correctness=1.0,
                                 username="u", job_id=f"j{i}", at=float(i))
        assert len(service) == 1
        assert service.leaderboard()[0]["internal_time"] == overwrites[-1]


class TestRateLimiterProperties:
    @settings(max_examples=40)
    @given(gaps=st.lists(st.floats(min_value=0.0, max_value=120.0,
                                   allow_nan=False),
                         min_size=1, max_size=30),
           window=st.floats(min_value=1.0, max_value=60.0))
    def test_accepted_submissions_spaced_by_window(self, gaps, window):
        now = [0.0]
        limiter = RateLimiter(lambda: now[0], window_seconds=window)
        accepted_times = []
        for gap in gaps:
            now[0] += gap
            try:
                limiter.check("team")
                accepted_times.append(now[0])
            except Exception:
                pass
        diffs = [b - a for a, b in zip(accepted_times, accepted_times[1:])]
        assert all(d >= window - 1e-9 for d in diffs)
        assert limiter.total_accepted == len(accepted_times)


class TestAuthProperties:
    keys = st.text(alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnop"
                            "qrstuvwxyz0123456789-_",
                   min_size=1, max_size=30)

    @given(username=keys, access=keys, secret=keys)
    def test_profile_roundtrip(self, username, access, secret):
        profile = RaiProfile(username, access, secret)
        assert parse_profile(render_profile(profile)) == profile

    @given(secret=keys,
           payload=st.dictionaries(st.text(max_size=6),
                                   st.integers(), max_size=4),
           ts=st.floats(min_value=0, max_value=1e9, allow_nan=False))
    def test_signature_deterministic(self, secret, payload, ts):
        assert sign_request(secret, payload, ts) == \
            sign_request(secret, payload, ts)

    @given(secret=keys, other=keys,
           ts=st.floats(min_value=0, max_value=1e9, allow_nan=False))
    def test_different_secrets_different_signatures(self, secret, other,
                                                    ts):
        if secret != other:
            assert sign_request(secret, {"a": 1}, ts) != \
                sign_request(other, {"a": 1}, ts)
