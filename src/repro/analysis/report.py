"""Small text-rendering utilities shared by benches and examples."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: List[Sequence],
                 title: str = "") -> str:
    """Fixed-width ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h) for i, h in enumerate(headers)]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in str_rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def format_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024 or unit == "TB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} TB"


def format_duration(seconds: float) -> str:
    if seconds < 1:
        return f"{seconds * 1000:.0f} ms"
    if seconds < 120:
        return f"{seconds:.1f} s"
    if seconds < 7200:
        return f"{seconds / 60:.1f} min"
    if seconds < 2 * 86400:
        return f"{seconds / 3600:.1f} h"
    return f"{seconds / 86400:.1f} days"
