"""Unit tests for the coreutils guest commands."""

import pytest

from repro.container import ContainerRuntime, VolumeMount
from repro.vfs import VirtualFileSystem


@pytest.fixture
def container():
    rt = ContainerRuntime()
    project = VirtualFileSystem()
    project.import_mapping({"main.cu": "code", "sub/extra.h": "hdr"}, "/")
    c = rt.create_container(
        "webgpu/rai:root",
        mounts=[VolumeMount("/src", read_only=True, source_fs=project)])
    c.start()
    return c


class TestEchoCat:
    def test_echo_n(self, container):
        assert container.exec_line("echo -n no-newline").stdout == \
            "no-newline"

    def test_cat_file(self, container):
        assert container.exec_line("cat /src/main.cu").stdout == "code"

    def test_cat_missing(self, container):
        result = container.exec_line("cat /src/ghost")
        assert result.exit_code == 1
        assert "No such file" in result.stderr

    def test_cat_multiple(self, container):
        out = container.exec_line("cat /src/main.cu /src/sub/extra.h")
        assert out.stdout == "codehdr"


class TestLs:
    def test_ls_dir(self, container):
        assert container.exec_line("ls /src").stdout == "main.cu\nsub\n"

    def test_ls_long(self, container):
        out = container.exec_line("ls -l /src").stdout
        assert "main.cu" in out and "d" in out

    def test_ls_missing(self, container):
        assert container.exec_line("ls /ghost").exit_code == 2


class TestCp:
    def test_cp_file(self, container):
        container.exec_line("cp /src/main.cu /build/copy.cu")
        assert container.fs.read_text("/build/copy.cu") == "code"

    def test_cp_dir_requires_r(self, container):
        result = container.exec_line("cp /src /build/srccopy")
        assert result.exit_code == 1

    def test_cp_r_tree(self, container):
        """Listing 2's `cp -r /src /build/submission_code`."""
        container.exec_line("cp -r /src /build/submission_code")
        assert container.fs.read_text(
            "/build/submission_code/main.cu") == "code"
        assert container.fs.read_text(
            "/build/submission_code/sub/extra.h") == "hdr"

    def test_cp_missing_source(self, container):
        assert container.exec_line("cp /ghost /build/x").exit_code == 1


class TestRmMvMkdir:
    def test_rm_file(self, container):
        container.exec_line("echo x > /build/f")
        container.exec_line("rm /build/f")
        assert not container.fs.exists("/build/f")

    def test_rm_dir_needs_r(self, container):
        container.exec_line("mkdir /build/d")
        assert container.exec_line("rm /build/d").exit_code == 1
        assert container.exec_line("rm -r /build/d").exit_code == 0

    def test_rm_f_quiet_on_missing(self, container):
        assert container.exec_line("rm -f /build/ghost").exit_code == 0

    def test_rm_readonly_mount_protected(self, container):
        """-f must not override the read-only /src mount."""
        result = container.exec_line("rm -rf /src/main.cu")
        assert result.exit_code == 1
        assert "Read-only" in result.stderr
        assert container.fs.isfile("/src/main.cu")

    def test_mv(self, container):
        container.exec_line("echo x > /build/a")
        container.exec_line("mv /build/a /build/b")
        assert not container.fs.exists("/build/a")
        assert container.fs.isfile("/build/b")

    def test_mkdir_p(self, container):
        assert container.exec_line("mkdir -p /build/x/y/z").exit_code == 0
        assert container.fs.isdir("/build/x/y/z")

    def test_mkdir_existing_fails_without_p(self, container):
        container.exec_line("mkdir /build/d")
        assert container.exec_line("mkdir /build/d").exit_code == 1


class TestMisc:
    def test_pwd_default_is_build(self, container):
        assert container.exec_line("pwd").stdout == "/build\n"

    def test_touch(self, container):
        container.exec_line("touch /build/marker")
        assert container.fs.isfile("/build/marker")

    def test_env_lists_variables(self, container):
        out = container.exec_line("env").stdout
        assert "SRC_DIR=/src" in out

    def test_sleep_charges_time(self, container):
        result = container.exec_line("sleep 12.5")
        assert result.sim_duration == pytest.approx(12.5)

    def test_sleep_bad_arg(self, container):
        assert container.exec_line("sleep forever").exit_code == 1

    def test_hostname_is_container_id(self, container):
        assert container.exec_line("hostname").stdout == \
            container.id + "\n"

    def test_wc(self, container):
        container.exec_line("echo 'a b' > /build/f")
        out = container.exec_line("wc -l /build/f").stdout
        assert out.startswith("1 ")

    def test_network_clients_denied(self, container):
        for tool in ("wget", "curl"):
            result = container.exec_line(f"{tool} http://example.com")
            assert result.exit_code == 101
            assert "network" in (result.error or "").lower()
