"""Property-based tests for the document database."""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docdb import DocumentDB, apply_update, match_document

# JSON-ish scalar values.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e6, max_value=1e6),
    st.text(max_size=12),
)

field_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=122),
    min_size=1, max_size=8,
).filter(lambda s: not s.startswith("$") and "." not in s)

documents = st.dictionaries(field_names, scalars, max_size=6)


class TestQueryProperties:
    @given(doc=documents)
    def test_empty_query_matches_everything(self, doc):
        assert match_document(doc, {})

    @given(doc=documents)
    def test_document_matches_its_own_equality_query(self, doc):
        assert match_document(doc, dict(doc))

    @given(doc=documents, query=st.dictionaries(field_names, scalars,
                                                max_size=4))
    def test_and_of_parts_equals_whole(self, doc, query):
        whole = match_document(doc, query)
        parts = all(match_document(doc, {k: v}) for k, v in query.items())
        assert whole == parts

    @given(doc=documents, query=st.dictionaries(field_names, scalars,
                                                min_size=1, max_size=4))
    def test_not_via_nor(self, doc, query):
        assert match_document(doc, {"$nor": [query]}) != \
            match_document(doc, query)

    @given(doc=documents, value=scalars)
    def test_in_singleton_equals_eq(self, doc, value):
        assert match_document(doc, {"field": {"$in": [value]}}) == \
            match_document(doc, {"field": {"$eq": value}})


class TestUpdateProperties:
    @given(doc=documents, updates=st.dictionaries(field_names, scalars,
                                                  min_size=1, max_size=4))
    def test_set_then_query_matches(self, doc, updates):
        updated = apply_update(doc, {"$set": updates})
        for key, value in updates.items():
            assert match_document(updated, {key: value})

    @given(doc=documents, updates=st.dictionaries(field_names, scalars,
                                                  min_size=1, max_size=4))
    def test_update_does_not_mutate_input(self, doc, updates):
        snapshot = copy.deepcopy(doc)
        apply_update(doc, {"$set": updates})
        assert doc == snapshot

    @given(doc=documents, key=field_names)
    def test_unset_removes(self, doc, key):
        updated = apply_update(doc, {"$unset": {key: ""}})
        assert key not in updated

    @given(key=field_names, a=st.integers(-100, 100),
           b=st.integers(-100, 100))
    def test_inc_composes(self, key, a, b):
        doc = {}
        once = apply_update(apply_update(doc, {"$inc": {key: a}}),
                            {"$inc": {key: b}})
        both = apply_update(doc, {"$inc": {key: a + b}})
        assert once[key] == both[key]


class TestCollectionProperties:
    @settings(max_examples=30)
    @given(docs=st.lists(documents, max_size=12))
    def test_count_equals_len_of_find(self, docs):
        coll = DocumentDB()["c"]
        coll.insert_many(docs)
        assert coll.count_documents() == len(docs)
        assert coll.find().count() == len(docs)

    @settings(max_examples=30)
    @given(docs=st.lists(documents, min_size=1, max_size=10),
           key=field_names)
    def test_sort_is_totally_ordered_and_stable_length(self, docs, key):
        coll = DocumentDB()["c"]
        coll.insert_many(docs)
        ascending = coll.find().sort([(key, 1)]).to_list()
        descending = coll.find().sort([(key, -1)]).to_list()
        assert len(ascending) == len(docs)
        stripped = [{k: v for k, v in d.items() if k != "_id"}
                    for d in ascending]
        stripped_desc = [{k: v for k, v in d.items() if k != "_id"}
                         for d in descending]
        # Multiset equality: sort only permutes.
        key_of = lambda d: sorted((k, str(v)) for k, v in d.items())
        assert sorted(map(key_of, stripped)) == \
            sorted(map(key_of, stripped_desc))

    @settings(max_examples=30)
    @given(docs=st.lists(documents, max_size=10))
    def test_delete_all_empties(self, docs):
        coll = DocumentDB()["c"]
        coll.insert_many(docs)
        deleted = coll.delete_many({})
        assert deleted == len(docs)
        assert coll.count_documents() == 0
