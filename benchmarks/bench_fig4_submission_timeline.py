"""Figure 4 — submissions per hour over the last two weeks.

Paper: "During the last 2 weeks of the course, a total of 30,782
submissions were made to RAI. ... Students made a significant number of
submissions during the last week of the course which followed their
circadian rhythm."

Shape expectations asserted: tens of thousands of submissions in the
window, the last week clearly dominating the week before, and a circadian
signature (busy evenings vs near-silent pre-dawn hours).
"""

import numpy as np

from benchmarks.conftest import course_config, print_banner
from repro.analysis import ascii_timeline, hourly_counts, peak_hour
from repro.workload.behavior import DAY, HOUR


def test_fig4_submissions_per_hour(benchmark, course_result):
    simulation, result = course_result
    config = result.config
    window_start = (config.duration_days - 14) * DAY
    window_end = config.duration_days * DAY

    def regenerate():
        times = result.last_two_weeks()
        return times, hourly_counts(times, window_start, window_end)

    times, (starts, counts) = benchmark.pedantic(regenerate, rounds=1,
                                                 iterations=1)

    print_banner("Figure 4 — submissions/hour, last 2 weeks "
                 "(one row per day, one cell per hour)")
    print(ascii_timeline(times, window_start, window_end))
    peak = peak_hour(times, window_start, window_end)
    print(f"\ntotal in window: {len(times)} "
          f"(paper: 30,782 at 58 teams; scaled runs scale down)")
    print(f"peak hour: {peak['count']} submissions")

    week1 = result.submissions_in_window(config.duration_days - 14,
                                         config.duration_days - 7)
    week2 = result.submissions_in_window(config.duration_days - 7,
                                         config.duration_days)
    print(f"second-to-last week: {len(week1)}; last week: {len(week2)} "
          f"({len(week2) / max(1, len(week1)):.1f}x)")

    # Circadian contrast: average hour-of-day profile.
    hours_of_day = [((t % DAY) // HOUR) for t in times]
    profile = np.bincount([int(h) for h in hours_of_day], minlength=24)
    night = profile[3:6].mean()
    evening = profile[18:22].mean()
    print(f"avg 03:00-06:00 vs 18:00-22:00 submissions: "
          f"{night:.0f} vs {evening:.0f}")

    # --- shape assertions -------------------------------------------------
    n_teams = config.n_teams
    expected_floor = 200 * n_teams   # paper: ~530 per team in the window
    assert len(times) > expected_floor * 0.5
    assert len(week2) > 1.3 * len(week1)       # final-week surge
    assert evening > 3 * max(night, 1)         # circadian rhythm
    assert counts.sum() == len(times)
