"""Container state machine and execution context."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.container.limits import ResourceLimits
from repro.container.shell import Shell
from repro.errors import (
    ContainerStateError,
    ContainerTimeout,
    MemoryLimitExceeded,
    NetworkDisabled,
)
from repro.vfs import VirtualFileSystem


class ContainerState(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    EXITED = "exited"
    OOM_KILLED = "oom-killed"
    TIMED_OUT = "timed-out"
    DESTROYED = "destroyed"


@dataclass
class ExecResult:
    """Outcome of one build-file command line."""

    command: str
    exit_code: int
    sim_duration: float
    stdout: str
    stderr: str
    error: Optional[str] = None


class ExecContext:
    """What guest commands see while running.

    Provides the container filesystem, environment, output streams, and the
    two accounting channels every command must use:

    - :meth:`charge` — declare consumed simulated seconds (enforces the
      container lifetime cap);
    - :meth:`use_memory` — declare peak resident bytes (enforces the RAM
      cap, turning the container into an OOM kill);
    - :meth:`require_network` — raises unless the sandbox allows network.
    """

    def __init__(self, container: "Container"):
        self.container = container
        self.fs: VirtualFileSystem = container.fs
        self.env = dict(container.env)
        self.cwd = container.workdir
        self._stdout_parts: List[str] = []
        self._stderr_parts: List[str] = []
        self._capture_stack: List[List[str]] = []
        self._charged = 0.0
        self._output_bytes = 0

    # -- output ------------------------------------------------------------

    def write_out(self, text: str) -> None:
        self._write(self._capture_stack[-1] if self._capture_stack
                    else self._stdout_parts, text)
        if not self._capture_stack and self.container.on_output:
            self.container.on_output("stdout", text)

    def write_err(self, text: str) -> None:
        self._write(self._stderr_parts, text)
        if self.container.on_output:
            self.container.on_output("stderr", text)

    def _write(self, sink: List[str], text: str) -> None:
        self._output_bytes += len(text)
        if self._output_bytes > self.container.limits.max_output_bytes:
            raise MemoryLimitExceeded(
                "output limit exceeded (log flood protection)")
        sink.append(text)

    def push_stdout_capture(self) -> List[str]:
        capture: List[str] = []
        self._capture_stack.append(capture)
        return capture

    def pop_stdout_capture(self) -> str:
        return "".join(self._capture_stack.pop())

    def stdout_text(self) -> str:
        return "".join(self._stdout_parts)

    def stderr_text(self) -> str:
        return "".join(self._stderr_parts)

    def reset_streams(self) -> None:
        self._stdout_parts = []
        self._stderr_parts = []

    # -- accounting ------------------------------------------------------------

    def charge(self, seconds: float) -> float:
        """Consume simulated seconds; returns the amount actually charged.

        The charged amount is scaled by the container's ``time_dilation``
        (if set): that is how co-runner contention on a multi-job worker
        reaches the *measured* runtimes programs observe — the effect the
        course's single-job benchmark mode exists to remove (§V).
        """
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        dilation = self.container.time_dilation
        if dilation is not None:
            seconds = seconds * float(dilation())
        self._charged += seconds
        self.container._charge_lifetime(seconds)
        return seconds

    @property
    def charged_seconds(self) -> float:
        return self._charged

    def take_charged(self) -> float:
        """Pop accumulated charged time (per-command accounting)."""
        out = self._charged
        self._charged = 0.0
        return out

    def use_memory(self, peak_bytes: float) -> None:
        if peak_bytes > self.container.limits.memory_bytes:
            raise MemoryLimitExceeded(
                f"needs {peak_bytes / 2**30:.1f} GiB, limit is "
                f"{self.container.limits.memory_bytes / 2**30:.1f} GiB")
        self.container.peak_memory = max(self.container.peak_memory,
                                         peak_bytes)

    def require_network(self, purpose: str = "") -> None:
        if not self.container.limits.network_enabled:
            raise NetworkDisabled(
                f"network access denied inside sandbox"
                f"{': ' + purpose if purpose else ''}")

    # -- hardware ------------------------------------------------------------

    @property
    def gpu(self):
        """The mounted GPU device model, or None without a CUDA volume."""
        return self.container.gpu_device


class Container:
    """One sandboxed job environment.

    Lifecycle: ``CREATED → RUNNING → EXITED | OOM_KILLED | TIMED_OUT →
    DESTROYED``.  A new container is created per job and destroyed after
    (§V): nothing persists between jobs except what was uploaded to the
    file server.
    """

    _id_counter = 0

    def __init__(self, image, limits: ResourceLimits,
                 mounts, gpu_device=None,
                 on_output: Optional[Callable[[str, str], None]] = None,
                 clock: Optional[Callable[[], float]] = None):
        Container._id_counter += 1
        self.id = f"container-{Container._id_counter:06d}"
        self.image = image
        self._clock = clock
        #: Lifetime reuse count (0 for a fresh container; bumped by
        #: :meth:`recycle` when the warm pool hands it to a new job).
        self.generation = 0
        self._provision(limits, mounts, gpu_device, on_output)

    def _provision(self, limits: ResourceLimits, mounts, gpu_device,
                   on_output) -> None:
        """(Re)build the job-facing state: fs, env, limits, streams."""
        self.limits = limits
        self.state = ContainerState.CREATED
        self.on_output = on_output
        self.peak_memory = 0.0
        self.lifetime_used = 0.0
        self.exit_reason: Optional[str] = None
        #: Optional zero-arg callable returning a runtime multiplier;
        #: workers wire this to their contention-noise model.
        self.time_dilation: Optional[Callable[[], float]] = None
        self.workdir = "/build"
        self.env = {
            "HOME": "/root",
            "PATH": "/usr/local/bin:/usr/bin:/bin",
            "SRC_DIR": "/src",
            "BUILD_DIR": "/build",
        }
        self.gpu_device = gpu_device

        self.fs = VirtualFileSystem(clock=self._clock)
        # Base image content.
        if self.image is not None and self.image.fs_template:
            self.fs.import_mapping(self.image.fs_template, "/")
        self.fs.makedirs("/build")
        self.fs.makedirs("/tmp")
        for mount in mounts:
            mount.materialize(self.fs)
            if mount.is_cuda and gpu_device is not None:
                self.env["CUDA_VISIBLE_DEVICES"] = "0"

        self._context = ExecContext(self)
        self._shell = Shell(self)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self.state is not ContainerState.CREATED:
            raise ContainerStateError(f"cannot start from {self.state}")
        self.state = ContainerState.RUNNING

    def _charge_lifetime(self, seconds: float) -> None:
        self.lifetime_used += seconds
        if self.lifetime_used > self.limits.max_lifetime_seconds:
            self.state = ContainerState.TIMED_OUT
            raise ContainerTimeout(
                f"container exceeded max lifetime of "
                f"{self.limits.max_lifetime_seconds:.0f}s")

    def exec_line(self, line: str) -> ExecResult:
        """Run one build-file command line; returns its result.

        Raises nothing for ordinary command failures (they are reported in
        the exit code); resource violations flip the container state and
        surface as an ``error`` on the result.
        """
        if self.state is not ContainerState.RUNNING:
            raise ContainerStateError(
                f"container is {self.state.value}, not running")
        ctx = self._context
        ctx.reset_streams()
        ctx.take_charged()
        error = None
        try:
            exit_code = self._shell.run_line(line)
        except MemoryLimitExceeded as exc:
            self.state = ContainerState.OOM_KILLED
            self.exit_reason = str(exc)
            exit_code, error = 137, f"oom-killed: {exc}"
        except ContainerTimeout as exc:
            self.exit_reason = str(exc)
            exit_code, error = 124, f"timed-out: {exc}"
        except NetworkDisabled as exc:
            self.exit_reason = str(exc)
            exit_code, error = 101, f"network-denied: {exc}"
        return ExecResult(
            command=line,
            exit_code=exit_code,
            sim_duration=ctx.take_charged(),
            stdout=ctx.stdout_text(),
            stderr=ctx.stderr_text(),
            error=error,
        )

    def stop(self) -> None:
        if self.state is ContainerState.RUNNING:
            self.state = ContainerState.EXITED

    def scrub(self) -> None:
        """Reset-on-return sanitisation for warm-pool parking.

        Drops every trace of the last job — filesystem (with its /src and
        /build trees), environment, output sink, timing hooks — while
        keeping the container itself alive for reuse.  A parked container
        holds no tenant data; :meth:`recycle` rebuilds pristine state from
        the image template for the next job.
        """
        if self.state is ContainerState.DESTROYED:
            raise ContainerStateError("cannot scrub a destroyed container")
        if self.state is ContainerState.RUNNING:
            self.state = ContainerState.EXITED
        self.fs = None
        self._context = None
        self._shell = None
        self.on_output = None
        self.time_dilation = None
        self.env = {}
        self.exit_reason = None
        self.peak_memory = 0.0
        self.lifetime_used = 0.0

    def recycle(self, limits: ResourceLimits, mounts, gpu_device=None,
                on_output: Optional[Callable[[str, str], None]] = None
                ) -> None:
        """Reprovision a scrubbed container for a new job.

        Equivalent to creating a fresh container from the same image
        (fresh ``/src``/``/build`` mounts, default env, zeroed limits
        accounting) without paying the engine's create cost — the warm
        pool's whole point.
        """
        if self.state is ContainerState.DESTROYED:
            raise ContainerStateError("cannot recycle a destroyed container")
        self.generation += 1
        self._provision(limits, mounts, gpu_device, on_output)

    def destroy(self) -> None:
        self.state = ContainerState.DESTROYED
        self.fs = None
        self._context = None
        self._shell = None

    def __repr__(self):
        return f"<Container {self.id} {self.state.value} image={getattr(self.image, 'name', None)!r}>"
