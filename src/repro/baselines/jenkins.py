"""Jenkins-style CI (Table I row 4).

Build jobs run arbitrary user-defined steps in isolated executors and
fleets of agents scale out — but students must have commit access to a
repository wired into the instance, the course must administer Jenkins
itself, and (2016-era) "no CI tool can run GPU or FPGA code" (§III).
Accessibility for anonymous remote students is the missing column.
"""

from __future__ import annotations

from repro.baselines.base import BaselineJob, SubmissionOutcome, SubmissionSystem


class JenkinsCI(SubmissionSystem):
    name = "Jenkins"
    remote_accessible_without_hardware = False  # needs repo/instance access

    def __init__(self, executors: int = 8):
        self._executors = executors
        self.builds = 0

    def submit(self, job: BaselineJob) -> SubmissionOutcome:
        self.builds += 1
        return SubmissionOutcome(
            accepted=True,
            ran_requested_commands=True,       # Jenkinsfile steps: anything
            used_requested_image=True,         # docker agents
            escaped_sandbox=False,
            enforced_grading_procedure=True,   # pipeline is versioned/fixed
            had_gpu=False,                     # §III: CI can't run GPU code
            notes="requires commit access to a wired-up repository",
        )

    def add_capacity(self, units: int) -> int:
        self._executors += units
        return units

    def capacity(self) -> int:
        return self._executors
