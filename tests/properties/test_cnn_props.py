"""Property-based tests: the two conv implementations agree everywhere."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import bin_runtimes
from repro.gpu.cnn import _conv2d_im2col, _conv2d_reference
from repro.gpu.hdf5sim import read_h5s, write_h5s


@st.composite
def conv_cases(draw):
    n = draw(st.integers(1, 3))
    cin = draw(st.integers(1, 4))
    cout = draw(st.integers(1, 4))
    k = draw(st.integers(1, 4))
    h = draw(st.integers(k, k + 6))
    w = draw(st.integers(k, k + 6))
    seed = draw(st.integers(0, 2**16))
    return n, cin, cout, k, h, w, seed


class TestConvEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(case=conv_cases())
    def test_reference_equals_im2col(self, case):
        n, cin, cout, k, h, w, seed = case
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, cin, h, w)).astype(np.float32)
        weights = rng.normal(size=(cout, cin, k, k)).astype(np.float32)
        b = rng.normal(size=cout).astype(np.float32)
        ref = _conv2d_reference(x, weights, b)
        fast = _conv2d_im2col(x, weights, b)
        np.testing.assert_allclose(ref, fast, rtol=1e-3, atol=1e-3)

    @settings(max_examples=20, deadline=None)
    @given(case=conv_cases())
    def test_output_shape(self, case):
        n, cin, cout, k, h, w, seed = case
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, cin, h, w)).astype(np.float32)
        weights = rng.normal(size=(cout, cin, k, k)).astype(np.float32)
        b = np.zeros(cout, dtype=np.float32)
        out = _conv2d_im2col(x, weights, b)
        assert out.shape == (n, cout, h - k + 1, w - k + 1)


class TestH5SimProperties:
    @settings(max_examples=30, deadline=None)
    @given(arrays=st.dictionaries(
        st.text(alphabet="abcdef.", min_size=1, max_size=10),
        st.tuples(
            st.sampled_from(["float32", "float64", "int64", "uint8"]),
            st.lists(st.integers(0, 5), min_size=0, max_size=3),
            st.integers(0, 2**16),
        ),
        max_size=4))
    def test_roundtrip_any_shapes(self, arrays):
        data = {}
        for name, (dtype, shape, seed) in arrays.items():
            rng = np.random.default_rng(seed)
            data[name] = (rng.random(shape) * 100).astype(dtype)
        back = read_h5s(write_h5s(data))
        assert set(back) == set(data)
        for name in data:
            np.testing.assert_array_equal(back[name], data[name])


class TestHistogramProperties:
    @settings(max_examples=40)
    @given(times=st.lists(st.floats(min_value=0, max_value=200,
                                    allow_nan=False), max_size=40),
           width=st.floats(min_value=0.05, max_value=5.0,
                           allow_nan=False))
    def test_counts_conserve_mass(self, times, width):
        _, counts = bin_runtimes(times, width)
        assert counts.sum() == len(times)

    @settings(max_examples=40)
    @given(times=st.lists(st.floats(min_value=0, max_value=50,
                                    allow_nan=False),
                          min_size=1, max_size=40))
    def test_every_value_falls_in_its_bin(self, times):
        edges, counts = bin_runtimes(times, 0.5)
        for t in times:
            idx = min(int(t / 0.5), len(counts) - 1)
            assert counts[idx] > 0 or any(
                counts[j] > 0 for j in (max(0, idx - 1),
                                        min(len(counts) - 1, idx + 1)))
