"""Unit tests for .rai.profile parsing."""

import pytest

from repro.auth import RaiProfile, parse_profile, render_profile
from repro.errors import ProfileError

GOOD = """\
RAI_USER_NAME='myusername'
RAI_ACCESS_KEY='BsqJuFUI2ZtK4g1aLXf-OjmML6'
RAI_SECRET_KEY='tU08PuKhtR9qozBNn33RcH7p5A'
"""


class TestParse:
    def test_listing3_format(self):
        """The exact format emailed to students (Listing 3)."""
        profile = parse_profile(GOOD)
        assert profile.username == "myusername"
        assert profile.access_key == "BsqJuFUI2ZtK4g1aLXf-OjmML6"
        assert profile.secret_key == "tU08PuKhtR9qozBNn33RcH7p5A"

    def test_roundtrip(self):
        profile = parse_profile(GOOD)
        assert parse_profile(render_profile(profile)) == profile

    def test_comments_and_blank_lines_tolerated(self):
        text = "# pasted from email\n\n" + GOOD + "\n# end\n"
        assert parse_profile(text).username == "myusername"

    def test_double_quotes_and_unquoted(self):
        text = ('RAI_USER_NAME="u"\nRAI_ACCESS_KEY=abc\n'
                "RAI_SECRET_KEY='s'\n")
        profile = parse_profile(text)
        assert profile.access_key == "abc"

    def test_missing_field_rejected(self):
        with pytest.raises(ProfileError, match="RAI_SECRET_KEY"):
            parse_profile("RAI_USER_NAME='u'\nRAI_ACCESS_KEY='a'\n")

    def test_empty_value_rejected(self):
        text = GOOD.replace("'myusername'", "''")
        with pytest.raises(ProfileError, match="empty"):
            parse_profile(text)

    def test_malformed_line_rejected(self):
        with pytest.raises(ProfileError, match="line 1"):
            parse_profile("this is not a profile\n" + GOOD)

    def test_as_mapping(self):
        mapping = RaiProfile("u", "a", "s").as_mapping()
        assert mapping == {"RAI_USER_NAME": "u", "RAI_ACCESS_KEY": "a",
                           "RAI_SECRET_KEY": "s"}
